#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the extension
# experiments, and captures the library's test results.
#
#   ./run_experiments.sh [build-dir]
set -u
BUILD="${1:-build}"
cd "$(dirname "$0")"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

{
  for b in "$BUILD"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt
