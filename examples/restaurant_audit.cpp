// Restaurant audit: the paper's end-to-end scenario. Simulates a raw
// multi-site crawl (noisy names/addresses, duplicates, CLOSED
// markers), deduplicates it with the paper's cleaning strategy, then
// corroborates to flag listings that are probably defunct.
//
//   ./example_restaurant_audit [--restaurants 2000] [--algorithm IncEstHeu]
//                              [--seed 2012] [--flagged 15]

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/restaurant_sim.h"
#include "text/dedup.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags =
      corrob::FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
  const int64_t restaurants = flags.GetInt("restaurants", 2000);
  const std::string algorithm_name =
      flags.GetString("algorithm", "IncEstHeu");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));
  const int64_t show_flagged = flags.GetInt("flagged", 15);

  // 1. Crawl: raw listings as six sources would present them.
  corrob::RawCrawlOptions crawl_options;
  crawl_options.num_restaurants = static_cast<int32_t>(restaurants);
  crawl_options.seed = seed;
  corrob::RawCrawl crawl =
      corrob::GenerateRawCrawl(crawl_options).ValueOrDie();
  std::printf("Crawled %zu raw listings for %zu restaurants.\n",
              crawl.listings.size(), crawl.entity_keys.size());

  // 2. Clean: normalize addresses, block, link by cosine >= 0.8.
  corrob::DedupResult dedup =
      corrob::Deduplicate(crawl.listings).ValueOrDie();
  std::printf("Deduplicated to %zu entities (%.1f%% compression).\n",
              dedup.entities.size(),
              100.0 * (1.0 - static_cast<double>(dedup.entities.size()) /
                                 static_cast<double>(crawl.listings.size())));

  // 3. Corroborate the induced vote matrix.
  auto algorithm = corrob::MakeCorroborator(algorithm_name).ValueOrDie();
  corrob::CorroborationResult result =
      algorithm->Run(dedup.dataset).ValueOrDie();

  // 4. Audit against the simulator's hidden truth (the in-person
  // check-up of the paper). Majority vote per cluster decides which
  // real restaurant a cluster denotes.
  std::map<std::string, bool> truth_by_key;
  for (size_t i = 0; i < crawl.entity_keys.size(); ++i) {
    truth_by_key[crawl.entity_keys[i]] = crawl.entity_truth[i];
  }
  std::vector<bool> predicted;
  std::vector<bool> actual;
  for (size_t e = 0; e < dedup.entities.size(); ++e) {
    std::map<std::string, int> hints;
    for (size_t member : dedup.entities[e].members) {
      ++hints[crawl.listings[member].entity_hint];
    }
    auto top = std::max_element(
        hints.begin(), hints.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    predicted.push_back(result.Decide(static_cast<corrob::FactId>(e)));
    actual.push_back(truth_by_key.at(top->first));
  }
  corrob::BinaryMetrics metrics = corrob::MetricsFromConfusion(
      corrob::CountConfusion(predicted, actual));

  corrob::TablePrinter summary({"Metric", "Value"});
  summary.AddRow({"Algorithm", algorithm_name});
  summary.AddRow("Precision", {metrics.precision}, 3);
  summary.AddRow("Recall", {metrics.recall}, 3);
  summary.AddRow("Accuracy", {metrics.accuracy}, 3);
  summary.AddRow("F-1", {metrics.f1}, 3);
  std::printf("\nAudit against the in-person ground truth:\n%s",
              summary.ToString().c_str());

  // 5. The actionable output: listings projected to be defunct.
  std::printf("\nListings flagged as probably defunct (top %lld):\n",
              static_cast<long long>(show_flagged));
  int64_t shown = 0;
  for (size_t e = 0; e < dedup.entities.size() && shown < show_flagged; ++e) {
    corrob::FactId f = static_cast<corrob::FactId>(e);
    if (result.Decide(f)) continue;
    std::printf("  sigma=%.2f  %-34s @ %s%s\n",
                result.fact_probability[e],
                dedup.entities[e].canonical_name.c_str(),
                dedup.entities[e].normalized_address.c_str(),
                actual[e] ? "  [actually open!]" : "");
    ++shown;
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}
