// Quickstart: build a vote matrix, run every corroborator, and read
// the results — using the paper's 5-source / 12-restaurant motivating
// example (Table 1).
//
//   ./example_quickstart

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/registry.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"

namespace {

// Renders the Table 1 vote matrix so readers can check the input.
void PrintVoteMatrix(const corrob::Dataset& dataset,
                     const corrob::GroundTruth& truth) {
  std::vector<std::string> headers{"fact"};
  for (corrob::SourceId s = 0; s < dataset.num_sources(); ++s) {
    headers.push_back(dataset.source_name(s));
  }
  headers.push_back("correct value");
  corrob::TablePrinter table(headers);
  for (corrob::FactId f = 0; f < dataset.num_facts(); ++f) {
    std::vector<std::string> row{dataset.fact_name(f)};
    for (corrob::SourceId s = 0; s < dataset.num_sources(); ++s) {
      row.emplace_back(1, corrob::VoteToChar(dataset.GetVote(s, f)));
    }
    row.push_back(truth.IsTrue(f) ? "true" : "false");
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace

int main() {
  // 1. Get a dataset. Build your own with corrob::DatasetBuilder:
  //      DatasetBuilder b;
  //      b.SetVoteByName("Yelp", "M Bar @ 12 W 44th St", Vote::kTrue);
  //      Dataset dataset = b.Build();
  // Here we use the paper's built-in example.
  corrob::MotivatingExample example = corrob::MakeMotivatingExample();
  std::printf("The paper's motivating example (Table 1):\n");
  PrintVoteMatrix(example.dataset, example.truth);

  // 2. Run every registered algorithm and score it against the truth.
  corrob::TablePrinter results(
      {"Algorithm", "Precision", "Recall", "Accuracy", "F-1"});
  for (const std::string& name : corrob::CorroboratorNames()) {
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(example.dataset).ValueOrDie();
    corrob::BinaryMetrics metrics =
        corrob::EvaluateOnTruth(result, example.truth);
    results.AddRow(name, {metrics.precision, metrics.recall,
                          metrics.accuracy, metrics.f1});
  }
  std::printf("\nCorroboration quality against the ground truth:\n");
  std::fputs(results.ToString().c_str(), stdout);

  // 3. Inspect one run in detail: per-fact probabilities and the
  // multi-value trust readout of IncEstHeu.
  auto inc_est = corrob::MakeCorroborator("IncEstHeu").ValueOrDie();
  corrob::CorroborationResult result =
      inc_est->Run(example.dataset).ValueOrDie();
  std::printf("\nIncEstHeu verdicts:\n");
  for (corrob::FactId f = 0; f < example.dataset.num_facts(); ++f) {
    std::printf("  %-4s sigma=%.2f -> %-5s (actually %s)\n",
                example.dataset.fact_name(f).c_str(),
                result.fact_probability[static_cast<size_t>(f)],
                result.Decide(f) ? "true" : "false",
                example.truth.IsTrue(f) ? "true" : "false");
  }
  std::printf("\nIncEstHeu final source trust:\n");
  for (corrob::SourceId s = 0; s < example.dataset.num_sources(); ++s) {
    std::printf("  %-4s %.2f\n", example.dataset.source_name(s).c_str(),
                result.source_trust[static_cast<size_t>(s)]);
  }
  return 0;
}
