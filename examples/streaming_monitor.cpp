// Streaming monitor: corroborate listings as a crawler discovers
// them, using OnlineCorroborator — the deployment-shaped variant of
// the paper's incremental trust (DESIGN.md). Shows per-arrival
// verdicts and how source trust drifts as evidence accumulates.
//
//   ./example_streaming_monitor [--restaurants 1500] [--seed 7]

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/online.h"
#include "eval/metrics.h"
#include "synth/restaurant_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags =
      corrob::FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("restaurants", 1500));
  options.golden_true = 0;
  options.golden_false = 0;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();

  corrob::OnlineCorroborator online;
  for (corrob::SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
    online.AddSource(corpus.dataset.source_name(s));
  }

  // Listings arrive in crawler-discovery order (a seeded shuffle);
  // the engine has no say in the evaluation order, unlike batch
  // IncEstHeu.
  std::vector<corrob::FactId> order(
      static_cast<size_t>(corpus.dataset.num_facts()));
  for (corrob::FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    order[static_cast<size_t>(f)] = f;
  }
  corrob::Rng rng(options.seed);
  rng.Shuffle(&order);

  std::vector<bool> predicted(
      static_cast<size_t>(corpus.dataset.num_facts()));
  int64_t processed = 0;
  std::printf("Streaming %d listings in discovery order...\n\n",
              corpus.dataset.num_facts());
  corrob::TablePrinter checkpoints(
      {"After", "Accuracy so far", "YellowPages", "CitySearch",
       "MenuPages", "Yelp"});
  int64_t correct_so_far = 0;
  for (corrob::FactId f : order) {
    auto votes = corpus.dataset.VotesOnFact(f);
    auto verdict =
        online
            .Observe(std::vector<corrob::SourceVote>(votes.begin(),
                                                     votes.end()))
            .ValueOrDie();
    predicted[static_cast<size_t>(f)] = verdict.decision;
    if (verdict.decision == corpus.truth.IsTrue(f)) ++correct_so_far;
    ++processed;
    if (processed % (corpus.dataset.num_facts() / 5) == 0) {
      checkpoints.AddRow(
          {std::to_string(processed),
           corrob::FormatDouble(
               static_cast<double>(correct_so_far) /
                   static_cast<double>(processed),
               3),
           corrob::FormatDouble(online.trust(0), 2),
           corrob::FormatDouble(online.trust(4), 2),
           corrob::FormatDouble(online.trust(2), 2),
           corrob::FormatDouble(online.trust(5), 2)});
    }
  }
  std::printf("Trust and running accuracy at checkpoints:\n%s",
              checkpoints.ToString().c_str());

  corrob::BinaryMetrics metrics = corrob::MetricsFromConfusion(
      corrob::CountConfusion(predicted, corpus.truth.labels()));
  std::printf(
      "\nFinal streaming quality: P=%.3f R=%.3f Acc=%.3f F1=%.3f "
      "(batch IncEstHeu chooses its own evaluation order and does "
      "better; see bench_table4_quality).\n",
      metrics.precision, metrics.recall, metrics.accuracy, metrics.f1);
  return 0;
}
