// Multi-answer questions: corroborating a prediction-market snapshot
// in the style of the Hubdub dataset (paper §6.2.6). Demonstrates
// QuestionDataset, negative closure, and per-question winners.
//
//   ./example_hubdub_questions [--questions 357] [--answers 830]
//                              [--users 471] [--seed 830]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/registry.h"
#include "eval/question_eval.h"
#include "synth/hubdub_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags =
      corrob::FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
  corrob::HubdubSimOptions options;
  options.num_questions =
      static_cast<int32_t>(flags.GetInt("questions", options.num_questions));
  options.num_answers =
      static_cast<int32_t>(flags.GetInt("answers", options.num_answers));
  options.num_users =
      static_cast<int32_t>(flags.GetInt("users", options.num_users));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 830));

  corrob::QuestionDataset questions =
      corrob::GenerateHubdub(options).ValueOrDie();
  std::printf(
      "Simulated market: %d settled questions, %d candidate answers, "
      "%d users, %lld bets.\n",
      questions.num_questions(), questions.dataset().num_facts(),
      questions.dataset().num_sources(),
      static_cast<long long>(questions.dataset().num_votes()));

  // A bet on one answer implicitly disputes the question's other
  // answers; materialize that so T/F corroborators can run.
  corrob::Dataset closed = questions.WithNegativeClosure();
  std::printf("After negative closure: %lld votes.\n\n",
              static_cast<long long>(closed.num_votes()));

  corrob::TablePrinter table(
      {"Algorithm", "Errors (FP+FN)", "Accuracy", "Questions right"});
  for (const std::string& name :
       {std::string("Voting"), std::string("TwoEstimate"),
        std::string("ThreeEstimate"), std::string("IncEstPS"),
        std::string("IncEstHeu")}) {
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(closed).ValueOrDie();
    corrob::QuestionEvalReport report =
        corrob::EvaluateQuestions(result, questions).ValueOrDie();
    table.AddRow({name, std::to_string(report.answer_errors),
                  corrob::FormatDouble(report.answer_accuracy, 3),
                  std::to_string(report.questions_correct) + " / " +
                      std::to_string(report.questions_total)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
