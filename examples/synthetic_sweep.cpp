// Synthetic sweep: generate §6.3.1-style corpora across a parameter
// grid of your choosing and compare algorithms — a configurable
// superset of the paper's Figure 3.
//
//   ./example_synthetic_sweep [--facts 20000] [--sources 10]
//       [--inaccurate 2] [--eta 0.02] [--seeds 3]
//       [--vary sources|inaccurate|eta] [--algorithms Voting,IncEstHeu]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"

namespace {

double MeanAccuracy(const std::string& algorithm,
                    corrob::SyntheticOptions options, int seeds) {
  double sum = 0.0;
  for (int seed = 0; seed < seeds; ++seed) {
    options.seed = 1000 + static_cast<uint64_t>(seed);
    corrob::SyntheticDataset data =
        corrob::GenerateSynthetic(options).ValueOrDie();
    auto algo = corrob::MakeCorroborator(algorithm).ValueOrDie();
    corrob::CorroborationResult result =
        algo->Run(data.dataset).ValueOrDie();
    sum += corrob::EvaluateOnTruth(result, data.truth).accuracy;
  }
  return sum / seeds;
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags =
      corrob::FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
  corrob::SyntheticOptions base;
  base.num_facts = static_cast<int32_t>(flags.GetInt("facts", 20000));
  base.num_sources = static_cast<int32_t>(flags.GetInt("sources", 10));
  base.num_inaccurate = static_cast<int32_t>(flags.GetInt("inaccurate", 2));
  base.eta = flags.GetDouble("eta", 0.02);
  const int seeds = static_cast<int>(flags.GetInt("seeds", 3));
  const std::string vary = flags.GetString("vary", "inaccurate");
  std::vector<std::string> algorithms = corrob::Split(
      flags.GetString("algorithms", "Voting,TwoEstimate,IncEstPS,IncEstHeu"),
      ',');

  std::vector<corrob::SyntheticOptions> grid;
  std::vector<std::string> labels;
  if (vary == "sources") {
    for (int total = std::max(2, base.num_inaccurate + 1); total <= 11;
         ++total) {
      corrob::SyntheticOptions o = base;
      o.num_sources = total;
      grid.push_back(o);
      labels.push_back(std::to_string(total));
    }
  } else if (vary == "eta") {
    for (double eta : {0.01, 0.02, 0.03, 0.04, 0.05}) {
      corrob::SyntheticOptions o = base;
      o.eta = eta;
      grid.push_back(o);
      labels.push_back(corrob::FormatDouble(eta, 2));
    }
  } else if (vary == "inaccurate") {
    for (int bad = 0; bad <= base.num_sources; bad += 2) {
      corrob::SyntheticOptions o = base;
      o.num_inaccurate = bad;
      grid.push_back(o);
      labels.push_back(std::to_string(bad));
    }
  } else {
    std::fprintf(stderr, "unknown --vary '%s'\n", vary.c_str());
    return 1;
  }

  std::vector<std::string> headers{vary};
  for (const std::string& a : algorithms) headers.push_back(a);
  corrob::TablePrinter table(headers);
  for (size_t i = 0; i < grid.size(); ++i) {
    std::vector<double> row;
    for (const std::string& a : algorithms) {
      row.push_back(MeanAccuracy(a, grid[i], seeds));
    }
    table.AddRow(labels[i], row, 3);
    std::printf("."), std::fflush(stdout);
  }
  std::printf("\nMean accuracy over %d seeds (%d facts):\n%s", seeds,
              base.num_facts, table.ToString().c_str());
  return 0;
}
