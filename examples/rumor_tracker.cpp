// Rumor tracker: the paper's second motivating domain — technology
// blogs claiming product releases, where every statement is
// affirmative and fabricated rumors go viral (manufactured
// consensus). Shows why voting fails here and how IncEstHeu ranks
// the blogs.
//
//   ./example_rumor_tracker [--rumors 5000] [--virality 0.18]
//                           [--seed 404] [--show 12]

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/rumor_sim.h"

namespace {

const char* TierName(corrob::BlogTier tier) {
  switch (tier) {
    case corrob::BlogTier::kInsider:
      return "insider";
    case corrob::BlogTier::kAggregator:
      return "aggregator";
    case corrob::BlogTier::kTabloid:
      return "tabloid";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags =
      corrob::FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
  corrob::RumorSimOptions options;
  options.num_rumors =
      static_cast<int32_t>(flags.GetInt("rumors", options.num_rumors));
  options.virality = flags.GetDouble("virality", options.virality);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 404));
  const int64_t show = flags.GetInt("show", 12);

  corrob::RumorCorpus corpus =
      corrob::GenerateRumors(options).ValueOrDie();
  std::printf("Tracking %d product rumors across %d blogs "
              "(%lld statements, virality %.2f).\n\n",
              corpus.dataset.num_facts(), corpus.dataset.num_sources(),
              static_cast<long long>(corpus.dataset.num_votes()),
              options.virality);

  // Compare the strategies on manufactured consensus.
  corrob::TablePrinter quality(
      {"Algorithm", "Precision", "Recall", "Accuracy", "F-1"});
  corrob::CorroborationResult inc_result;
  for (const std::string& name :
       {std::string("Voting"), std::string("TwoEstimate"),
        std::string("TruthFinder"), std::string("IncEstHeu")}) {
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(corpus.dataset).ValueOrDie();
    corrob::BinaryMetrics metrics =
        corrob::EvaluateOnTruth(result, corpus.truth);
    quality.AddRow(name, {metrics.precision, metrics.recall,
                          metrics.accuracy, metrics.f1});
    if (name == "IncEstHeu") inc_result = std::move(result);
  }
  std::fputs(quality.ToString().c_str(), stdout);

  // Blog ranking by learned trust.
  std::vector<corrob::SourceId> ranking(
      static_cast<size_t>(corpus.dataset.num_sources()));
  std::iota(ranking.begin(), ranking.end(), 0);
  std::sort(ranking.begin(), ranking.end(),
            [&](corrob::SourceId a, corrob::SourceId b) {
              return inc_result.source_trust[static_cast<size_t>(a)] >
                     inc_result.source_trust[static_cast<size_t>(b)];
            });
  std::printf("\nBlog ranking by IncEstHeu trust:\n");
  corrob::TablePrinter blogs({"Blog", "Tier", "Trust"});
  for (corrob::SourceId s : ranking) {
    blogs.AddRow({corpus.dataset.source_name(s),
                  TierName(corpus.tiers[static_cast<size_t>(s)]),
                  corrob::FormatDouble(
                      inc_result.source_trust[static_cast<size_t>(s)], 2)});
  }
  std::fputs(blogs.ToString().c_str(), stdout);

  // The actionable output: loud rumors flagged as fabricated.
  std::printf("\nViral rumors flagged as fabricated (top %lld by "
              "affirmations):\n",
              static_cast<long long>(show));
  std::vector<corrob::FactId> flagged;
  for (corrob::FactId f = 0; f < corpus.dataset.num_facts(); ++f) {
    if (!inc_result.Decide(f)) flagged.push_back(f);
  }
  std::sort(flagged.begin(), flagged.end(),
            [&](corrob::FactId a, corrob::FactId b) {
              return corpus.dataset.CountVotes(a, corrob::Vote::kTrue) >
                     corpus.dataset.CountVotes(b, corrob::Vote::kTrue);
            });
  int64_t shown = 0;
  for (corrob::FactId f : flagged) {
    if (shown >= show) break;
    std::printf("  %-10s %d blogs repeat it, sigma=%.2f%s\n",
                corpus.dataset.fact_name(f).c_str(),
                corpus.dataset.CountVotes(f, corrob::Vote::kTrue),
                inc_result.fact_probability[static_cast<size_t>(f)],
                corpus.truth.IsTrue(f) ? "  [actually real!]" : "");
    ++shown;
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}
