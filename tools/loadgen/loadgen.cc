// corrob-loadgen: open-ish-loop load generator and saturation
// benchmark for corrobd (docs/SERVING.md, "Saturation benchmarking").
//
// Sweeps a list of offered QPS levels against a running daemon and
// reports, per level: achieved QPS, result/shed/error/quota counts,
// the shed rate, p50/p90/p99/p999 latency of successful
// corroborations, and — when the daemon's result cache is on — the
// level's cache hit rate plus the cold-vs-hit latency split. The
// machine-readable sidecar BENCH_serving.json (schema
// corrob.serving_bench/3, validated by tools/obs/validate_trace.py)
// carries the whole curve.
//
// Every request carries a client-generated id ("lg<level>-<seq>")
// that the daemon echoes back (protocol v3) and keeps in its flight
// recorder. At the end of each level the generator fetches the
// introspection document and joins the two views by id, reporting
// client-observed vs server-side p50 and their delta — the time spent
// outside the daemon's own measurement window (transport, framing,
// accept queues). The delta can be slightly negative: the two p50s
// come from the joined sample set but are independent medians.
//
// Key diversity and tenancy:
//   --unique-keys N   spread requests over N distinct cache keys via
//                     a synthetic request option ("lg_key"); 0 (the
//                     default) sends identical requests, the
//                     repeated-query regime where the cache shines
//   --tenants a,b,c   round-robin requests over tenant ids (empty =
//                     the anonymous tenant)
//
// Response accounting is the chaos-soak contract:
//   results/errors/overloaded/quota  fully received typed responses
//   aborted                   the connection died before ANY response
//                              byte (indistinguishable from a drain
//                              that never read the request — not proof
//                              of a drop)
//   dropped                    response bytes arrived and then the
//                              connection died mid-frame (typed
//                              kConnectionLost): the daemon started an
//                              answer the client never got. Always a
//                              bug; --fail-on-dropped turns any of
//                              these into exit code 1.
//
//   corrob-loadgen --socket /tmp/corrobd.sock --dataset flights
//       --qps 50,100,200,400 --duration-ms 2000 --connections 8

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/protocol.h"

namespace corrob {
namespace loadgen {
namespace {

using server::CorrobClient;
using server::CorroborateOutcome;
using server::CorroborateRequest;

struct LoadgenConfig {
  std::string socket_path;
  std::string dataset;
  std::string algorithm = "IncEstHeu";
  server::Priority priority = server::Priority::kBatch;
  std::vector<double> qps_levels;
  int64_t duration_ms = 2000;
  int connections = 8;
  int64_t timeout_ms = 0;
  int64_t max_rounds = 0;
  /// Tenant ids requests round-robin over; empty = anonymous only.
  std::vector<std::string> tenants;
  /// Distinct cache keys to spread requests over (0 = one key).
  int64_t unique_keys = 0;
  std::string json_path = "BENCH_serving.json";
  bool fail_on_dropped = false;
};

/// Counters and latencies of one offered-QPS level, shared by the
/// worker pool.
struct LevelStats {
  std::mutex mutex;
  /// Request-id prefix of this level ("lg<level>-").
  std::string id_prefix;
  /// Global request sequence: assigns tenants and synthetic keys.
  int64_t next_sequence = 0;
  /// Synthetic key indices already issued this level; the first
  /// request of each index is the key's cold run.
  std::set<int64_t> seen_keys;
  int64_t requests = 0;
  int64_t results = 0;
  int64_t shed = 0;
  int64_t errors = 0;
  int64_t quota = 0;
  int64_t aborted = 0;
  int64_t dropped = 0;
  std::vector<double> latencies_ms;
  std::vector<double> cold_latencies_ms;
  std::vector<double> hit_latencies_ms;
  /// (request id, client-observed latency) of each result, for the
  /// end-of-level join against the daemon's flight recorder.
  std::vector<std::pair<std::string, double>> client_by_id;
};

/// Nearest-rank percentile over an ALREADY SORTED sample buffer; the
/// caller sorts once and reads every percentile from the same sort.
double PercentileSorted(const std::vector<double>& sorted_ms,
                        double fraction) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      fraction * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

/// Snapshot of the daemon's cache counters, via the stats frame.
struct CacheCounters {
  bool ok = false;
  int64_t hits = 0;
  int64_t misses = 0;
};

CacheCounters FetchCacheCounters(const LoadgenConfig& config) {
  CacheCounters counters;
  Result<CorrobClient> client = CorrobClient::Connect(config.socket_path);
  if (!client.ok()) return counters;
  Result<std::string> stats = client.ValueOrDie().Stats(StopSignal());
  if (!stats.ok()) return counters;
  obs::JsonValue parsed;
  if (!obs::JsonValue::Parse(stats.ValueOrDie(), &parsed)) return counters;
  const obs::JsonValue* cache = parsed.Find("cache");
  if (cache == nullptr) return counters;
  const obs::JsonValue* hits = cache->Find("hits");
  const obs::JsonValue* misses = cache->Find("misses");
  if (hits == nullptr || misses == nullptr) return counters;
  counters.ok = true;
  counters.hits = hits->int_value();
  counters.misses = misses->int_value();
  return counters;
}

/// The client-vs-server latency join of one level: every request this
/// level issued that is still in the daemon's flight-recorder ring
/// contributes a (client ms, server ms) pair.
struct LatencyCorrelation {
  int64_t count = 0;
  double client_p50_ms = 0.0;
  double server_p50_ms = 0.0;
  /// client p50 minus server p50 — transport, framing, and accept
  /// queues outside the daemon's window. Independent medians over the
  /// joined set, so slightly negative values are legitimate.
  double delta_p50_ms = 0.0;
};

LatencyCorrelation CorrelateWithRecorder(
    const LoadgenConfig& config,
    const std::vector<std::pair<std::string, double>>& client_by_id) {
  LatencyCorrelation correlation;
  if (client_by_id.empty()) return correlation;
  Result<CorrobClient> client = CorrobClient::Connect(config.socket_path);
  if (!client.ok()) return correlation;
  server::IntrospectRequest request;
  request.top_k = 1;
  // Ask for the whole ring; the daemon trims to its capacity.
  request.max_recent = 1u << 20;
  Result<std::string> payload =
      client.ValueOrDie().Introspect(request, StopSignal());
  if (!payload.ok()) return correlation;  // daemon predates introspection
  obs::JsonValue doc;
  if (!obs::JsonValue::Parse(payload.ValueOrDie(), &doc)) return correlation;
  const obs::JsonValue* recorder = doc.Find("recorder");
  const obs::JsonValue* recent =
      recorder != nullptr ? recorder->Find("recent") : nullptr;
  if (recent == nullptr || !recent->is_array()) return correlation;

  std::map<std::string, int64_t> server_total_nanos;
  for (const obs::JsonValue& row : recent->items()) {
    const obs::JsonValue* id = row.Find("id");
    const obs::JsonValue* total = row.Find("total_nanos");
    if (id != nullptr && id->is_string() && !id->string_value().empty() &&
        total != nullptr && total->is_int()) {
      server_total_nanos[id->string_value()] = total->int_value();
    }
  }

  std::vector<double> client_ms;
  std::vector<double> server_ms;
  for (const auto& [id, latency_ms] : client_by_id) {
    const auto it = server_total_nanos.find(id);
    if (it == server_total_nanos.end()) continue;
    client_ms.push_back(latency_ms);
    server_ms.push_back(static_cast<double>(it->second) / 1e6);
  }
  correlation.count = static_cast<int64_t>(client_ms.size());
  if (correlation.count == 0) return correlation;
  std::sort(client_ms.begin(), client_ms.end());
  std::sort(server_ms.begin(), server_ms.end());
  correlation.client_p50_ms = PercentileSorted(client_ms, 0.50);
  correlation.server_p50_ms = PercentileSorted(server_ms, 0.50);
  correlation.delta_p50_ms =
      correlation.client_p50_ms - correlation.server_p50_ms;
  return correlation;
}

/// One paced worker: issues requests at `interval_ms` spacing until
/// `deadline`, reconnecting after transport failures.
void RunWorker(const LoadgenConfig& config, double interval_ms,
               double start_offset_ms, Deadline deadline,
               LevelStats* stats) {
  const obs::Clock* clock = obs::MonotonicClock::Get();
  CancellationToken pacer;  // never cancelled; used as a sleeper
  (void)pacer.WaitForMs(start_offset_ms);

  CorroborateRequest request;
  request.priority = config.priority;
  request.dataset = config.dataset;
  request.algorithm = config.algorithm;
  request.timeout_ms = static_cast<uint32_t>(config.timeout_ms);
  request.max_rounds = static_cast<uint32_t>(config.max_rounds);

  Result<CorrobClient> client = CorrobClient::Connect(config.socket_path);
  int64_t next_fire_nanos = clock->NowNanos();
  while (!deadline.expired()) {
    if (!client.ok() || !client.ValueOrDie().connected()) {
      client = CorrobClient::Connect(config.socket_path);
      if (!client.ok()) break;  // daemon gone (e.g. drained away)
    }
    // Claim this request's slot in the level-wide sequence: tenant
    // round-robin, synthetic key, and whether this is the key's cold
    // (first-ever) issue.
    bool cold;
    {
      std::lock_guard<std::mutex> lock(stats->mutex);
      const int64_t sequence = stats->next_sequence++;
      request.request_id = stats->id_prefix + std::to_string(sequence);
      if (!config.tenants.empty()) {
        request.tenant = config.tenants[static_cast<size_t>(
            sequence % static_cast<int64_t>(config.tenants.size()))];
      }
      int64_t key_index = 0;
      if (config.unique_keys > 0) {
        key_index = sequence % config.unique_keys;
        request.options = {{"lg_key", std::to_string(key_index)}};
      }
      cold = stats->seen_keys.insert(key_index).second;
    }
    const int64_t request_started = clock->NowNanos();
    Result<CorroborateOutcome> outcome =
        client.ValueOrDie().Corroborate(request, StopSignal());
    const double latency_ms =
        static_cast<double>(clock->NowNanos() - request_started) / 1e6;

    {
      std::lock_guard<std::mutex> lock(stats->mutex);
      ++stats->requests;
      if (outcome.ok()) {
        switch (outcome.ValueOrDie().kind) {
          case CorroborateOutcome::Kind::kResult:
            ++stats->results;
            stats->latencies_ms.push_back(latency_ms);
            stats->client_by_id.emplace_back(request.request_id, latency_ms);
            if (cold) {
              stats->cold_latencies_ms.push_back(latency_ms);
            } else {
              stats->hit_latencies_ms.push_back(latency_ms);
            }
            break;
          case CorroborateOutcome::Kind::kOverloaded:
            ++stats->shed;
            break;
          case CorroborateOutcome::Kind::kQuotaExceeded:
            ++stats->quota;
            break;
          case CorroborateOutcome::Kind::kError:
            ++stats->errors;
            break;
        }
      } else if (outcome.status().code() == StatusCode::kConnectionLost) {
        // A response was being written and the stream died under it.
        ++stats->dropped;
      } else {
        ++stats->aborted;
      }
    }
    if (!outcome.ok()) client.ValueOrDie().Close();  // force reconnect

    next_fire_nanos += static_cast<int64_t>(interval_ms * 1e6);
    const double sleep_ms =
        static_cast<double>(next_fire_nanos - clock->NowNanos()) / 1e6;
    if (sleep_ms > 0) {
      (void)pacer.WaitForMs(sleep_ms);
    } else {
      // Running late (service time exceeds the interval): fire
      // immediately and re-anchor so lateness does not compound into
      // an unbounded burst.
      next_fire_nanos = clock->NowNanos();
    }
  }
}

obs::JsonValue RunLevel(const LoadgenConfig& config, double offered_qps,
                        int level_index) {
  const obs::Clock* clock = obs::MonotonicClock::Get();
  LevelStats stats;
  stats.id_prefix = "lg" + std::to_string(level_index) + "-";
  const double interval_ms =
      static_cast<double>(config.connections) / offered_qps * 1000.0;
  const CacheCounters cache_before = FetchCacheCounters(config);
  const Deadline deadline =
      Deadline::AfterMs(clock, static_cast<double>(config.duration_ms));
  const int64_t level_started = clock->NowNanos();

  std::vector<std::thread> workers;
  workers.reserve(config.connections);
  for (int w = 0; w < config.connections; ++w) {
    // Stagger starts so the pool approximates a uniform arrival
    // process instead of firing in lockstep bursts.
    const double offset_ms = 1000.0 / offered_qps * w;
    workers.emplace_back(RunWorker, std::cref(config), interval_ms,
                         offset_ms, deadline, &stats);
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed_seconds =
      static_cast<double>(clock->NowNanos() - level_started) / 1e9;
  const CacheCounters cache_after = FetchCacheCounters(config);

  const double achieved_qps =
      elapsed_seconds > 0
          ? static_cast<double>(stats.requests) / elapsed_seconds
          : 0.0;
  const double shed_rate =
      stats.requests > 0
          ? static_cast<double>(stats.shed) /
                static_cast<double>(stats.requests)
          : 0.0;
  // Hit rate from the daemon's own counters, so coalesced followers
  // and other clients' traffic do not skew the arithmetic.
  double hit_rate = 0.0;
  if (cache_before.ok && cache_after.ok) {
    const int64_t hits = cache_after.hits - cache_before.hits;
    const int64_t lookups =
        hits + (cache_after.misses - cache_before.misses);
    if (lookups > 0) {
      hit_rate = static_cast<double>(hits) / static_cast<double>(lookups);
    }
  }
  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  std::sort(stats.cold_latencies_ms.begin(), stats.cold_latencies_ms.end());
  std::sort(stats.hit_latencies_ms.begin(), stats.hit_latencies_ms.end());
  const double p50 = PercentileSorted(stats.latencies_ms, 0.50);
  const double p90 = PercentileSorted(stats.latencies_ms, 0.90);
  const double p99 = PercentileSorted(stats.latencies_ms, 0.99);
  const double p999 = PercentileSorted(stats.latencies_ms, 0.999);
  const double cold_p50 = PercentileSorted(stats.cold_latencies_ms, 0.50);
  const double hit_p50 = PercentileSorted(stats.hit_latencies_ms, 0.50);
  const LatencyCorrelation correlation =
      CorrelateWithRecorder(config, stats.client_by_id);

  std::printf(
      "%10.1f %10.1f %9lld %9lld %7lld %7lld %7lld %7lld %7lld %9.2f "
      "%9.2f %8.1f%%\n",
      offered_qps, achieved_qps, static_cast<long long>(stats.requests),
      static_cast<long long>(stats.results),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.errors),
      static_cast<long long>(stats.quota),
      static_cast<long long>(stats.aborted),
      static_cast<long long>(stats.dropped), p50, p99, hit_rate * 100.0);

  obs::JsonValue level = obs::JsonValue::Object();
  level.Set("offered_qps", obs::JsonValue::Double(offered_qps));
  level.Set("achieved_qps", obs::JsonValue::Double(achieved_qps));
  level.Set("requests", obs::JsonValue::Int(stats.requests));
  level.Set("results", obs::JsonValue::Int(stats.results));
  level.Set("shed", obs::JsonValue::Int(stats.shed));
  level.Set("errors", obs::JsonValue::Int(stats.errors));
  level.Set("quota", obs::JsonValue::Int(stats.quota));
  level.Set("aborted", obs::JsonValue::Int(stats.aborted));
  level.Set("dropped", obs::JsonValue::Int(stats.dropped));
  level.Set("shed_rate", obs::JsonValue::Double(shed_rate));
  level.Set("hit_rate", obs::JsonValue::Double(hit_rate));
  level.Set("p50_ms", obs::JsonValue::Double(p50));
  level.Set("p90_ms", obs::JsonValue::Double(p90));
  level.Set("p99_ms", obs::JsonValue::Double(p99));
  level.Set("p999_ms", obs::JsonValue::Double(p999));
  level.Set("cold_p50_ms", obs::JsonValue::Double(cold_p50));
  level.Set("hit_p50_ms", obs::JsonValue::Double(hit_p50));
  level.Set("corr_count", obs::JsonValue::Int(correlation.count));
  level.Set("corr_client_p50_ms",
            obs::JsonValue::Double(correlation.client_p50_ms));
  level.Set("corr_server_p50_ms",
            obs::JsonValue::Double(correlation.server_p50_ms));
  level.Set("corr_transport_delta_p50_ms",
            obs::JsonValue::Double(correlation.delta_p50_ms));
  return level;
}

[[nodiscard]] Status ParseConfig(const FlagParser& flags,
                                 LoadgenConfig* config) {
  config->socket_path = flags.GetString("socket", "");
  if (config->socket_path.empty()) {
    return Status::InvalidArgument("--socket is required");
  }
  config->dataset = flags.GetString("dataset", "");
  if (config->dataset.empty()) {
    return Status::InvalidArgument(
        "--dataset is required (a name the daemon loaded at startup)");
  }
  config->algorithm = flags.GetString("algorithm", config->algorithm);
  CORROB_ASSIGN_OR_RETURN(
      config->priority,
      server::ParsePriority(flags.GetString("priority", "batch")));
  CORROB_ASSIGN_OR_RETURN(config->duration_ms,
                          flags.TryGetInt("duration-ms", 2000));
  CORROB_ASSIGN_OR_RETURN(int64_t connections,
                          flags.TryGetInt("connections", 8));
  if (connections < 1) {
    return Status::InvalidArgument("--connections must be >= 1");
  }
  config->connections = static_cast<int>(connections);
  CORROB_ASSIGN_OR_RETURN(config->timeout_ms,
                          flags.TryGetInt("timeout-ms", 0));
  CORROB_ASSIGN_OR_RETURN(config->max_rounds,
                          flags.TryGetInt("max-rounds", 0));
  CORROB_ASSIGN_OR_RETURN(config->unique_keys,
                          flags.TryGetInt("unique-keys", 0));
  if (config->unique_keys < 0) {
    return Status::InvalidArgument("--unique-keys must be >= 0");
  }
  const std::string tenants_text = flags.GetString("tenants", "");
  if (!tenants_text.empty()) {
    size_t begin = 0;
    while (begin <= tenants_text.size()) {
      const size_t comma = tenants_text.find(',', begin);
      config->tenants.push_back(tenants_text.substr(
          begin,
          comma == std::string::npos ? std::string::npos : comma - begin));
      if (comma == std::string::npos) break;
      begin = comma + 1;
    }
  }
  config->json_path = flags.GetString("json", config->json_path);
  config->fail_on_dropped = flags.GetBool("fail-on-dropped", false);

  const std::string qps_text = flags.GetString("qps", "50,100,200");
  size_t begin = 0;
  while (begin <= qps_text.size()) {
    const size_t comma = qps_text.find(',', begin);
    const std::string part = qps_text.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    try {
      const double qps = std::stod(part);
      if (qps <= 0) throw std::invalid_argument("non-positive");
      config->qps_levels.push_back(qps);
    } catch (...) {
      return Status::InvalidArgument("--qps: '" + part +
                                     "' is not a positive number");
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return Status::OK();
}

int Run(int argc, char** argv) {
  Result<FlagParser> flags = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 flags.status().ToString().c_str());
    return 2;
  }
  LoadgenConfig config;
  if (Status parsed = ParseConfig(flags.ValueOrDie(), &config);
      !parsed.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", parsed.ToString().c_str());
    return 2;
  }

  // Probe the daemon before unleashing the pool: a typo'd socket path
  // should be one clear error, not connections*levels of them.
  {
    Result<CorrobClient> probe = CorrobClient::Connect(config.socket_path);
    if (!probe.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   probe.status().ToString().c_str());
      return 1;
    }
    Result<std::string> pong =
        probe.ValueOrDie().Ping("loadgen", StopSignal());
    if (!pong.ok()) {
      std::fprintf(stderr, "loadgen: daemon did not answer a ping: %s\n",
                   pong.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("%10s %10s %9s %9s %7s %7s %7s %7s %7s %9s %9s %9s\n",
              "offered", "achieved", "requests", "results", "shed",
              "errors", "quota", "aborted", "dropped", "p50_ms",
              "p99_ms", "hit%");
  obs::JsonValue levels = obs::JsonValue::Array();
  int64_t total_dropped = 0;
  int64_t total_responses = 0;
  for (size_t index = 0; index < config.qps_levels.size(); ++index) {
    const double qps = config.qps_levels[index];
    obs::JsonValue level = RunLevel(config, qps, static_cast<int>(index));
    total_dropped += level.Find("dropped")->int_value();
    total_responses += level.Find("results")->int_value() +
                       level.Find("shed")->int_value() +
                       level.Find("errors")->int_value() +
                       level.Find("quota")->int_value();
    levels.Append(std::move(level));
  }

  std::printf("\nloadgen: %lld typed response(s) received, %lld dropped\n",
              static_cast<long long>(total_responses),
              static_cast<long long>(total_dropped));

  if (config.json_path != "none" && !config.json_path.empty()) {
    obs::JsonValue root = obs::JsonValue::Object();
    root.Set("schema", obs::JsonValue::Str("corrob.serving_bench/3"));
    obs::JsonValue bench_config = obs::JsonValue::Object();
    bench_config.Set("socket", obs::JsonValue::Str(config.socket_path));
    bench_config.Set("dataset", obs::JsonValue::Str(config.dataset));
    bench_config.Set("algorithm", obs::JsonValue::Str(config.algorithm));
    bench_config.Set(
        "priority",
        obs::JsonValue::Str(std::string(server::PriorityName(config.priority))));
    bench_config.Set("connections", obs::JsonValue::Int(config.connections));
    bench_config.Set("duration_ms", obs::JsonValue::Int(config.duration_ms));
    bench_config.Set("unique_keys", obs::JsonValue::Int(config.unique_keys));
    obs::JsonValue tenants = obs::JsonValue::Array();
    for (const std::string& tenant : config.tenants) {
      tenants.Append(obs::JsonValue::Str(tenant));
    }
    bench_config.Set("tenants", std::move(tenants));
    root.Set("config", std::move(bench_config));
    root.Set("levels", std::move(levels));
    obs::JsonValue totals = obs::JsonValue::Object();
    totals.Set("responses_received", obs::JsonValue::Int(total_responses));
    totals.Set("dropped", obs::JsonValue::Int(total_dropped));
    root.Set("totals", std::move(totals));
    if (Status written =
            WriteStringToFile(config.json_path, root.Dump(2) + "\n");
        written.ok()) {
      std::printf("wrote %s\n", config.json_path.c_str());
    } else {
      std::fprintf(stderr, "loadgen: cannot write %s: %s\n",
                   config.json_path.c_str(), written.ToString().c_str());
      return 1;
    }
  }

  if (config.fail_on_dropped && total_dropped > 0) {
    std::fprintf(stderr,
                 "loadgen: %lld dropped response(s) — the daemon started "
                 "writing an answer the client never received\n",
                 static_cast<long long>(total_dropped));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace loadgen
}  // namespace corrob

int main(int argc, char** argv) { return corrob::loadgen::Run(argc, argv); }
