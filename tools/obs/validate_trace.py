#!/usr/bin/env python3
"""Schema checker for the observability JSON artifacts.

Validates any mix of the four JSON artifact kinds the toolchain emits,
autodetecting each file's kind:

  trace      Chrome trace_event JSON from --trace
             ({"displayTimeUnit", "traceEvents": [...]})
  metrics    MetricsSnapshot JSON from --metrics
             ({"counters", "gauges", "histograms"})
  telemetry  RunTelemetry JSON from --telemetry
             ({"schema": "corrob.telemetry/1", ...})
  bench      BenchReport JSON from the bench binaries
             ({"schema": "corrob.bench/1", ...})
  serving    BENCH_serving.json from corrob-loadgen
             ({"schema": "corrob.serving_bench/1" through
               "corrob.serving_bench/3", ...})
  wal_bench  BENCH_wal.json from bench_wal_append
             ({"schema": "corrob.wal_bench/1", ...})
  introspect live-introspection document from corrobd's 0x06 frame
             (e.g. `corrobctl requests --raw`)
             ({"schema": "corrob.introspect/1", ...})

Usage: validate_trace.py FILE [FILE...]
Exit status 0 when every file validates, 1 otherwise. Pure stdlib —
no jsonschema dependency — so it runs anywhere CI does.
"""

import json
import sys


class Invalid(Exception):
    pass


def expect(condition, message):
    if not condition:
        raise Invalid(message)


def expect_keys(obj, keys, where):
    expect(isinstance(obj, dict), f"{where}: expected an object")
    for key in keys:
        expect(key in obj, f"{where}: missing key '{key}'")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ------------------------------------------------------------------
# Per-kind validators
# ------------------------------------------------------------------


def validate_trace(doc):
    expect_keys(doc, ["displayTimeUnit", "traceEvents"], "trace")
    expect(doc["displayTimeUnit"] == "ms",
           "trace: displayTimeUnit must be 'ms'")
    events = doc["traceEvents"]
    expect(isinstance(events, list), "trace: traceEvents must be an array")
    last_ts = None
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        expect_keys(event, ["name", "ph", "ts", "dur", "pid", "tid"], where)
        expect(isinstance(event["name"], str) and event["name"],
               f"{where}: name must be a non-empty string")
        expect(event["ph"] == "X",
               f"{where}: ph must be 'X' (complete event)")
        expect(is_number(event["ts"]) and event["ts"] >= 0,
               f"{where}: ts must be a non-negative number")
        expect(is_number(event["dur"]) and event["dur"] >= 0,
               f"{where}: dur must be a non-negative number")
        expect(isinstance(event["pid"], int) and isinstance(event["tid"], int),
               f"{where}: pid/tid must be integers")
        if last_ts is not None:
            expect(event["ts"] >= last_ts,
                   f"{where}: events must be sorted by ts")
        last_ts = event["ts"]
    return f"{len(events)} events"


def validate_metrics(doc):
    expect_keys(doc, ["counters", "gauges", "histograms"], "metrics")
    for section in ("counters", "gauges"):
        expect(isinstance(doc[section], dict),
               f"metrics: {section} must be an object")
        for name, value in doc[section].items():
            expect(isinstance(value, int),
                   f"metrics: {section}['{name}'] must be an integer")
    histograms = doc["histograms"]
    expect(isinstance(histograms, dict),
           "metrics: histograms must be an object")
    for name, hist in histograms.items():
        where = f"metrics: histograms['{name}']"
        expect_keys(hist, ["count", "sum", "buckets"], where)
        expect(isinstance(hist["count"], int) and hist["count"] >= 0,
               f"{where}: count must be a non-negative integer")
        expect(isinstance(hist["sum"], int), f"{where}: sum must be an integer")
        expect(isinstance(hist["buckets"], dict),
               f"{where}: buckets must be an object")
        bucket_total = 0
        for bucket, count in hist["buckets"].items():
            expect(bucket.isdigit() and 0 <= int(bucket) < 64,
                   f"{where}: bucket key '{bucket}' must be an index in [0, 64)")
            expect(isinstance(count, int) and count > 0,
                   f"{where}: buckets['{bucket}'] must be a positive integer")
            bucket_total += count
        expect(bucket_total == hist["count"],
               f"{where}: bucket counts sum to {bucket_total}, "
               f"count says {hist['count']}")
    return (f"{len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
            f"{len(histograms)} histograms")


ROUND_KINDS = {"balanced", "greedy", "one_sided_positive",
               "one_sided_negative", "final_ties", "supervised"}


def validate_telemetry(doc):
    expect_keys(doc, ["schema", "algorithm", "num_facts", "num_sources",
                      "iterations", "converged", "iteration_stats",
                      "rounds"], "telemetry")
    expect(doc["schema"] == "corrob.telemetry/1",
           f"telemetry: unknown schema '{doc.get('schema')}'")
    expect(isinstance(doc["algorithm"], str) and doc["algorithm"],
           "telemetry: algorithm must be a non-empty string")
    for key in ("num_facts", "num_sources", "iterations"):
        expect(isinstance(doc[key], int) and doc[key] >= 0,
               f"telemetry: {key} must be a non-negative integer")
    expect(isinstance(doc["converged"], bool),
           "telemetry: converged must be a boolean")
    expect(isinstance(doc["iteration_stats"], list),
           "telemetry: iteration_stats must be an array")
    for i, stats in enumerate(doc["iteration_stats"]):
        where = f"telemetry: iteration_stats[{i}]"
        expect_keys(stats, ["iteration", "max_delta", "trust_min",
                            "trust_mean", "trust_max", "facts_committed"],
                    where)
        for key in ("max_delta", "trust_min", "trust_mean", "trust_max"):
            expect(is_number(stats[key]), f"{where}: {key} must be a number")
    expect(isinstance(doc["rounds"], list),
           "telemetry: rounds must be an array")
    for i, event in enumerate(doc["rounds"]):
        where = f"telemetry: rounds[{i}]"
        expect_keys(event, ["round", "kind", "positive_group",
                            "negative_group", "positive_signature",
                            "negative_signature", "fg_positive",
                            "fg_negative", "committed_n",
                            "facts_committed"], where)
        expect(event["kind"] in ROUND_KINDS,
               f"{where}: unknown round kind '{event['kind']}'")
        if event["kind"] == "balanced":
            expected = min(event["fg_positive"], event["fg_negative"])
            expect(event["committed_n"] == expected,
                   f"{where}: balanced round committed_n "
                   f"{event['committed_n']} != min(|FG+|, |FG-|) "
                   f"= {expected}")
    return (f"{doc['algorithm']}, {len(doc['rounds'])} rounds, "
            f"{len(doc['iteration_stats'])} iterations")


def validate_bench(doc):
    expect_keys(doc, ["schema", "bench", "config", "rows", "metrics"],
                "bench")
    expect(doc["schema"] == "corrob.bench/1",
           f"bench: unknown schema '{doc.get('schema')}'")
    expect(isinstance(doc["bench"], str) and doc["bench"],
           "bench: bench must be a non-empty string")
    expect(isinstance(doc["config"], dict), "bench: config must be an object")
    expect(isinstance(doc["rows"], list) and doc["rows"],
           "bench: rows must be a non-empty array")
    for i, row in enumerate(doc["rows"]):
        where = f"bench: rows[{i}]"
        expect_keys(row, ["method", "seconds"], where)
        expect(isinstance(row["method"], str) and row["method"],
               f"{where}: method must be a non-empty string")
        expect(is_number(row["seconds"]) and row["seconds"] >= 0,
               f"{where}: seconds must be a non-negative number")
    validate_metrics(doc["metrics"])
    return f"{doc['bench']}, {len(doc['rows'])} rows"


def validate_wal_bench(doc):
    expect_keys(doc, ["schema", "bench", "config", "rows"], "wal_bench")
    expect(doc["schema"] == "corrob.wal_bench/1",
           f"wal_bench: unknown schema '{doc.get('schema')}'")
    expect(doc["bench"] == "wal_append",
           f"wal_bench: unknown bench '{doc.get('bench')}'")
    expect(isinstance(doc["config"], dict),
           "wal_bench: config must be an object")
    rows = doc["rows"]
    expect(isinstance(rows, list) and rows,
           "wal_bench: rows must be a non-empty array")
    policies = []
    for i, row in enumerate(rows):
        where = f"wal_bench: rows[{i}]"
        expect_keys(row, ["policy", "records", "seconds",
                          "records_per_sec"], where)
        expect(row["policy"] in ("always", "interval", "never"),
               f"{where}: policy must be always|interval|never")
        expect(isinstance(row["records"], int) and row["records"] > 0,
               f"{where}: records must be a positive integer")
        expect(is_number(row["seconds"]) and row["seconds"] >= 0,
               f"{where}: seconds must be a non-negative number")
        expect(is_number(row["records_per_sec"])
               and row["records_per_sec"] >= 0,
               f"{where}: records_per_sec must be a non-negative number")
        policies.append(row["policy"])
    expect(len(set(policies)) == len(policies),
           "wal_bench: duplicate policy rows")
    rates = ", ".join(f"{row['policy']}={row['records_per_sec']:.0f}/s"
                      for row in rows)
    return rates


def validate_stream_telemetry(doc):
    expect_keys(doc, ["schema", "facts_observed", "decisions_true",
                      "decisions_false", "deferrals", "num_sources"],
                "stream_telemetry")
    for key in ("facts_observed", "decisions_true", "decisions_false",
                "deferrals", "num_sources"):
        expect(isinstance(doc[key], int) and doc[key] >= 0,
               f"stream_telemetry: {key} must be a non-negative integer")
    expect(doc["decisions_true"] + doc["decisions_false"]
           == doc["facts_observed"],
           "stream_telemetry: decisions_true + decisions_false must "
           "equal facts_observed")
    return f"{doc['facts_observed']} facts observed"


def validate_serving_bench(doc):
    expect_keys(doc, ["schema", "config", "levels", "totals"],
                "serving_bench")
    schema = doc.get("schema")
    expect(schema in ("corrob.serving_bench/1", "corrob.serving_bench/2",
                      "corrob.serving_bench/3"),
           f"serving_bench: unknown schema '{schema}'")
    v3 = schema == "corrob.serving_bench/3"
    v2 = v3 or schema == "corrob.serving_bench/2"
    config = doc["config"]
    config_keys = ["socket", "dataset", "algorithm", "priority",
                   "connections", "duration_ms"]
    if v2:
        config_keys += ["unique_keys", "tenants"]
    expect_keys(config, config_keys, "serving_bench: config")
    expect(config["priority"] in ("interactive", "batch", "best_effort"),
           f"serving_bench: unknown priority '{config.get('priority')}'")
    if v2:
        expect(isinstance(config["unique_keys"], int)
               and config["unique_keys"] >= 0,
               "serving_bench: config.unique_keys must be a "
               "non-negative integer")
        expect(isinstance(config["tenants"], list)
               and all(isinstance(t, str) for t in config["tenants"]),
               "serving_bench: config.tenants must be an array of strings")
    levels = doc["levels"]
    expect(isinstance(levels, list) and levels,
           "serving_bench: levels must be a non-empty array")
    counted_responses = 0
    counted_dropped = 0
    for i, level in enumerate(levels):
        where = f"serving_bench: levels[{i}]"
        number_keys = ["offered_qps", "achieved_qps", "shed_rate",
                       "p50_ms", "p99_ms"]
        int_keys = ["requests", "results", "shed", "errors", "aborted",
                    "dropped"]
        if v2:
            number_keys += ["hit_rate", "cold_p50_ms", "hit_p50_ms"]
            int_keys += ["quota"]
        if v3:
            number_keys += ["p90_ms", "p999_ms", "corr_client_p50_ms",
                            "corr_server_p50_ms"]
            int_keys += ["corr_count"]
            # The transport delta is client p50 minus server p50 over
            # the joined sample set: legitimately negative when the
            # two independent medians land on different requests.
            expect_keys(level, ["corr_transport_delta_p50_ms"], where)
            expect(is_number(level["corr_transport_delta_p50_ms"]),
                   f"{where}: corr_transport_delta_p50_ms must be a number")
        expect_keys(level, number_keys + int_keys, where)
        for key in number_keys:
            expect(is_number(level[key]) and level[key] >= 0,
                   f"{where}: {key} must be a non-negative number")
        for key in int_keys:
            expect(isinstance(level[key], int) and level[key] >= 0,
                   f"{where}: {key} must be a non-negative integer")
        if v3:
            expect(level["p50_ms"] <= level["p90_ms"] <= level["p99_ms"]
                   <= level["p999_ms"],
                   f"{where}: percentiles must be non-decreasing "
                   "(p50 <= p90 <= p99 <= p999)")
            expect(level["corr_count"] <= level["results"],
                   f"{where}: corr_count cannot exceed results")
        quota = level.get("quota", 0) if v2 else 0
        accounted = (level["results"] + level["shed"] + level["errors"]
                     + quota + level["aborted"] + level["dropped"])
        expect(accounted == level["requests"],
               f"{where}: outcome counts sum to {accounted}, "
               f"requests says {level['requests']}")
        expect(level["p50_ms"] <= level["p99_ms"],
               f"{where}: p50_ms must not exceed p99_ms")
        expect(0.0 <= level["shed_rate"] <= 1.0,
               f"{where}: shed_rate must be in [0, 1]")
        if v2:
            expect(0.0 <= level["hit_rate"] <= 1.0,
                   f"{where}: hit_rate must be in [0, 1]")
        counted_responses += (level["results"] + level["shed"]
                              + level["errors"] + quota)
        counted_dropped += level["dropped"]
    totals = doc["totals"]
    expect_keys(totals, ["responses_received", "dropped"],
                "serving_bench: totals")
    expect(totals["responses_received"] == counted_responses,
           f"serving_bench: totals.responses_received "
           f"{totals['responses_received']} != per-level sum "
           f"{counted_responses}")
    expect(totals["dropped"] == counted_dropped,
           f"serving_bench: totals.dropped {totals['dropped']} != "
           f"per-level sum {counted_dropped}")
    return (f"{len(levels)} levels, "
            f"{totals['responses_received']} responses, "
            f"{totals['dropped']} dropped")


REQUEST_ROLES = {"cold", "cache_hit", "leader", "follower", "promoted",
                 "rejected"}


def validate_latency_split(split, where):
    expect_keys(split, ["count", "sum_nanos", "buckets"], where)
    expect(isinstance(split["count"], int) and split["count"] >= 0,
           f"{where}: count must be a non-negative integer")
    expect(isinstance(split["sum_nanos"], int) and split["sum_nanos"] >= 0,
           f"{where}: sum_nanos must be a non-negative integer")
    expect(isinstance(split["buckets"], dict),
           f"{where}: buckets must be an object")
    bucket_total = 0
    for bucket, count in split["buckets"].items():
        expect(bucket.isdigit() and 0 <= int(bucket) < 64,
               f"{where}: bucket key '{bucket}' must be an index in [0, 64)")
        expect(isinstance(count, int) and count > 0,
               f"{where}: buckets['{bucket}'] must be a positive integer")
        bucket_total += count
    expect(bucket_total == split["count"],
           f"{where}: bucket counts sum to {bucket_total}, "
           f"count says {split['count']}")


def validate_introspect(doc):
    expect_keys(doc, ["schema", "now_nanos", "active", "recorder",
                      "watchdog", "metrics"], "introspect")
    expect(doc["schema"] == "corrob.introspect/1",
           f"introspect: unknown schema '{doc.get('schema')}'")
    expect(isinstance(doc["now_nanos"], int) and doc["now_nanos"] >= 0,
           "introspect: now_nanos must be a non-negative integer")

    active = doc["active"]
    expect(isinstance(active, list), "introspect: active must be an array")
    for i, row in enumerate(active):
        where = f"introspect: active[{i}]"
        expect_keys(row, ["seq", "id", "tenant", "dataset", "method",
                          "priority", "age_nanos", "deadline_nanos",
                          "flagged"], where)
        for key in ("seq", "age_nanos", "deadline_nanos"):
            expect(isinstance(row[key], int) and row[key] >= 0,
                   f"{where}: {key} must be a non-negative integer")
        for key in ("id", "tenant", "dataset", "method", "priority"):
            expect(isinstance(row[key], str),
                   f"{where}: {key} must be a string")
        expect(isinstance(row["flagged"], bool),
               f"{where}: flagged must be a boolean")

    recorder = doc["recorder"]
    expect_keys(recorder, ["capacity", "started", "completed", "dropped",
                           "slow", "recent", "tenants", "latency"],
                "introspect: recorder")
    for key in ("capacity", "started", "completed", "dropped", "slow"):
        expect(isinstance(recorder[key], int) and recorder[key] >= 0,
               f"introspect: recorder.{key} must be a non-negative integer")
    recent = recorder["recent"]
    expect(isinstance(recent, list),
           "introspect: recorder.recent must be an array")
    last_seq = None
    for i, row in enumerate(recent):
        where = f"introspect: recorder.recent[{i}]"
        expect_keys(row, ["seq", "id", "tenant", "dataset", "method",
                          "priority", "role", "termination",
                          "admission_wait_nanos", "service_nanos",
                          "total_nanos", "response_bytes"], where)
        for key in ("seq", "admission_wait_nanos", "service_nanos",
                    "total_nanos", "response_bytes"):
            expect(isinstance(row[key], int) and row[key] >= 0,
                   f"{where}: {key} must be a non-negative integer")
        expect(row["role"] in REQUEST_ROLES,
               f"{where}: unknown role '{row['role']}'")
        expect(isinstance(row["termination"], str) and row["termination"],
               f"{where}: termination must be a non-empty string")
        if last_seq is not None:
            expect(row["seq"] > last_seq,
                   f"{where}: recent must be sorted by ascending seq")
        last_seq = row["seq"]
        if "spans" in row:
            expect(isinstance(row["spans"], list) and row["spans"],
                   f"{where}: spans, when present, must be a non-empty array")
            for j, span in enumerate(row["spans"]):
                expect_keys(span, ["name", "at_nanos"],
                            f"{where}: spans[{j}]")
    tenants = recorder["tenants"]
    expect(isinstance(tenants, list),
           "introspect: recorder.tenants must be an array")
    last_requests = None
    for i, row in enumerate(tenants):
        where = f"introspect: recorder.tenants[{i}]"
        expect_keys(row, ["tenant", "requests", "total_nanos", "max_nanos"],
                    where)
        for key in ("requests", "total_nanos", "max_nanos"):
            expect(isinstance(row[key], int) and row[key] >= 0,
                   f"{where}: {key} must be a non-negative integer")
        if last_requests is not None:
            expect(row["requests"] <= last_requests,
                   f"{where}: tenants must be ranked by descending requests")
        last_requests = row["requests"]
    latency = recorder["latency"]
    expect_keys(latency, ["cold", "hit"], "introspect: recorder.latency")
    validate_latency_split(latency["cold"], "introspect: recorder.latency.cold")
    validate_latency_split(latency["hit"], "introspect: recorder.latency.hit")

    watchdog = doc["watchdog"]
    expect_keys(watchdog, ["scans", "flagged", "stuck"],
                "introspect: watchdog")
    for key in ("scans", "flagged", "stuck"):
        expect(isinstance(watchdog[key], int) and watchdog[key] >= 0,
               f"introspect: watchdog.{key} must be a non-negative integer")

    validate_metrics(doc["metrics"])
    return (f"{len(active)} active, {len(recent)} recent, "
            f"{len(tenants)} tenants")


def detect_kind(doc):
    if not isinstance(doc, dict):
        raise Invalid("top level must be a JSON object")
    schema = doc.get("schema")
    if schema == "corrob.telemetry/1":
        return "telemetry", validate_telemetry
    if schema == "corrob.bench/1":
        return "bench", validate_bench
    if schema == "corrob.wal_bench/1":
        return "wal_bench", validate_wal_bench
    if schema == "corrob.stream_telemetry/1":
        return "stream_telemetry", validate_stream_telemetry
    if schema in ("corrob.serving_bench/1", "corrob.serving_bench/2",
                  "corrob.serving_bench/3"):
        return "serving_bench", validate_serving_bench
    if schema == "corrob.introspect/1":
        return "introspect", validate_introspect
    if "traceEvents" in doc:
        return "trace", validate_trace
    if "counters" in doc and "histograms" in doc:
        return "metrics", validate_metrics
    raise Invalid("cannot detect artifact kind (no schema marker, "
                  "traceEvents, or counters/histograms)")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    failures = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            kind, validator = detect_kind(doc)
            summary = validator(doc)
            print(f"{path}: OK ({kind}: {summary})")
        except (OSError, json.JSONDecodeError, Invalid) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
