#!/usr/bin/env python3
"""Self-tests for corrob-lint.

Runs the linter over the checked-in fixture corpus (one known-bad
snippet per rule plus clean snippets) and asserts the exact rule IDs
and lines that fire; also unit-tests the lexer, suppression grammar and
statement analysis helpers directly.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import corrob_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

# The complete expected output of the fixture corpus: (path, line, rule).
EXPECTED = [
    ("src/common/bad_raw_io.cc", 9, "raw-io"),
    ("src/common/bad_raw_io.cc", 10, "raw-io"),
    ("src/common/bad_raw_io.cc", 11, "raw-io"),
    ("src/common/bad_raw_io.cc", 12, "raw-io"),
    ("src/core/bad_discard.cc", 26, "discarded-status"),
    ("src/core/bad_discard.cc", 27, "discarded-status"),
    ("src/core/bad_discard.cc", 28, "discarded-status"),
    ("src/core/bad_discard.cc", 29, "undocumented-discard"),
    ("src/core/bad_guard_macro.h", 2, "guard-style"),
    ("src/core/bad_guard_pragma.h", 2, "guard-style"),
    ("src/core/bad_include_order.cc", 3, "include-order"),
    ("src/core/bad_naked_new.cc", 11, "naked-new"),
    ("src/core/bad_naked_new.cc", 12, "naked-new"),
    ("src/core/bad_naked_new.cc", 17, "naked-new"),
    ("src/core/bad_naked_new.cc", 18, "naked-new"),
    ("src/core/bad_nolint.cc", 7, "bare-nolint"),
    ("src/core/bad_sleep.cc", 12, "raw-sleep"),
    ("src/core/bad_sleep.cc", 14, "raw-sleep"),
    ("src/core/bad_nondet.cc", 11, "nondeterminism"),
    ("src/core/bad_nondet.cc", 12, "nondeterminism"),
    ("src/core/bad_nondet.cc", 13, "nondeterminism"),
    ("src/core/bad_nondet.cc", 18, "nondeterminism"),
    ("src/core/bad_nondet.cc", 19, "nondeterminism"),
    ("src/core/bad_suppression.cc", 14, "bad-suppression"),
    ("src/core/bad_suppression.cc", 14, "undocumented-discard"),
    ("src/core/bad_suppression.cc", 15, "bad-suppression"),
    ("src/core/bad_suppression.cc", 15, "undocumented-discard"),
    ("src/server/bad_blocking_under_lock.cc", 22, "blocking-under-lock"),
    ("src/server/bad_blocking_under_lock.cc", 27, "blocking-under-lock"),
    ("src/server/bad_cv_wait.cc", 18, "cv-wait-predicate"),
    ("src/server/bad_cv_wait.cc", 23, "cv-wait-predicate"),
    ("src/server/bad_manual_lock.cc", 15, "manual-lock"),
    ("src/server/bad_manual_lock.cc", 17, "manual-lock"),
    ("src/server/bad_manual_lock.cc", 21, "manual-lock"),
    ("src/server/bad_unguarded_mutex.h", 19, "unguarded-mutex"),
    ("src/server/bad_unguarded_mutex.h", 24, "unguarded-mutex"),
]


class FixtureCorpusTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.violations = corrob_lint.run_lint(FIXTURES)

    def test_exact_violation_set(self):
        got = sorted((v.path, v.line, v.rule) for v in self.violations)
        self.assertEqual(got, sorted(EXPECTED))

    def test_clean_fixtures_pass(self):
        clean_hits = [v for v in self.violations
                      if os.path.basename(v.path).startswith("clean")]
        self.assertEqual(clean_hits, [])

    def test_every_rule_has_a_firing_fixture(self):
        fired = {v.rule for v in self.violations}
        self.assertEqual(fired, set(corrob_lint.RULES))

    def test_suppressed_lines_do_not_fire(self):
        # bad_nondet.cc line 25 carries a nondet-ok suppression;
        # bad_discard.cc line 35 carries a discard-ok suppression.
        lines = {(v.path, v.line) for v in self.violations}
        self.assertNotIn(("src/core/bad_nondet.cc", 25), lines)
        self.assertNotIn(("src/core/bad_discard.cc", 35), lines)

    def test_concurrency_suppressions_do_not_fire(self):
        # Each concurrency fixture carries one suppressed occurrence:
        # mutex-ok (bad_unguarded_mutex.h:37), lock-ok
        # (bad_manual_lock.cc:23), cvwait-ok (bad_cv_wait.cc:34),
        # blocking-ok (bad_blocking_under_lock.cc:41).
        lines = {(v.path, v.line) for v in self.violations}
        self.assertNotIn(("src/server/bad_unguarded_mutex.h", 37), lines)
        self.assertNotIn(("src/server/bad_manual_lock.cc", 23), lines)
        self.assertNotIn(("src/server/bad_cv_wait.cc", 34), lines)
        self.assertNotIn(("src/server/bad_blocking_under_lock.cc", 41), lines)

    def test_raii_early_release_is_not_flagged(self):
        # unique_lock::unlock() (bad_manual_lock.cc:30) is sanctioned.
        lines = {(v.path, v.line) for v in self.violations}
        self.assertNotIn(("src/server/bad_manual_lock.cc", 30), lines)


def lex(text, path="src/core/x.cc"):
    return corrob_lint.lex_file(path, path, text)


class LexerTest(unittest.TestCase):
    def test_line_comments_are_separated(self):
        sf = lex("int x = 1;  // std::cout << x;\n")
        self.assertNotIn("cout", sf.code_lines[0])
        self.assertIn("std::cout", sf.comment_lines[0])

    def test_block_comments_span_lines(self):
        sf = lex("/* rand()\n   srand(7) */ int y;\n")
        self.assertNotIn("rand", sf.code_lines[0])
        self.assertNotIn("srand", sf.code_lines[1])
        self.assertIn("int y;", sf.code_lines[1])

    def test_string_literals_are_blanked(self):
        sf = lex('const char* s = "new delete rand()";\n')
        self.assertNotIn("rand", sf.code_lines[0])
        self.assertNotIn("new", sf.code_lines[0])

    def test_raw_strings_are_blanked(self):
        sf = lex('auto s = R"(line1 std::cout\nline2 rand())";\nint z;\n')
        self.assertNotIn("cout", sf.code_lines[0])
        self.assertNotIn("rand", sf.code_lines[1])
        self.assertIn("int z;", sf.code_lines[2])

    def test_escaped_quotes_do_not_end_strings(self):
        sf = lex('const char* s = "a\\"b rand()";\nint w;\n')
        self.assertNotIn("rand", sf.code_lines[0])
        self.assertIn("int w;", sf.code_lines[1])


class SuppressionTest(unittest.TestCase):
    def parse(self, text):
        sf = lex(text)
        errors = []
        sup = corrob_lint.Suppressions(sf, errors)
        return sup, errors

    def test_same_line_suppression(self):
        sup, errors = self.parse("(void)F();  // lint: discard-ok: shutdown path\n")
        self.assertEqual(errors, [])
        self.assertTrue(sup.active("undocumented-discard", 1))

    def test_previous_line_suppression(self):
        sup, errors = self.parse(
            "// lint: nondet-ok: benchmarking only\nint x = foo();\n")
        self.assertEqual(errors, [])
        self.assertTrue(sup.active("nondeterminism", 2))

    def test_missing_reason_is_reported(self):
        _, errors = self.parse("(void)F();  // lint: discard-ok\n")
        self.assertEqual([e.rule for e in errors], ["bad-suppression"])

    def test_unknown_tag_is_reported(self):
        _, errors = self.parse("(void)F();  // lint: sloppy-ok: because\n")
        self.assertEqual([e.rule for e in errors], ["bad-suppression"])

    def test_wrong_tag_does_not_suppress(self):
        sup, _ = self.parse("(void)F();  // lint: io-ok: not the right tag\n")
        self.assertFalse(sup.active("undocumented-discard", 1))


class StatementAnalysisTest(unittest.TestCase):
    def test_control_prefix_stripping(self):
        strip = corrob_lint.strip_control_prefixes
        self.assertEqual(strip("if (a(b) && c) Save(x)"), "Save(x)")
        self.assertEqual(strip("for (int i = 0; i < n; ++i) Save(i)"),
                         "Save(i)")
        self.assertEqual(strip("else if (z) Save(q)"), "Save(q)")
        self.assertEqual(strip("Save(x)"), "Save(x)")

    def test_toplevel_assignment_detection(self):
        has = corrob_lint.has_toplevel_assignment
        self.assertTrue(has("Status s = Save(x)"))
        self.assertTrue(has("auto r = Load(y)"))
        self.assertFalse(has("Save(x == y)"))
        self.assertFalse(has("Check(a <= b, c >= d)"))

    def test_guard_macro_derivation(self):
        self.assertEqual(corrob_lint.expected_guard("src/core/vote_matrix.h"),
                         "CORROB_CORE_VOTE_MATRIX_H_")
        self.assertEqual(
            corrob_lint.expected_guard("tests/testing/property.h"),
            "CORROB_TESTS_TESTING_PROPERTY_H_")


class DeclarationScanTest(unittest.TestCase):
    def test_status_and_result_functions_are_collected(self):
        sf = lex("Status Save(const std::string& p);\n"
                 "Result<int> Load(const std::string& p);\n"
                 "Result<std::vector<double>> Weights();\n"
                 "int NotCollected();\n")
        names = corrob_lint.collect_status_returning([sf])
        self.assertIn("Save", names)
        self.assertIn("Load", names)
        self.assertIn("Weights", names)
        self.assertNotIn("NotCollected", names)

    def test_cv_names_are_collected_tree_wide(self):
        header = lex("std::condition_variable slot_freed_;\n",
                     path="src/server/x.h")
        other = lex("std::condition_variable_any any_cv_;\n"
                    "std::mutex not_a_cv_;\n")
        names = corrob_lint.collect_cv_names([header, other])
        self.assertIn("slot_freed_", names)
        self.assertIn("any_cv_", names)
        self.assertNotIn("not_a_cv_", names)


class ConcurrencyHelperTest(unittest.TestCase):
    def test_top_level_comma_count(self):
        count = corrob_lint._top_level_comma_count
        self.assertEqual(count("(lock)", 0), (0, True))
        self.assertEqual(count("(lock, ms)", 0), (1, True))
        self.assertEqual(count("(lock, ms, [&] { return a, b; })", 0),
                         (2, True))
        self.assertEqual(count("(f(a, b))", 0), (0, True))
        self.assertEqual(count("(unclosed", 0), (0, False))

    def run_concurrency(self, text, path="src/server/x.cc"):
        sf = lex(text, path=path)
        sup = corrob_lint.Suppressions(sf, [])
        cv_names = corrob_lint.collect_cv_names([sf])
        out = []
        corrob_lint.check_concurrency(sf, sup, cv_names, out)
        return out

    def test_member_cv_wait_across_files_uses_global_names(self):
        # The cv is declared in a header; the bare wait in the .cc must
        # still fire because cv names are collected tree-wide.
        header = lex("std::condition_variable slot_freed_;\n",
                     path="src/server/x.h")
        cc = lex("void F() {\n"
                 "  std::unique_lock<std::mutex> lock(mutex_);\n"
                 "  slot_freed_.wait(lock);\n"
                 "}\n", path="src/server/x.cc")
        cv_names = corrob_lint.collect_cv_names([header, cc])
        out = []
        corrob_lint.check_concurrency(
            cc, corrob_lint.Suppressions(cc, []), cv_names, out)
        self.assertEqual([(v.line, v.rule) for v in out],
                         [(3, "cv-wait-predicate")])

    def test_lock_scope_ends_at_closing_brace(self):
        out = self.run_concurrency(
            "void F(const Token& t) {\n"
            "  {\n"
            "    std::lock_guard<std::mutex> lock(annotated_);\n"
            "  }\n"
            "  t.WaitForMs(5);\n"
            "}\n"
            "int x CORROB_GUARDED_BY(annotated_);\n"
            "std::mutex annotated_;\n")
        self.assertEqual(out, [])

    def test_non_src_paths_are_skipped(self):
        out = self.run_concurrency(
            "std::mutex naked_;\n", path="tests/server/x.cc")
        self.assertEqual(out, [])


class SummaryTest(unittest.TestCase):
    def test_render_summary_counts_by_rule(self):
        V = corrob_lint.Violation
        text = corrob_lint.render_summary([
            V("a.cc", 1, "manual-lock", "m"),
            V("a.cc", 2, "manual-lock", "m"),
            V("b.h", 3, "unguarded-mutex", "m"),
        ])
        lines = text.splitlines()
        self.assertIn("corrob_lint summary (violations by rule):", lines)
        # Highest count first, then alphabetical.
        self.assertRegex(lines[-2], r"^  manual-lock\s+2$")
        self.assertRegex(lines[-1], r"^  unguarded-mutex\s+1$")

    def test_summary_flag_prints_table_on_failure(self):
        import contextlib
        import io
        err = io.StringIO()
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(err):
            status = corrob_lint.main(
                ["--root", FIXTURES, "--summary"])
        self.assertEqual(status, 1)
        self.assertIn("corrob_lint summary (violations by rule):",
                      err.getvalue())


if __name__ == "__main__":
    unittest.main()
