#!/usr/bin/env python3
"""Self-tests for corrob-lint.

Runs the linter over the checked-in fixture corpus (one known-bad
snippet per rule plus clean snippets) and asserts the exact rule IDs
and lines that fire; also unit-tests the lexer, suppression grammar and
statement analysis helpers directly.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import corrob_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

# The complete expected output of the fixture corpus: (path, line, rule).
EXPECTED = [
    ("src/common/bad_raw_io.cc", 9, "raw-io"),
    ("src/common/bad_raw_io.cc", 10, "raw-io"),
    ("src/common/bad_raw_io.cc", 11, "raw-io"),
    ("src/common/bad_raw_io.cc", 12, "raw-io"),
    ("src/core/bad_discard.cc", 26, "discarded-status"),
    ("src/core/bad_discard.cc", 27, "discarded-status"),
    ("src/core/bad_discard.cc", 28, "discarded-status"),
    ("src/core/bad_discard.cc", 29, "undocumented-discard"),
    ("src/core/bad_guard_macro.h", 2, "guard-style"),
    ("src/core/bad_guard_pragma.h", 2, "guard-style"),
    ("src/core/bad_include_order.cc", 3, "include-order"),
    ("src/core/bad_naked_new.cc", 11, "naked-new"),
    ("src/core/bad_naked_new.cc", 12, "naked-new"),
    ("src/core/bad_naked_new.cc", 17, "naked-new"),
    ("src/core/bad_naked_new.cc", 18, "naked-new"),
    ("src/core/bad_nolint.cc", 7, "bare-nolint"),
    ("src/core/bad_sleep.cc", 12, "raw-sleep"),
    ("src/core/bad_sleep.cc", 14, "raw-sleep"),
    ("src/core/bad_nondet.cc", 11, "nondeterminism"),
    ("src/core/bad_nondet.cc", 12, "nondeterminism"),
    ("src/core/bad_nondet.cc", 13, "nondeterminism"),
    ("src/core/bad_nondet.cc", 18, "nondeterminism"),
    ("src/core/bad_nondet.cc", 19, "nondeterminism"),
    ("src/core/bad_suppression.cc", 14, "bad-suppression"),
    ("src/core/bad_suppression.cc", 14, "undocumented-discard"),
    ("src/core/bad_suppression.cc", 15, "bad-suppression"),
    ("src/core/bad_suppression.cc", 15, "undocumented-discard"),
]


class FixtureCorpusTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.violations = corrob_lint.run_lint(FIXTURES)

    def test_exact_violation_set(self):
        got = sorted((v.path, v.line, v.rule) for v in self.violations)
        self.assertEqual(got, sorted(EXPECTED))

    def test_clean_fixtures_pass(self):
        clean_hits = [v for v in self.violations
                      if os.path.basename(v.path).startswith("clean")]
        self.assertEqual(clean_hits, [])

    def test_every_rule_has_a_firing_fixture(self):
        fired = {v.rule for v in self.violations}
        self.assertEqual(fired, set(corrob_lint.RULES))

    def test_suppressed_lines_do_not_fire(self):
        # bad_nondet.cc line 25 carries a nondet-ok suppression;
        # bad_discard.cc line 35 carries a discard-ok suppression.
        lines = {(v.path, v.line) for v in self.violations}
        self.assertNotIn(("src/core/bad_nondet.cc", 25), lines)
        self.assertNotIn(("src/core/bad_discard.cc", 35), lines)


def lex(text, path="src/core/x.cc"):
    return corrob_lint.lex_file(path, path, text)


class LexerTest(unittest.TestCase):
    def test_line_comments_are_separated(self):
        sf = lex("int x = 1;  // std::cout << x;\n")
        self.assertNotIn("cout", sf.code_lines[0])
        self.assertIn("std::cout", sf.comment_lines[0])

    def test_block_comments_span_lines(self):
        sf = lex("/* rand()\n   srand(7) */ int y;\n")
        self.assertNotIn("rand", sf.code_lines[0])
        self.assertNotIn("srand", sf.code_lines[1])
        self.assertIn("int y;", sf.code_lines[1])

    def test_string_literals_are_blanked(self):
        sf = lex('const char* s = "new delete rand()";\n')
        self.assertNotIn("rand", sf.code_lines[0])
        self.assertNotIn("new", sf.code_lines[0])

    def test_raw_strings_are_blanked(self):
        sf = lex('auto s = R"(line1 std::cout\nline2 rand())";\nint z;\n')
        self.assertNotIn("cout", sf.code_lines[0])
        self.assertNotIn("rand", sf.code_lines[1])
        self.assertIn("int z;", sf.code_lines[2])

    def test_escaped_quotes_do_not_end_strings(self):
        sf = lex('const char* s = "a\\"b rand()";\nint w;\n')
        self.assertNotIn("rand", sf.code_lines[0])
        self.assertIn("int w;", sf.code_lines[1])


class SuppressionTest(unittest.TestCase):
    def parse(self, text):
        sf = lex(text)
        errors = []
        sup = corrob_lint.Suppressions(sf, errors)
        return sup, errors

    def test_same_line_suppression(self):
        sup, errors = self.parse("(void)F();  // lint: discard-ok: shutdown path\n")
        self.assertEqual(errors, [])
        self.assertTrue(sup.active("undocumented-discard", 1))

    def test_previous_line_suppression(self):
        sup, errors = self.parse(
            "// lint: nondet-ok: benchmarking only\nint x = foo();\n")
        self.assertEqual(errors, [])
        self.assertTrue(sup.active("nondeterminism", 2))

    def test_missing_reason_is_reported(self):
        _, errors = self.parse("(void)F();  // lint: discard-ok\n")
        self.assertEqual([e.rule for e in errors], ["bad-suppression"])

    def test_unknown_tag_is_reported(self):
        _, errors = self.parse("(void)F();  // lint: sloppy-ok: because\n")
        self.assertEqual([e.rule for e in errors], ["bad-suppression"])

    def test_wrong_tag_does_not_suppress(self):
        sup, _ = self.parse("(void)F();  // lint: io-ok: not the right tag\n")
        self.assertFalse(sup.active("undocumented-discard", 1))


class StatementAnalysisTest(unittest.TestCase):
    def test_control_prefix_stripping(self):
        strip = corrob_lint.strip_control_prefixes
        self.assertEqual(strip("if (a(b) && c) Save(x)"), "Save(x)")
        self.assertEqual(strip("for (int i = 0; i < n; ++i) Save(i)"),
                         "Save(i)")
        self.assertEqual(strip("else if (z) Save(q)"), "Save(q)")
        self.assertEqual(strip("Save(x)"), "Save(x)")

    def test_toplevel_assignment_detection(self):
        has = corrob_lint.has_toplevel_assignment
        self.assertTrue(has("Status s = Save(x)"))
        self.assertTrue(has("auto r = Load(y)"))
        self.assertFalse(has("Save(x == y)"))
        self.assertFalse(has("Check(a <= b, c >= d)"))

    def test_guard_macro_derivation(self):
        self.assertEqual(corrob_lint.expected_guard("src/core/vote_matrix.h"),
                         "CORROB_CORE_VOTE_MATRIX_H_")
        self.assertEqual(
            corrob_lint.expected_guard("tests/testing/property.h"),
            "CORROB_TESTS_TESTING_PROPERTY_H_")


class DeclarationScanTest(unittest.TestCase):
    def test_status_and_result_functions_are_collected(self):
        sf = lex("Status Save(const std::string& p);\n"
                 "Result<int> Load(const std::string& p);\n"
                 "Result<std::vector<double>> Weights();\n"
                 "int NotCollected();\n")
        names = corrob_lint.collect_status_returning([sf])
        self.assertIn("Save", names)
        self.assertIn("Load", names)
        self.assertIn("Weights", names)
        self.assertNotIn("NotCollected", names)


if __name__ == "__main__":
    unittest.main()
