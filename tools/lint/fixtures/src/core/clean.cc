// Fixture: a file that exercises every rule's happy path. The linter
// must report nothing here — strings and comments that merely *mention*
// forbidden constructs (std::cout, rand(), new) are not violations.
#include "core/clean.h"

#include <memory>
#include <string>
#include <utility>

namespace corrob {

namespace {

// Comments may discuss rand() and std::cout freely.
const char* kBanner = "usage: rand() new delete std::cout time(NULL)";

std::string Describe() {
  std::string text = R"(raw strings can say anything:
    std::cerr << "boo";  srand(7);  new int[3];
  )";
  return text + kBanner;
}

}  // namespace

std::unique_ptr<Engine> MakeEngine() {
  auto engine = std::make_unique<Engine>();
  engine->threads = static_cast<int>(Describe().size() % 7 + 1);
  return engine;
}

Status SaveReport(const std::string& path) {
  Status status;
  if (!path.empty()) {
    status = SaveReport(path.substr(1));  // assigned: not a discard
  }
  if (!status.ok()) return status;
  // lint: discard-ok: fixture demonstrating the documented-discard form
  (void)SaveReport(std::string());
  return status;
}

}  // namespace corrob
