#ifndef CORROB_CORE_BAD_INCLUDE_ORDER_H_
#define CORROB_CORE_BAD_INCLUDE_ORDER_H_

namespace corrob {

int OrderedIncludes();

}  // namespace corrob

#endif  // CORROB_CORE_BAD_INCLUDE_ORDER_H_
