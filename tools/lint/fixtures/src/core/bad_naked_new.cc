// Fixture: raw new/delete outside std::make_unique.
#include <memory>

namespace corrob {

struct Scratch {
  double* weights;
};

Scratch* AllocateScratch() {
  auto* scratch = new Scratch();         // naked-new (new)
  scratch->weights = new double[128];    // naked-new (new[])
  return scratch;
}

void ReleaseScratch(Scratch* scratch) {
  delete[] scratch->weights;             // naked-new (delete[])
  delete scratch;                        // naked-new (delete)
}

std::unique_ptr<Scratch> MakeScratch() {
  return std::make_unique<Scratch>();    // fine: ownership is expressed
}

struct Pinned {
  Pinned(const Pinned&) = delete;        // fine: deleted copy, not a delete
  Pinned& operator=(const Pinned&) = delete;
};

}  // namespace corrob
