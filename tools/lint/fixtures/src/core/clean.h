#ifndef CORROB_CORE_CLEAN_H_
#define CORROB_CORE_CLEAN_H_

#include <memory>
#include <string>

namespace corrob {

class Status {
 public:
  bool ok() const { return true; }
};

/// A saver whose Status results are all handled below.
Status SaveReport(const std::string& path);

struct Engine {
  int threads = 1;
};

std::unique_ptr<Engine> MakeEngine();

}  // namespace corrob

#endif  // CORROB_CORE_CLEAN_H_
