// Fixture: malformed corrob-lint suppression comments are themselves
// violations — a suppression without a rationale is not a review.

namespace corrob {

class Status {
 public:
  bool ok() const { return true; }
};

Status Cleanup();

void SuppressesBadly() {
  (void)Cleanup();  // lint: discard-ok
  (void)Cleanup();  // lint: whatever-ok: no such rule tag
}

}  // namespace corrob
