// Fixture: the self-header must be the first include so every header
// proves it is self-contained.
#include <string>  // include-order: self-header is not first

#include "core/bad_include_order.h"

namespace corrob {

int OrderedIncludes() { return 1; }

}  // namespace corrob
