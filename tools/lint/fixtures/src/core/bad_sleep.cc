// Fixture for the raw-sleep rule: uninterruptible blocking waits in
// library code. Only common/budget and common/retry may call
// std::this_thread::sleep_*; everything else must wait through
// CancellationToken::WaitForMs so Ctrl-C and deadlines can land.

#include <chrono>
#include <thread>

namespace corrob {

void NapBadly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto wake = std::chrono::steady_clock::time_point();
  std::this_thread::sleep_until(wake);
}

void NapSanctioned() {
  // lint: sleep-ok: fixture exercising the suppression grammar.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace corrob
