// Fixture: the guard macro must be derived from the header's path.
#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

namespace corrob {

int WronglyGuarded();

}  // namespace corrob

#endif  // SOME_OTHER_GUARD_H
