// Fixture: #pragma once instead of the project's include-guard style.
#pragma once

namespace corrob {

int PragmaGuarded();

}  // namespace corrob
