// Fixture: every unsanctioned randomness/clock source corrob-lint must
// catch inside the deterministic directories (src/core here).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace corrob {

int UnseededRandomness() {
  std::srand(42);                       // nondeterminism (srand)
  int draw = std::rand();               // nondeterminism (rand)
  std::random_device entropy;           // nondeterminism (random_device)
  return draw + static_cast<int>(entropy());
}

long WallClock() {
  long stamp = time(nullptr);           // nondeterminism (time)
  auto tick = std::chrono::steady_clock::now();  // nondeterminism (*_clock::now)
  return stamp + tick.time_since_epoch().count();
}

long SanctionedClock() {
  // lint: nondet-ok: fixture demonstrating a documented suppression
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace corrob
