// Fixture: clang-tidy suppression comments must name their checks and
// carry a trailing reason.

namespace corrob {

int Mystery(int x) {
  return x + 1;  // NOLINT
}

int Justified(int x) {
  return x + 2;  // NOLINT(readability-magic-numbers): paper constant, Eq. 7
}

}  // namespace corrob
