// Fixture: ignored Status/Result return values, documented and not.
#include <string>

namespace corrob {

class Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class Result {
 public:
  bool ok() const { return true; }
};

Status SaveCheckpoint(const std::string& path);
Result<int> LoadCheckpoint(const std::string& path);

class Saver {
 public:
  Status Flush();
};

void IgnoresEverything(Saver& saver) {
  SaveCheckpoint("/tmp/state.snap");          // discarded-status (free fn)
  LoadCheckpoint("/tmp/state.snap");          // discarded-status (Result)
  saver.Flush();                              // discarded-status (method)
  (void)SaveCheckpoint("/tmp/state.snap");    // undocumented-discard
}

void DocumentedDiscard(Saver& saver) {
  // lint: discard-ok: best-effort flush on shutdown, failure already logged
  (void)saver.Flush();
}

Status PropagatesProperly() {
  Status status = SaveCheckpoint("/tmp/state.snap");  // fine: assigned
  if (!status.ok()) return status;
  return SaveCheckpoint("/tmp/state.snap");           // fine: returned
}

}  // namespace corrob
