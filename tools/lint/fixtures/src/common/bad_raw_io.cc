// Fixture: stdout/stderr I/O in library code. Only src/cli and
// src/common/logging may talk to the process streams directly.
#include <cstdio>
#include <iostream>

namespace corrob {

void ChattyLibraryFunction(int facts) {
  std::cout << "corroborated " << facts << " facts\n";  // raw-io (cout)
  std::cerr << "something felt off\n";                  // raw-io (cerr)
  printf("%d facts\n", facts);                          // raw-io (printf)
  fprintf(stderr, "%d facts\n", facts);                 // raw-io (fprintf)
}

void FormattingIsFine(char* buffer, int facts) {
  // snprintf writes to a caller buffer, not a stream: not a violation.
  std::snprintf(buffer, 16, "%d", facts);
}

}  // namespace corrob
