// Fixture for the blocking-under-lock rule: frame/socket I/O, the
// interruptible sleep and the retry loop can block for macroscopic
// time; doing so inside a RAII lock scope stalls every thread that
// needs the mutex.

#include <mutex>
#include <string>

#include "common/thread_annotations.h"

namespace corrob {

struct FakeToken {
  bool WaitForMs(int ms) const;
};

class BlockingHolder {
 public:
  void BadWriteUnderLock(int fd, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++writes_;
    WriteFrame(fd, payload);
  }

  void BadSleepUnderLock(const FakeToken& token) {
    std::lock_guard<std::mutex> lock(mutex_);
    token.WaitForMs(50);
  }

  void GoodWriteOutsideLock(int fd, const std::string& payload) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++writes_;
    }
    WriteFrame(fd, payload);
  }

  void SanctionedProbeUnderLock(const FakeToken& token) {
    std::lock_guard<std::mutex> lock(mutex_);
    // lint: blocking-ok: fixture exercising the suppression grammar.
    token.WaitForMs(0);
  }

 private:
  void WriteFrame(int fd, const std::string& payload);

  std::mutex mutex_;
  int writes_ CORROB_GUARDED_BY(mutex_) = 0;
};

}  // namespace corrob
