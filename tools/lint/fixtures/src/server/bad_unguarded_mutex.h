// Fixture for the unguarded-mutex rule: every std::mutex member must
// be named by at least one CORROB_GUARDED_BY / CORROB_REQUIRES (etc.)
// annotation, so the lock states what it protects.
#ifndef CORROB_SERVER_BAD_UNGUARDED_MUTEX_H_
#define CORROB_SERVER_BAD_UNGUARDED_MUTEX_H_

#include <mutex>
#include <vector>

#include "common/thread_annotations.h"

namespace corrob {

class NoGuardUser {
 public:
  void Push(int v);

 private:
  std::mutex queue_mutex_;
  std::vector<int> values_;  // should be CORROB_GUARDED_BY(queue_mutex_)
};

struct AlsoUnguarded {
  mutable std::mutex mu;
  int count = 0;
};

class ProperlyGuarded {
 private:
  std::mutex mutex_;
  std::vector<int> values_ CORROB_GUARDED_BY(mutex_);
};

class SuppressedGuard {
 private:
  // lint: mutex-ok: fixture exercising the suppression grammar.
  std::mutex stats_mutex_;
};

}  // namespace corrob

#endif  // CORROB_SERVER_BAD_UNGUARDED_MUTEX_H_
