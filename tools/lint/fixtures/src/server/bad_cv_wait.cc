// Fixture for the cv-wait-predicate rule: a condition_variable wait
// without a predicate overload silently tolerates spurious wakeups and
// lost notifications. Bounded poll slices that re-check a stop signal
// are the one sanctioned exception, suppressed with a rationale.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace corrob {

class Waiter {
 public:
  void BareWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait(lock);
  }

  void BareTimedWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }

  void PredicateWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_cv_.wait(lock, [this] { return ready_; });
  }

  void SanctionedPollSlice() {
    std::unique_lock<std::mutex> lock(mutex_);
    // lint: cvwait-ok: fixture exercising the suppression grammar.
    ready_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_cv_;
  bool ready_ CORROB_GUARDED_BY(mutex_) = false;
};

}  // namespace corrob
