// Fixture for the manual-lock rule: raw .lock()/.unlock() on a mutex
// is exception- and early-return-unsafe; critical sections are spelled
// with std::lock_guard / std::unique_lock / std::scoped_lock. Early
// release through a unique_lock variable is the sanctioned exception.

#include <mutex>

#include "common/thread_annotations.h"

namespace corrob {

class ManualLocker {
 public:
  void Bad() {
    mutex_.lock();
    ++count_;
    mutex_.unlock();
  }

  void StillBad() {
    if (mutex_.try_lock()) {
      ++count_;
      mutex_.unlock();  // lint: lock-ok: fixture exercising the suppression grammar.
    }
  }

  void Good() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++count_;
    lock.unlock();  // early release of an RAII wrapper: sanctioned
  }

 private:
  std::mutex mutex_;
  int count_ CORROB_GUARDED_BY(mutex_) = 0;
};

}  // namespace corrob
