#!/usr/bin/env python3
"""corrob-lint: project-specific static analysis for the corrob tree.

Walks src/ and tests/ enforcing invariants the compiler cannot (or that
we want flagged before a compiler ever runs):

  discarded-status      A statement calls a function returning Status or
                        Result<T> and ignores the value. Either propagate
                        the status or cast to (void) with a documented
                        suppression.
  undocumented-discard  A `(void)call(...)` cast without a
                        `// lint: discard-ok: <reason>` comment. Every
                        surviving discard must be a reviewed decision.
  nondeterminism        rand()/srand()/std::random_device/time()/clock()/
                        std::chrono::*_clock::now() inside src/core,
                        src/eval, src/synth, src/ml or src/obs.
                        Deterministic code must go through
                        src/common/random.h (seeded RNG) or
                        src/common/timer.h (StopwatchNs over an injected
                        obs::Clock); obs::MonotonicClock::NowNanos is
                        the one sanctioned wall-clock read.
  raw-io                std::cout/std::cerr/printf/fprintf/puts in library
                        code. src/cli and src/common/logging are the
                        sanctioned output paths; everything else returns
                        strings or takes an ostream.
  naked-new             `new` or `delete` outside std::make_unique/
                        make_shared in src/. Ownership is expressed with
                        smart pointers.
  include-order         A .cc file under src/ must include its own header
                        first, so every header is verified self-contained.
  guard-style           Headers use `#ifndef CORROB_<PATH>_H_` include
                        guards (the project style); `#pragma once` is
                        rejected for consistency.
  bare-nolint           A clang-tidy NOLINT comment without a check list
                        and trailing rationale.
  bad-suppression       A `// lint:` comment that does not parse, names an
                        unknown rule tag, or omits the rationale.
  unguarded-mutex       A std::mutex member declared in src/ with no
                        CORROB_GUARDED_BY / CORROB_REQUIRES (etc.) user
                        naming it anywhere in the file. Every lock must
                        state what it protects (common/thread_annotations.h).
  manual-lock           Raw `.lock()` / `.unlock()` on a mutex instead of
                        RAII lock_guard/unique_lock/scoped_lock. Early
                        release through a unique_lock variable is fine.
  cv-wait-predicate     condition_variable wait/wait_for/wait_until called
                        without a predicate overload — a bare wait is
                        lost-wakeup- and spurious-wakeup-prone. Bounded
                        poll slices that re-check a StopSignal suppress
                        with a rationale.
  blocking-under-lock   A known blocking call (frame/socket I/O, WaitForMs,
                        Retry) made lexically inside a RAII lock scope.
                        Blocking while holding a mutex stalls every other
                        thread that needs it.

Suppression grammar (same line as the violation, or alone on the line
directly above it):

    // lint: <tag>-ok: <reason>

where <tag> is one of discard, nondet, io, new, include, guard, mutex,
lock, cvwait, blocking and <reason> is non-empty free text. Example:

    (void)Failpoints::Disarm(name);  // lint: discard-ok: best-effort cleanup

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule registry
# --------------------------------------------------------------------------

RULES = {
    "discarded-status": "Status/Result return value ignored",
    "undocumented-discard": "(void) discard without `// lint: discard-ok: <reason>`",
    "nondeterminism": "unsanctioned randomness or wall-clock in deterministic code",
    "raw-sleep": "uninterruptible sleep in library code (use budget/retry waits)",
    "raw-io": "stdout/stderr I/O in library code (use common/logging)",
    "naked-new": "raw new/delete (use std::make_unique / containers)",
    "include-order": "self-header is not the first include",
    "guard-style": "missing/incorrect CORROB_*_H_ include guard or #pragma once",
    "bare-nolint": "NOLINT without a check list and trailing rationale",
    "bad-suppression": "malformed `// lint:` suppression comment",
    "unguarded-mutex": "mutex member with no CORROB_GUARDED_BY/REQUIRES user",
    "manual-lock": "manual .lock()/.unlock() instead of an RAII lock",
    "cv-wait-predicate": "condition_variable wait without a predicate",
    "blocking-under-lock": "blocking call made while a RAII lock is held",
}

# Suppression tag accepted by each suppressible rule.
RULE_TAG = {
    "discarded-status": "discard",
    "undocumented-discard": "discard",
    "nondeterminism": "nondet",
    "raw-sleep": "sleep",
    "raw-io": "io",
    "naked-new": "new",
    "include-order": "include",
    "guard-style": "guard",
    "unguarded-mutex": "mutex",
    "manual-lock": "lock",
    "cv-wait-predicate": "cvwait",
    "blocking-under-lock": "blocking",
}
KNOWN_TAGS = set(RULE_TAG.values())

SUPPRESS_RE = re.compile(r"lint:\s*([a-z-]+)-ok\s*(?::\s*(.*\S))?\s*$")
SUPPRESS_HINT_RE = re.compile(r"\blint\s*:")

SOURCE_EXTENSIONS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    """A lexed translation unit: code with comments/literals blanked out,
    plus the comment text per line for suppression lookups."""

    path: str  # root-relative, '/'-separated
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)
    comment_lines: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Lexer: split C++ into code and comments, blanking string/char literals
# --------------------------------------------------------------------------


def lex_file(path: str, rel: str, text: str) -> SourceFile:
    raw_lines = text.split("\n")
    n = len(raw_lines)
    code = [[] for _ in range(n)]
    comments = [[] for _ in range(n)]

    i = 0
    line = 0
    length = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_terminator = ""

    def emit(bucket, ch):
        bucket[line].append(ch)

    while i < length:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < length else ""
        if ch == "\n":
            if state == "line_comment":
                state = "code"
            line += 1
            i += 1
            continue

        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                # Raw string literal?  R"delim( ... )delim"
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i - 1 : i + 20]) if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_terminator = ")" + m.group(1) + '"'
                    state = "raw_string"
                    emit(code, '"')
                    i += 1 + len(m.group(1)) + 1  # skip delim and '('
                    continue
                state = "string"
                emit(code, '"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                emit(code, "'")
                i += 1
                continue
            emit(code, ch)
            i += 1
            continue

        if state == "line_comment":
            emit(comments, ch)
            i += 1
            continue

        if state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            emit(comments, ch)
            i += 1
            continue

        if state == "string":
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                emit(code, '"')
                state = "code"
            i += 1
            continue

        if state == "char":
            if ch == "\\":
                i += 2
                continue
            if ch == "'":
                emit(code, "'")
                state = "code"
            i += 1
            continue

        if state == "raw_string":
            if text.startswith(raw_terminator, i):
                emit(code, '"')
                state = "code"
                i += len(raw_terminator)
                continue
            i += 1
            continue

        raise AssertionError(f"unknown lexer state {state}")

    return SourceFile(
        path=rel,
        raw_lines=raw_lines,
        code_lines=["".join(parts) for parts in code],
        comment_lines=["".join(parts) for parts in comments],
    )


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------


class Suppressions:
    """Parses `// lint: <tag>-ok: reason` comments for one file."""

    def __init__(self, sf: SourceFile, violations: list[Violation]):
        # line number (1-based) -> set of tags suppressing that line
        self.by_line: dict[int, set] = {}
        for idx, comment in enumerate(sf.comment_lines):
            if not SUPPRESS_HINT_RE.search(comment):
                continue
            lineno = idx + 1
            m = SUPPRESS_RE.search(comment)
            if not m:
                violations.append(
                    Violation(sf.path, lineno, "bad-suppression",
                              "cannot parse; expected `// lint: <tag>-ok: <reason>`"))
                continue
            tag, reason = m.group(1), m.group(2)
            if tag not in KNOWN_TAGS:
                violations.append(
                    Violation(sf.path, lineno, "bad-suppression",
                              f"unknown suppression tag '{tag}-ok' "
                              f"(known: {', '.join(sorted(KNOWN_TAGS))})"))
                continue
            if not reason:
                violations.append(
                    Violation(sf.path, lineno, "bad-suppression",
                              f"suppression '{tag}-ok' carries no rationale"))
                continue
            # A comment-only line suppresses the next code line; any
            # suppression also covers its own line.
            self.by_line.setdefault(lineno, set()).add(tag)
            if not sf.code_lines[idx].strip():
                self.by_line.setdefault(lineno + 1, set()).add(tag)

    def active(self, rule: str, lineno: int) -> bool:
        tag = RULE_TAG.get(rule)
        return tag is not None and tag in self.by_line.get(lineno, set())


# --------------------------------------------------------------------------
# Pass 1: collect names of functions returning Status / Result<T>
# --------------------------------------------------------------------------

DECL_RE = re.compile(
    r"\b(?:Status|Result\s*<[^;{}=]{1,120}?>)\s*&?\s+([A-Za-z_]\w*)\s*\(")

# Declarations that return Status/Result but whose *name* collides with
# too-generic identifiers: CorrobdServer::Start() returns Status, but
# TraceRecorder::Start() returns void, so flagging every `Start(` call
# would misfire; likewise WalWriter::Append() returns Status while
# obs::JsonValue::Append() returns void. [[nodiscard]] on the
# Status-returning overloads keeps the compiler enforcing what the
# lint skips here.
DECL_NAME_BLOCKLIST = {"Start", "Append"}


def collect_status_returning(files) -> set:
    names = set()
    for sf in files:
        for code in sf.code_lines:
            for m in DECL_RE.finditer(code):
                name = m.group(1)
                if name in DECL_NAME_BLOCKLIST:
                    continue
                # Skip control-flow false positives such as
                # `Status foo = ...` (no '(' match anyway) and casts.
                names.add(name)
    # Result/Status member helpers that return a *reference to self* or a
    # plain accessor are not collected by the regex (they return
    # `const Status&` with '&' — allowed by the regex on purpose:
    # discarding `r.status()` is still pointless).
    names.update({"status", "ValueOrDie"})
    return names


# --------------------------------------------------------------------------
# Statement iteration
# --------------------------------------------------------------------------


def iter_statements(sf: SourceFile):
    """Yields (start_line, text) for each `;`-terminated statement at
    paren depth zero.  Braces act as statement boundaries, so compound
    bodies decompose into the statements inside them."""
    buf = []
    start_line = None
    depth = 0
    for idx, code in enumerate(sf.code_lines):
        lineno = idx + 1
        stripped = code.strip()
        if stripped.startswith("#"):  # preprocessor line, not a statement
            continue
        for ch in code:
            if ch == "(" or ch == "[":
                depth += 1
            elif ch == ")" or ch == "]":
                depth = max(0, depth - 1)
            if depth == 0 and ch in ";{}":
                text = "".join(buf).strip()
                if text and start_line is not None and ch == ";":
                    yield start_line, text
                buf = []
                start_line = None
                continue
            if ch.strip():
                if start_line is None:
                    start_line = lineno
                buf.append(ch)
            elif buf:
                buf.append(" ")


CONTROL_PREFIX_RE = re.compile(r"^(?:else\b|do\b|if\s*\(|for\s*\(|while\s*\(|switch\s*\()")
SKIP_STMT_RE = re.compile(
    r"^(?:return\b|co_return\b|throw\b|case\b|default\s*:|goto\b|break\b|"
    r"continue\b|using\b|typedef\b|template\b|namespace\b|friend\b|"
    r"static_assert\b|extern\b|public\s*:|private\s*:|protected\s*:)")
VOID_CAST_RE = re.compile(r"^\(\s*void\s*\)\s*(.*)$")
CALL_HEAD_RE = re.compile(
    r"^((?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*)([A-Za-z_]\w*)\s*\(")


def strip_control_prefixes(text: str) -> str:
    """Removes leading `if (...)`, `for (...)`, `while (...)`, `else`,
    `do` so the guarded statement itself gets analyzed."""
    changed = True
    while changed:
        changed = False
        text = text.lstrip()
        m = CONTROL_PREFIX_RE.match(text)
        if not m:
            return text
        if m.group(0) in ("else", "do"):
            text = text[m.end():]
            changed = True
            continue
        # Skip the balanced parenthesized condition.
        depth = 0
        for i in range(m.end() - 1, len(text)):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    text = text[i + 1:]
                    changed = True
                    break
        else:
            return text
    return text


def has_toplevel_assignment(text: str) -> bool:
    depth = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth = max(0, depth - 1)
        elif ch == "=" and depth == 0:
            before = text[i - 1] if i > 0 else ""
            after = text[i + 1] if i + 1 < len(text) else ""
            if before not in "=!<>+-*/%&|^" and after != "=":
                return True
    return False


# --------------------------------------------------------------------------
# Individual rules
# --------------------------------------------------------------------------


def in_dirs(path: str, dirs) -> bool:
    return any(path == d or path.startswith(d + "/") for d in dirs)


NONDET_SCOPE = ("src/core", "src/eval", "src/synth", "src/ml", "src/obs",
                "src/server", "tools/corrobctl")
NONDET_PATTERNS = [
    (re.compile(r"\b(?:rand|srand)\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.])time\s*\(\s*(?:NULL|nullptr|0|&|\))"), "time()"),
    (re.compile(r"(?<![\w.])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b\w*_clock\s*::\s*now\s*\("), "std::chrono::*_clock::now()"),
]

# The only places allowed to block a thread on wall clock: the budget
# primitives own the one interruptible wait (CancellationToken::
# WaitForMs) and retry's backoff delegates to it / to its test shim.
# Everything else must poll a StopSignal or route the wait through
# those, or a deadline-bound run cannot be cancelled promptly.
RAW_SLEEP_EXEMPT_FILES = {
    "src/common/budget.h", "src/common/budget.cc",
    "src/common/retry.h", "src/common/retry.cc",
}
RAW_SLEEP_RE = re.compile(
    r"\bstd\s*::\s*this_thread\s*::\s*sleep_(?:for|until)\s*\(")

RAW_IO_EXEMPT = ("src/cli",)
RAW_IO_EXEMPT_FILES = {
    "src/common/logging.h", "src/common/logging.cc",
}
RAW_IO_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout"),
    (re.compile(r"\bstd\s*::\s*cerr\b"), "std::cerr"),
    (re.compile(r"(?<![\w:])(?:printf|fprintf|puts|fputs)\s*\("),
     "printf-family stdio"),
]

NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")
DELETE_RE = re.compile(r"(?<![\w.])delete\b(?:\s*\[\s*\])?")
DELETED_FN_RE = re.compile(r"=\s*(?:delete\s*(?:\[\s*\]\s*)?|default\s*)(?:;|$)")
MAKE_WRAPPED_RE = re.compile(r"make_(?:unique|shared)")

NOLINT_RE = re.compile(r"\bNOLINT(?:NEXTLINE)?\b(.*)")
NOLINT_OK_RE = re.compile(r"^\(([^)]+)\)\s*:?\s*\S+")

GUARD_EXEMPT_SUFFIXES = ("-inl.h",)


def check_text_rules(sf: SourceFile, sup: Suppressions, out: list[Violation]):
    path = sf.path
    is_header = path.endswith((".h", ".hh", ".hpp"))

    nondet_applies = in_dirs(path, NONDET_SCOPE)
    raw_sleep_applies = (
        path.startswith("src/") and path not in RAW_SLEEP_EXEMPT_FILES
    )
    raw_io_applies = (
        path.startswith("src/")
        and not in_dirs(path, RAW_IO_EXEMPT)
        and path not in RAW_IO_EXEMPT_FILES
    )
    naked_new_applies = path.startswith("src/")

    for idx, code in enumerate(sf.code_lines):
        lineno = idx + 1
        if nondet_applies:
            for pattern, label in NONDET_PATTERNS:
                if pattern.search(code) and not sup.active("nondeterminism", lineno):
                    out.append(Violation(
                        path, lineno, "nondeterminism",
                        f"{label}: use common/random.h (seeded) or "
                        "common/timer.h instead"))
        if raw_sleep_applies and RAW_SLEEP_RE.search(code) \
                and not sup.active("raw-sleep", lineno):
            out.append(Violation(
                path, lineno, "raw-sleep",
                "std::this_thread::sleep_* outside common/budget and "
                "common/retry: blocking waits must be interruptible — "
                "use CancellationToken::WaitForMs or poll a StopSignal"))
        if raw_io_applies:
            for pattern, label in RAW_IO_PATTERNS:
                if pattern.search(code) and not sup.active("raw-io", lineno):
                    out.append(Violation(
                        path, lineno, "raw-io",
                        f"{label} in library code: return strings, take an "
                        "ostream&, or use CORROB_LOG_*"))
        if naked_new_applies:
            stripped = DELETED_FN_RE.sub("", code)
            hit = None
            if NEW_RE.search(stripped) and not MAKE_WRAPPED_RE.search(stripped):
                hit = "naked new"
            elif DELETE_RE.search(stripped):
                hit = "naked delete"
            if hit and not sup.active("naked-new", lineno):
                out.append(Violation(
                    path, lineno, "naked-new",
                    f"{hit}: express ownership with std::make_unique/"
                    "containers (suppress with `// lint: new-ok: <reason>` "
                    "for intentional leaks)"))

    # bare-nolint inspects comments, not code.
    for idx, comment in enumerate(sf.comment_lines):
        m = NOLINT_RE.search(comment)
        if m and not NOLINT_OK_RE.match(m.group(1).strip()):
            out.append(Violation(
                path, idx + 1, "bare-nolint",
                "NOLINT must name its checks and reason: "
                "`// NOLINT(check-name): why`"))

    # guard-style for headers.
    if is_header and not path.endswith(GUARD_EXEMPT_SUFFIXES):
        check_guard(sf, sup, out)


def expected_guard(path: str) -> str:
    return "CORROB_" + re.sub(r"[^A-Za-z0-9]", "_", re.sub(r"^src/", "", path)).upper() + "_"


def check_guard(sf: SourceFile, sup: Suppressions, out: list[Violation]):
    pragma_line = None
    ifndef = None
    ifndef_line = None
    for idx, code in enumerate(sf.code_lines):
        if re.match(r"\s*#\s*pragma\s+once\b", code):
            pragma_line = idx + 1
            break
        m = re.match(r"\s*#\s*ifndef\s+(\w+)", code)
        if m:
            ifndef = m.group(1)
            ifndef_line = idx + 1
            break
    if pragma_line is not None:
        if not sup.active("guard-style", pragma_line):
            out.append(Violation(
                sf.path, pragma_line, "guard-style",
                "#pragma once: this project uses CORROB_*_H_ include guards"))
        return
    if ifndef is None:
        if not sup.active("guard-style", 1):
            out.append(Violation(
                sf.path, 1, "guard-style",
                f"missing include guard (expected #ifndef {expected_guard(sf.path)})"))
        return
    want = expected_guard(sf.path)
    if ifndef != want and not sup.active("guard-style", ifndef_line):
        out.append(Violation(
            sf.path, ifndef_line, "guard-style",
            f"guard macro {ifndef} does not match path (expected {want})"))


INCLUDE_RE = re.compile(r'\s*#\s*include\s+(["<])([^">]+)[">]')


def check_include_order(sf: SourceFile, sup: Suppressions,
                        known_headers, out: list[Violation]):
    """A src/**/*.cc or tools/**/*.cc file must include its own header
    first. src/ headers are included without the src/ prefix; tool
    headers by their full repo-relative path (tool targets add the
    repo root as the include dir)."""
    if not sf.path.endswith((".cc", ".cpp", ".cxx")):
        return
    if sf.path.startswith("src/"):
        own = re.sub(r"\.(cc|cpp|cxx)$", ".h", re.sub(r"^src/", "", sf.path))
        if "src/" + own not in known_headers:
            return  # e.g. main.cc with no header of its own
    elif sf.path.startswith("tools/"):
        own = re.sub(r"\.(cc|cpp|cxx)$", ".h", sf.path)
        if own not in known_headers:
            return
    else:
        return
    for idx, code in enumerate(sf.code_lines):
        if not code.lstrip().startswith("#"):
            continue
        # The lexer blanks string literals, so read the path from the
        # raw line; the code-line gate keeps commented-out includes out.
        m = INCLUDE_RE.match(sf.raw_lines[idx])
        if not m:
            continue
        lineno = idx + 1
        if m.group(1) == '"' and m.group(2) == own:
            return  # self-header is first — good
        if not sup.active("include-order", lineno):
            out.append(Violation(
                sf.path, lineno, "include-order",
                f'first include must be the self-header "{own}" '
                "(verifies the header is self-contained)"))
        return


def check_discards(sf: SourceFile, sup: Suppressions, status_fns,
                   out: list[Violation]):
    for start_line, text in iter_statements(sf):
        text = strip_control_prefixes(text)
        if not text or SKIP_STMT_RE.match(text):
            continue

        void_cast = VOID_CAST_RE.match(text)
        if void_cast:
            # Only discards of *calls* need documentation; `(void)var;`
            # silences unused-variable warnings and stays free-form.
            if "(" in void_cast.group(1):
                if not sup.active("undocumented-discard", start_line):
                    out.append(Violation(
                        sf.path, start_line, "undocumented-discard",
                        "explicit discard needs `// lint: discard-ok: <reason>`"))
            continue

        if has_toplevel_assignment(text):
            continue
        m = CALL_HEAD_RE.match(text)
        if not m:
            continue
        name = m.group(2)
        if name not in status_fns:
            continue
        if not sup.active("discarded-status", start_line):
            out.append(Violation(
                sf.path, start_line, "discarded-status",
                f"result of {name}() [Status/Result] is ignored: propagate "
                "it or discard explicitly with (void) + "
                "`// lint: discard-ok: <reason>`"))


# --------------------------------------------------------------------------
# Concurrency rules (lexical complements to Clang -Wthread-safety)
# --------------------------------------------------------------------------

MUTEX_DECL_RE = re.compile(
    r"\b(?:mutable\s+)?std\s*::\s*"
    r"(?:shared_|recursive_|timed_|recursive_timed_)?mutex\s+"
    r"([A-Za-z_]\w*)\s*;")

# Any capability annotation whose argument list names the mutex counts
# as a "user": the mutex then states what it protects.
ANNOTATION_USE_RE = re.compile(
    r"\bCORROB_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|"
    r"ACQUIRE|RELEASE|EXCLUDES|RETURN_CAPABILITY)\s*\(([^)]*)\)")

RAII_LOCK_DECL_RE = re.compile(
    r"\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*<")

# Adoptable wrappers whose .lock()/.unlock() is deliberate deferred /
# early release, not a raw mutex operation.
ADOPTABLE_LOCK_DECL_RE = re.compile(
    r"\bstd\s*::\s*(?:unique_lock|shared_lock)\s*<[^;{}>]*>\s+"
    r"([A-Za-z_]\w*)")

MANUAL_LOCK_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(lock|unlock|try_lock)\s*\(")

CV_DECL_RE = re.compile(
    r"\bstd\s*::\s*condition_variable(?:_any)?\s+([A-Za-z_]\w*)\s*;")

CV_WAIT_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*(wait|wait_for|wait_until)\s*\(")

# Calls that can block the calling thread for macroscopic time: frame
# and socket I/O, the interruptible sleep, and the retry loop. Holding
# a mutex across any of these stalls every thread that needs it.
BLOCKING_CALL_RE = re.compile(
    r"\b(ReadFrameOrEof|ReadFrame|WriteFrame|AcceptWithStop|ReadFull|"
    r"WriteAll|WaitForMs|Retry)\s*\(")


def collect_cv_names(files) -> set:
    """Names of condition_variable members/locals declared anywhere in
    the tree. A member cv is declared in the header but waited on in
    the .cc, so this pass is tree-wide like collect_status_returning."""
    names = set()
    for sf in files:
        for code in sf.code_lines:
            names.update(CV_DECL_RE.findall(code))
    return names


def _top_level_comma_count(text: str, open_pos: int):
    """Counts top-level commas in the balanced parens starting at
    `open_pos` (which must index a '('). Returns (count, found_close);
    lambda braces nest like parens for the purpose of "top level"."""
    depth = 0
    commas = 0
    for i in range(open_pos, len(text)):
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return commas, True
        elif ch == "," and depth == 1:
            commas += 1
    return commas, False


def check_concurrency(sf: SourceFile, sup: Suppressions, cv_names,
                      out: list[Violation]):
    """The four lexical lock-discipline rules. They complement the Clang
    thread-safety analysis (docs/STATIC_ANALYSIS.md): Clang proves the
    annotated guards, these catch what analysis can't see — missing
    annotations, manual lock calls, predicate-less cv waits, and
    blocking work inside a critical section."""
    if not sf.path.startswith("src/"):
        return
    if sf.path == "src/common/thread_annotations.h":
        return  # the macro definitions themselves

    joined = "\n".join(sf.code_lines)
    line_starts = []
    pos = 0
    for code in sf.code_lines:
        line_starts.append(pos)
        pos += len(code) + 1

    def line_of(offset: int) -> int:
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    # unguarded-mutex: every mutex member must be named by at least one
    # capability annotation somewhere in the file.
    annotated = set()
    for m in ANNOTATION_USE_RE.finditer(joined):
        annotated.update(re.findall(r"[A-Za-z_]\w*", m.group(1)))
    for m in MUTEX_DECL_RE.finditer(joined):
        name = m.group(1)
        lineno = line_of(m.start())
        if name in annotated:
            continue
        if not sup.active("unguarded-mutex", lineno):
            out.append(Violation(
                sf.path, lineno, "unguarded-mutex",
                f"mutex '{name}' has no CORROB_GUARDED_BY/CORROB_REQUIRES "
                "user: annotate what it protects "
                "(common/thread_annotations.h)"))

    # manual-lock: .lock()/.unlock()/.try_lock() on anything that is not
    # a unique_lock/shared_lock variable declared in this file.
    adoptable = set(ADOPTABLE_LOCK_DECL_RE.findall(joined))
    for m in MANUAL_LOCK_RE.finditer(joined):
        receiver, method = m.group(1), m.group(2)
        if receiver in adoptable:
            continue
        lineno = line_of(m.start())
        if not sup.active("manual-lock", lineno):
            out.append(Violation(
                sf.path, lineno, "manual-lock",
                f"manual {receiver}.{method}(): use std::lock_guard/"
                "std::unique_lock/std::scoped_lock so the unlock is "
                "exception- and early-return-safe"))

    # cv-wait-predicate: bare waits on known condition variables.
    # wait(lock) has 1 argument, the predicate overloads have 2 (wait)
    # or 3 (wait_for/wait_until).
    for m in CV_WAIT_RE.finditer(joined):
        receiver, method = m.group(1), m.group(2)
        if receiver not in cv_names:
            continue
        open_pos = joined.index("(", m.end() - 1)
        commas, closed = _top_level_comma_count(joined, open_pos)
        if not closed:
            continue
        want = 1 if method == "wait" else 2
        if commas >= want:
            continue
        lineno = line_of(m.start())
        if not sup.active("cv-wait-predicate", lineno):
            out.append(Violation(
                sf.path, lineno, "cv-wait-predicate",
                f"{receiver}.{method}() without a predicate: spurious "
                "wakeups make a bare wait a latent hang — pass the "
                "condition as a lambda (bounded poll slices that re-check "
                "a stop signal suppress with `// lint: cvwait-ok: <why>`)"))

    # blocking-under-lock: a blocking call lexically inside the brace
    # scope opened at or after an RAII lock declaration.
    lock_depths: list[int] = []
    depth = 0
    for idx, code in enumerate(sf.code_lines):
        lineno = idx + 1
        events = []
        for m in RAII_LOCK_DECL_RE.finditer(code):
            events.append((m.start(), "lock", None))
        for m in BLOCKING_CALL_RE.finditer(code):
            events.append((m.start(), "call", m.group(1)))
        events.sort()
        event_i = 0
        for col, ch in enumerate(code):
            while event_i < len(events) and events[event_i][0] == col:
                _, kind, name = events[event_i]
                event_i += 1
                if kind == "lock":
                    lock_depths.append(depth)
                elif lock_depths and not sup.active(
                        "blocking-under-lock", lineno):
                    out.append(Violation(
                        sf.path, lineno, "blocking-under-lock",
                        f"{name}() can block while a RAII lock is held: "
                        "move the blocking work outside the critical "
                        "section (or `// lint: blocking-ok: <why>`)"))
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                while lock_depths and depth < lock_depths[-1]:
                    lock_depths.pop()


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

SCAN_ROOTS = ("src", "tests", "tools/corrobctl")


def gather_files(root: str, only_paths=None):
    files = []
    if only_paths:
        targets = [(p, os.path.relpath(p, root)) for p in only_paths]
        for absolute, rel in targets:
            rel = rel.replace(os.sep, "/")
            if not absolute.endswith(SOURCE_EXTENSIONS):
                continue
            with open(absolute, encoding="utf-8", errors="replace") as f:
                files.append(lex_file(absolute, rel, f.read()))
        return files
    for scan_root in SCAN_ROOTS:
        top = os.path.join(root, scan_root)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTENSIONS):
                    continue
                absolute = os.path.join(dirpath, name)
                rel = os.path.relpath(absolute, root).replace(os.sep, "/")
                with open(absolute, encoding="utf-8", errors="replace") as f:
                    files.append(lex_file(absolute, rel, f.read()))
    return files


def run_lint(root: str, only_paths=None) -> list[Violation]:
    files = gather_files(root, only_paths)
    # The declaration pass always covers the whole tree so that linting a
    # single file still knows every Status-returning name.
    decl_files = files if only_paths is None else gather_files(root)
    status_fns = collect_status_returning(decl_files)
    cv_names = collect_cv_names(decl_files)

    violations: list[Violation] = []
    for sf in files:
        sup = Suppressions(sf, violations)
        check_text_rules(sf, sup, violations)
        check_discards(sf, sup, status_fns, violations)
        check_concurrency(sf, sup, cv_names, violations)

    known_headers = {sf.path for sf in decl_files}
    for sf in files:
        sup = Suppressions(sf, [])  # suppression errors already reported
        check_include_order(sf, sup, known_headers, violations)

    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def render_summary(violations: list[Violation]) -> str:
    """Per-rule count table, widest-count-first, for CI failure logs."""
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    width = max(len(rule) for rule in counts)
    lines = ["", "corrob_lint summary (violations by rule):"]
    for rule, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {rule:<{width}}  {count:>4}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="corrob_lint",
        description="Project-specific static analysis for the corrob tree.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule IDs and exit")
    parser.add_argument("--summary", action="store_true",
                        help="on failure, append a per-rule violation-count "
                             "table after the raw lines (used by CI)")
    parser.add_argument("paths", nargs="*",
                        help="lint only these files (default: src/ and tests/)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule:22} {summary}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"corrob_lint: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2

    violations = run_lint(root, args.paths or None)
    for violation in violations:
        print(violation.render())
    if violations:
        if args.summary:
            print(render_summary(violations), file=sys.stderr)
        print(f"corrob_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
