#ifndef CORROB_TOOLS_CORROBCTL_CORROBCTL_H_
#define CORROB_TOOLS_CORROBCTL_CORROBCTL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/wal.h"
#include "obs/json.h"

// corrobctl: the operator CLI over corrobd's introspection surface
// (docs/SERVING.md, "corrobctl"). Speaks the same wire protocol as
// every other client — kStatsRequest and the v3 kIntrospectRequest —
// and renders the JSON documents as aligned tables:
//
//   corrobctl status   --socket /tmp/corrobd.sock
//   corrobctl requests --socket /tmp/corrobd.sock --recent 50
//   corrobctl tenants  --socket /tmp/corrobd.sock --top 10
//   corrobctl watch    --socket /tmp/corrobd.sock --interval-ms 1000
//
// --raw replaces the tables with the daemon's JSON verbatim, which is
// what CI pipes into tools/obs/validate_trace.py.
//
// apply-delta sends vote deltas over the kApplyDeltaRequest frame to
// a daemon running with --wal — the shell-scriptable counterpart of
// CorrobClient::ApplyDelta that the crash-soak CI job drives:
//
//   corrobctl apply-delta --socket /tmp/corrobd.sock --dataset serve
//     --delta vote:wiki:obama-born-hawaii:T --delta retract:blog:fact-3

namespace corrob {
namespace ctl {

struct CtlOptions {
  /// "status" | "requests" | "tenants" | "watch" | "apply-delta".
  std::string command;
  /// Unix socket of the daemon (--socket, required).
  std::string socket;
  /// Target dataset of `apply-delta` (--dataset, required there).
  std::string dataset;
  /// Parsed --delta specs, in flag order (apply-delta only).
  std::vector<WalRecord> deltas;
  /// Dump the daemon's JSON verbatim instead of rendering tables.
  bool raw = false;
  /// Per-tenant rows to request (--top).
  int64_t top = 10;
  /// Completed-request ring rows to request (--recent).
  int64_t recent = 20;
  /// Cadence of `watch` (--interval-ms).
  int64_t interval_ms = 1000;
  /// Iterations of `watch`; 0 = until interrupted (--count).
  int64_t count = 0;
};

/// Parses the subcommand and flags; rejects unknown subcommands,
/// unknown flags, and a missing --socket.
[[nodiscard]] Result<CtlOptions> ParseCtlArgs(
    const std::vector<std::string>& args);

/// Parses one --delta spec into a WAL record:
///   vote:SOURCE:FACT:T|F    add (or overwrite) a vote
///   retract:SOURCE:FACT     retract a vote
///   source:SOURCE           register a source with no votes yet
[[nodiscard]] Result<WalRecord> ParseDeltaSpec(const std::string& spec);

// Pure renderers from the parsed corrob.serving_stats/4 and
// corrob.introspect/1 documents to table text; exposed for tests.
[[nodiscard]] Result<std::string> RenderStatus(
    const obs::JsonValue& stats, const obs::JsonValue& introspect);
[[nodiscard]] Result<std::string> RenderRequests(
    const obs::JsonValue& introspect);
[[nodiscard]] Result<std::string> RenderTenants(
    const obs::JsonValue& introspect);

/// Entry point shared by main() and the tests. Returns 0 on success,
/// 1 on a daemon/transport error, 2 on a usage error.
int RunCorrobctl(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

}  // namespace ctl
}  // namespace corrob

#endif  // CORROB_TOOLS_CORROBCTL_CORROBCTL_H_
