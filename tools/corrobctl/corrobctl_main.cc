#include <iostream>
#include <string>
#include <vector>

#include "tools/corrobctl/corrobctl.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return corrob::ctl::RunCorrobctl(
      args, std::cout, std::cerr);  // lint: io-ok: binary entry point
}
