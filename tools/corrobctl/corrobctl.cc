#include "tools/corrobctl/corrobctl.h"

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "server/client.h"
#include "server/protocol.h"

namespace corrob {
namespace ctl {
namespace {

using server::CorrobClient;
using server::IntrospectRequest;

constexpr char kUsage[] =
    "usage: corrobctl <status|requests|tenants|watch> --socket PATH\n"
    "                 [--raw] [--top N] [--recent N]\n"
    "                 [--interval-ms N] [--count N]\n"
    "       corrobctl apply-delta --socket PATH --dataset NAME\n"
    "                 --delta vote:SOURCE:FACT:T|F\n"
    "                 --delta retract:SOURCE:FACT\n"
    "                 --delta source:SOURCE  (each --delta repeatable)\n";

/// Formats nanoseconds as milliseconds with microsecond resolution.
std::string Ms(int64_t nanos) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(nanos) / 1e6);
  return buffer;
}

/// Reads doc[key] as an integer; 0 when absent or mistyped. The
/// renderers stay best-effort about optional fields so a daemon from
/// an adjacent schema revision degrades to blank cells, not a refusal
/// — but the schema string itself is still checked by the callers.
int64_t IntField(const obs::JsonValue& doc, std::string_view key) {
  const obs::JsonValue* value = doc.Find(key);
  return value != nullptr && value->is_int() ? value->int_value() : 0;
}

std::string StrField(const obs::JsonValue& doc, std::string_view key) {
  const obs::JsonValue* value = doc.Find(key);
  return value != nullptr && value->is_string() ? value->string_value() : "";
}

std::string BoolField(const obs::JsonValue& doc, std::string_view key) {
  const obs::JsonValue* value = doc.Find(key);
  if (value == nullptr || !value->is_bool()) return "";
  return value->bool_value() ? "true" : "false";
}

/// The empty-or-wrong-shape guard every renderer starts with.
[[nodiscard]] Status ExpectSchema(const obs::JsonValue& doc,
                                  const std::string& want) {
  if (!doc.is_object()) {
    return Status::ParseError("daemon document is not a JSON object");
  }
  const std::string schema = StrField(doc, "schema");
  if (schema != want) {
    return Status::ParseError("expected schema '" + want + "', daemon sent '" +
                              schema + "'");
  }
  return Status::OK();
}

}  // namespace

Result<WalRecord> ParseDeltaSpec(const std::string& spec) {
  const std::vector<std::string> fields = Split(spec, ':');
  const std::string& kind = fields[0];
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("--delta '" + spec + "': " + why);
  };
  if (kind == "vote") {
    if (fields.size() != 4) return bad("want vote:SOURCE:FACT:T|F");
    if (fields[1].empty() || fields[2].empty()) {
      return bad("source and fact must be non-empty");
    }
    if (fields[3] != "T" && fields[3] != "F") {
      return bad("vote must be T or F, got '" + fields[3] + "'");
    }
    return MakeAddVote(fields[1], fields[2],
                       fields[3] == "T" ? Vote::kTrue : Vote::kFalse);
  }
  if (kind == "retract") {
    if (fields.size() != 3) return bad("want retract:SOURCE:FACT");
    if (fields[1].empty() || fields[2].empty()) {
      return bad("source and fact must be non-empty");
    }
    return MakeRetractVote(fields[1], fields[2]);
  }
  if (kind == "source") {
    if (fields.size() != 2) return bad("want source:SOURCE");
    if (fields[1].empty()) return bad("source must be non-empty");
    return MakeAddSource(fields[1]);
  }
  return bad("unknown delta kind '" + kind + "'");
}

Result<CtlOptions> ParseCtlArgs(const std::vector<std::string>& args) {
  CtlOptions options;
  const auto needs_value = [&](size_t i) -> Result<std::string> {
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("flag " + args[i] + " needs a value");
    }
    return args[i + 1];
  };
  const auto needs_int = [&](size_t i) -> Result<int64_t> {
    CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
    try {
      return static_cast<int64_t>(std::stoll(value));
    } catch (...) {
      return Status::InvalidArgument("flag " + args[i] + ": '" + value +
                                     "' is not an integer");
    }
  };
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--socket") {
      CORROB_ASSIGN_OR_RETURN(options.socket, needs_value(i));
      ++i;
    } else if (arg == "--raw") {
      options.raw = true;
    } else if (arg == "--top") {
      CORROB_ASSIGN_OR_RETURN(options.top, needs_int(i));
      ++i;
    } else if (arg == "--recent") {
      CORROB_ASSIGN_OR_RETURN(options.recent, needs_int(i));
      ++i;
    } else if (arg == "--interval-ms") {
      CORROB_ASSIGN_OR_RETURN(options.interval_ms, needs_int(i));
      ++i;
    } else if (arg == "--count") {
      CORROB_ASSIGN_OR_RETURN(options.count, needs_int(i));
      ++i;
    } else if (arg == "--dataset") {
      CORROB_ASSIGN_OR_RETURN(options.dataset, needs_value(i));
      ++i;
    } else if (arg == "--delta") {
      CORROB_ASSIGN_OR_RETURN(std::string spec, needs_value(i));
      CORROB_ASSIGN_OR_RETURN(WalRecord record, ParseDeltaSpec(spec));
      options.deltas.push_back(std::move(record));
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    } else if (options.command.empty()) {
      options.command = arg;
    } else {
      return Status::InvalidArgument("unexpected argument '" + arg + "'");
    }
  }
  if (options.command != "status" && options.command != "requests" &&
      options.command != "tenants" && options.command != "watch" &&
      options.command != "apply-delta") {
    return Status::InvalidArgument(
        options.command.empty()
            ? "missing subcommand"
            : "unknown subcommand '" + options.command + "'");
  }
  if (options.socket.empty()) {
    return Status::InvalidArgument("--socket is required");
  }
  if (options.command == "apply-delta") {
    if (options.dataset.empty()) {
      return Status::InvalidArgument("apply-delta requires --dataset");
    }
    if (options.deltas.empty()) {
      return Status::InvalidArgument(
          "apply-delta requires at least one --delta");
    }
  } else if (!options.dataset.empty() || !options.deltas.empty()) {
    return Status::InvalidArgument(
        "--dataset/--delta only apply to apply-delta");
  }
  if (options.top < 1 || options.recent < 1) {
    return Status::InvalidArgument("--top and --recent must be >= 1");
  }
  if (options.interval_ms < 1 || options.count < 0) {
    return Status::InvalidArgument(
        "--interval-ms must be >= 1 and --count >= 0");
  }
  return options;
}

Result<std::string> RenderStatus(const obs::JsonValue& stats,
                                 const obs::JsonValue& introspect) {
  CORROB_RETURN_NOT_OK(ExpectSchema(stats, "corrob.serving_stats/4"));
  CORROB_RETURN_NOT_OK(ExpectSchema(introspect, "corrob.introspect/1"));

  TablePrinter table({"field", "value"});
  table.AddRow({"draining", BoolField(stats, "draining")});
  table.AddRow({"running", std::to_string(IntField(stats, "running"))});
  if (const obs::JsonValue* queued = stats.Find("queued");
      queued != nullptr && queued->is_object()) {
    for (const auto& [cls, depth] : queued->members()) {
      table.AddRow({"queued." + cls,
                    std::to_string(depth.is_int() ? depth.int_value() : 0)});
    }
  }
  table.AddRow(
      {"responses_sent", std::to_string(IntField(stats, "responses_sent"))});
  table.AddSeparator();
  if (const obs::JsonValue* cache = stats.Find("cache");
      cache != nullptr && cache->is_object()) {
    for (const char* key : {"hits", "misses", "entries", "evictions"}) {
      table.AddRow({std::string("cache.") + key,
                    std::to_string(IntField(*cache, key))});
    }
  }
  if (const obs::JsonValue* coalesce = stats.Find("coalesce");
      coalesce != nullptr && coalesce->is_object()) {
    for (const char* key : {"leaders", "followers", "promotions"}) {
      table.AddRow({std::string("coalesce.") + key,
                    std::to_string(IntField(*coalesce, key))});
    }
  }
  if (const obs::JsonValue* quota = stats.Find("quota");
      quota != nullptr && quota->is_object()) {
    for (const char* key : {"rate_rejections", "slot_rejections"}) {
      table.AddRow({std::string("quota.") + key,
                    std::to_string(IntField(*quota, key))});
    }
  }
  table.AddSeparator();
  const obs::JsonValue* active = introspect.Find("active");
  table.AddRow({"active_requests",
                std::to_string(active != nullptr && active->is_array()
                                   ? static_cast<int64_t>(active->size())
                                   : 0)});
  if (const obs::JsonValue* recorder = stats.Find("recorder");
      recorder != nullptr && recorder->is_object()) {
    for (const char* key : {"started", "completed", "dropped", "slow"}) {
      table.AddRow({std::string("recorder.") + key,
                    std::to_string(IntField(*recorder, key))});
    }
  }
  if (const obs::JsonValue* watchdog = stats.Find("watchdog");
      watchdog != nullptr && watchdog->is_object()) {
    for (const char* key : {"scans", "flagged", "stuck"}) {
      table.AddRow({std::string("watchdog.") + key,
                    std::to_string(IntField(*watchdog, key))});
    }
  }
  return table.ToString();
}

Result<std::string> RenderRequests(const obs::JsonValue& introspect) {
  CORROB_RETURN_NOT_OK(ExpectSchema(introspect, "corrob.introspect/1"));
  const obs::JsonValue* active = introspect.Find("active");
  const obs::JsonValue* recorder = introspect.Find("recorder");
  if (active == nullptr || !active->is_array() || recorder == nullptr ||
      !recorder->is_object()) {
    return Status::ParseError(
        "introspect document is missing 'active' or 'recorder'");
  }
  const obs::JsonValue* recent = recorder->Find("recent");
  if (recent == nullptr || !recent->is_array()) {
    return Status::ParseError("introspect recorder is missing 'recent'");
  }

  std::string out = "active requests (" + std::to_string(active->size()) +
                    " in flight)\n";
  TablePrinter active_table({"seq", "id", "tenant", "dataset", "method",
                             "priority", "age_ms", "deadline_ms", "flagged"});
  for (const obs::JsonValue& row : active->items()) {
    active_table.AddRow(
        {std::to_string(IntField(row, "seq")), StrField(row, "id"),
         StrField(row, "tenant"), StrField(row, "dataset"),
         StrField(row, "method"), StrField(row, "priority"),
         Ms(IntField(row, "age_nanos")), Ms(IntField(row, "deadline_nanos")),
         BoolField(row, "flagged")});
  }
  out += active_table.ToString();

  out += "\nrecent requests (" + std::to_string(recent->size()) +
         " of ring capacity " +
         std::to_string(IntField(*recorder, "capacity")) + ", " +
         std::to_string(IntField(*recorder, "dropped")) + " dropped)\n";
  TablePrinter recent_table({"seq", "id", "tenant", "dataset", "method",
                             "priority", "role", "termination", "wait_ms",
                             "service_ms", "total_ms", "bytes"});
  for (const obs::JsonValue& row : recent->items()) {
    recent_table.AddRow(
        {std::to_string(IntField(row, "seq")), StrField(row, "id"),
         StrField(row, "tenant"), StrField(row, "dataset"),
         StrField(row, "method"), StrField(row, "priority"),
         StrField(row, "role"), StrField(row, "termination"),
         Ms(IntField(row, "admission_wait_nanos")),
         Ms(IntField(row, "service_nanos")), Ms(IntField(row, "total_nanos")),
         std::to_string(IntField(row, "response_bytes"))});
  }
  out += recent_table.ToString();
  return out;
}

Result<std::string> RenderTenants(const obs::JsonValue& introspect) {
  CORROB_RETURN_NOT_OK(ExpectSchema(introspect, "corrob.introspect/1"));
  const obs::JsonValue* recorder = introspect.Find("recorder");
  const obs::JsonValue* tenants =
      recorder != nullptr ? recorder->Find("tenants") : nullptr;
  if (tenants == nullptr || !tenants->is_array()) {
    return Status::ParseError("introspect recorder is missing 'tenants'");
  }
  TablePrinter table({"tenant", "requests", "avg_ms", "max_ms", "total_ms"});
  for (const obs::JsonValue& row : tenants->items()) {
    const int64_t requests = IntField(row, "requests");
    const int64_t total_nanos = IntField(row, "total_nanos");
    table.AddRow({StrField(row, "tenant"), std::to_string(requests),
                  Ms(requests > 0 ? total_nanos / requests : 0),
                  Ms(IntField(row, "max_nanos")), Ms(total_nanos)});
  }
  return table.ToString();
}

namespace {

/// One fetch-and-render pass; watch runs this on a cadence. `*text`
/// ends with a newline so the caller can stream passes back to back.
[[nodiscard]] Status RenderOnce(CorrobClient* client,
                                const CtlOptions& options, std::string* text) {
  IntrospectRequest introspect_request;
  introspect_request.top_k = static_cast<uint32_t>(options.top);
  introspect_request.max_recent = static_cast<uint32_t>(options.recent);

  CORROB_ASSIGN_OR_RETURN(std::string introspect_payload,
                          client->Introspect(introspect_request, StopSignal()));
  if (options.raw && options.command != "status") {
    *text = introspect_payload + "\n";
    return Status::OK();
  }
  obs::JsonValue introspect;
  std::string error;
  if (!obs::JsonValue::Parse(introspect_payload, &introspect, &error)) {
    return Status::ParseError("daemon sent unparsable introspect JSON: " +
                              error);
  }

  if (options.command == "requests") {
    CORROB_ASSIGN_OR_RETURN(*text, RenderRequests(introspect));
    return Status::OK();
  }
  if (options.command == "tenants") {
    CORROB_ASSIGN_OR_RETURN(*text, RenderTenants(introspect));
    return Status::OK();
  }

  // status / watch also need the stats document.
  CORROB_ASSIGN_OR_RETURN(std::string stats_payload,
                          client->Stats(StopSignal()));
  if (options.raw) {
    *text = stats_payload + "\n";
    return Status::OK();
  }
  obs::JsonValue stats;
  if (!obs::JsonValue::Parse(stats_payload, &stats, &error)) {
    return Status::ParseError("daemon sent unparsable stats JSON: " + error);
  }
  CORROB_ASSIGN_OR_RETURN(*text, RenderStatus(stats, introspect));
  return Status::OK();
}

}  // namespace

int RunCorrobctl(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  const Result<CtlOptions> parsed = ParseCtlArgs(args);
  if (!parsed.ok()) {
    err << "corrobctl: " << parsed.status().ToString() << "\n" << kUsage;
    return 2;
  }
  const CtlOptions& options = parsed.ValueOrDie();

  Result<CorrobClient> client = CorrobClient::Connect(options.socket);
  if (!client.ok()) {
    err << "corrobctl: cannot connect to '" << options.socket
        << "': " << client.status().ToString() << "\n";
    return 1;
  }

  if (options.command == "apply-delta") {
    server::ApplyDeltaRequest request;
    request.dataset = options.dataset;
    request.deltas = options.deltas;
    const Result<server::ApplyDeltaResponse> response =
        client.ValueOrDie().ApplyDelta(request, StopSignal());
    if (!response.ok()) {
      err << "corrobctl: " << response.status().ToString() << "\n";
      return 1;
    }
    out << "applied " << response.ValueOrDie().applied
        << " delta(s); dataset '" << options.dataset << "' at generation "
        << response.ValueOrDie().generation << "\n";
    return 0;
  }

  const int64_t passes = options.command == "watch"
                             ? (options.count > 0 ? options.count : INT64_MAX)
                             : 1;
  const CancellationToken pacer;
  for (int64_t pass = 0; pass < passes; ++pass) {
    if (pass > 0) {
      const double interval = static_cast<double>(options.interval_ms);
      (void)pacer.WaitForMs(interval);  // lint: discard-ok: watch cadence
      out << "\n";
    }
    std::string text;
    if (const Status rendered = RenderOnce(&client.ValueOrDie(), options, &text);
        !rendered.ok()) {
      err << "corrobctl: " << rendered.ToString() << "\n";
      return 1;
    }
    out << text;
    out.flush();
  }
  return 0;
}

}  // namespace ctl
}  // namespace corrob
