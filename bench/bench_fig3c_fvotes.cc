// Figure 3(c): accuracy vs. the fraction η of facts that carry F
// votes, with 10 sources of which 2 are inaccurate.

#include "fig3_common.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::SyntheticOptions base;
  base.num_facts = static_cast<int32_t>(flags.GetInt("facts", 20000));
  base.num_sources = static_cast<int32_t>(flags.GetInt("sources", 10));
  base.num_inaccurate =
      static_cast<int32_t>(flags.GetInt("inaccurate", 2));
  const int seeds = static_cast<int>(flags.GetInt("seeds", 2));

  corrob::bench::PrintHeader(
      "Figure 3(c): accuracy vs. fraction of facts with F votes",
      "10 sources, 2 inaccurate. Paper shape: IncEstHeu dominates at "
      "every η; more F votes give it more conflict to learn from.");

  std::vector<std::pair<std::string, corrob::SyntheticOptions>> rows;
  for (double eta : {0.01, 0.02, 0.03, 0.04, 0.05}) {
    corrob::SyntheticOptions options = base;
    options.eta = eta;
    rows.emplace_back(corrob::FormatDouble(eta, 2), options);
  }
  corrob::bench::RunFigure3Sweep(rows, "Eta", seeds);
  return 0;
}
