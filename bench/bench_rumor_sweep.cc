// Extension experiment: the rumor domain from the paper's
// introduction, swept over virality (how aggressively fabricated
// claims are reblogged). As virality grows, false rumors accumulate
// manufactured consensus and Voting degrades, while IncEstHeu keeps
// discounting the reblog cascade through the tabloids' trust.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/rumor_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  const int32_t rumors = static_cast<int32_t>(flags.GetInt("rumors", 3000));
  const int seeds = static_cast<int>(flags.GetInt("seeds", 2));

  corrob::bench::PrintHeader(
      "Rumor sweep (extension; §1's product-release domain)",
      "Mean accuracy over seeds as the virality of fabricated rumors "
      "grows. Shape claim: baselines degrade with virality, IncEstHeu "
      "stays high by discounting the reblog cascade.");

  const std::vector<std::string> methods = {"Voting", "TwoEstimate",
                                            "TruthFinder", "IncEstHeu"};
  const std::vector<double> viralities = {0.05, 0.10, 0.15, 0.20,
                                          0.25, 0.30};

  const int64_t cells =
      static_cast<int64_t>(viralities.size()) * methods.size() * seeds;
  std::vector<double> accuracy(static_cast<size_t>(cells), 0.0);
  corrob::ParallelFor(cells, corrob::DefaultThreadCount(), [&](int64_t cell) {
    size_t v = static_cast<size_t>(cell) /
               (methods.size() * static_cast<size_t>(seeds));
    size_t within = static_cast<size_t>(cell) %
                    (methods.size() * static_cast<size_t>(seeds));
    size_t m = within / static_cast<size_t>(seeds);
    int seed = static_cast<int>(within % static_cast<size_t>(seeds));

    corrob::RumorSimOptions options;
    options.num_rumors = rumors;
    options.virality = viralities[v];
    options.seed = 500 + static_cast<uint64_t>(seed);
    corrob::RumorCorpus corpus =
        corrob::GenerateRumors(options).ValueOrDie();
    auto algorithm = corrob::MakeCorroborator(methods[m]).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(corpus.dataset).ValueOrDie();
    accuracy[static_cast<size_t>(cell)] =
        corrob::EvaluateOnTruth(result, corpus.truth).accuracy;
  });

  std::vector<std::string> headers{"Virality"};
  for (const std::string& m : methods) headers.push_back(m);
  corrob::TablePrinter table(headers);
  for (size_t v = 0; v < viralities.size(); ++v) {
    std::vector<double> row;
    for (size_t m = 0; m < methods.size(); ++m) {
      double sum = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        sum += accuracy[(v * methods.size() + m) *
                            static_cast<size_t>(seeds) +
                        static_cast<size_t>(seed)];
      }
      row.push_back(sum / seeds);
    }
    table.AddRow(corrob::FormatDouble(viralities[v], 2), row, 3);
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
