// Overhead of the flight recorder (obs/flight_recorder.h) on the
// serving hot path, recorded as BENCH_flight_recorder.json. The
// kernel is the cheapest real work corrobd does for every request —
// encode a CorroborateResponse payload, wrap it in a checksummed
// frame, attach the client's request id — bracketed by recorder calls
// exactly as src/server/server.cc places them: RequestStart is only
// assembled behind an armed() check, spans and End no-op on the zero
// handle. Three arms over the same scripted request stream:
//   baseline   the serving work with no recorder in the build at all
//   disarmed   a capacity-0 recorder: the armed() branch fails, so
//              every request pays one predicted branch
//   armed      the corrobd default (capacity 1024, 8 shards), paying
//              metadata assembly plus active-table and ring updates
// The acceptance bar for this subsystem is <= 2% median overhead on
// the disarmed path; the armed arm documents what live introspection
// costs a deployment that turns it on.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/flight_recorder.h"
#include "server/frame.h"
#include "server/protocol.h"

namespace {

const char* const kTenants[] = {"alpha", "beta", "gamma", "delta"};

/// One pass over the request stream. `recorder` is null for the
/// baseline arm; the returned sink defeats dead-code elimination.
int64_t RunStream(corrob::obs::FlightRecorder* recorder, int64_t requests,
                  int num_facts) {
  corrob::server::CorroborateResponse response;
  response.algorithm = "IncEstHeu";
  response.termination = 1;
  response.iterations = 7;
  response.fact_probability.assign(static_cast<size_t>(num_facts), 0.5);
  response.source_trust.assign(10, 0.9);

  int64_t sink = 0;
  for (int64_t i = 0; i < requests; ++i) {
    const std::string request_id = "bench-" + std::to_string(i);

    // Recorder entry, mirroring CorrobdServer::ExecuteOne: metadata
    // is only assembled when a record will actually be kept.
    uint64_t handle = 0;
    if (recorder != nullptr && recorder->armed()) {
      corrob::obs::RequestStart start;
      start.client_request_id = request_id;
      start.tenant = kTenants[i % 4];
      start.dataset = "flights";
      start.method = "IncEstHeu";
      start.priority = "batch";
      start.deadline_nanos = 1'000'000;
      handle = recorder->Begin(std::move(start));
    }
    if (recorder != nullptr) recorder->AddSpan(handle, "admitted");

    // The serving work every request pays even on a cache hit:
    // payload encode, id splice, checksummed frame encode.
    if (recorder != nullptr) recorder->AddSpan(handle, "run_start");
    std::string payload =
        corrob::server::EncodeCorroborateResponse(response);
    corrob::server::AttachRequestId(&payload, request_id);
    const std::string wire = corrob::server::EncodeFrame(
        {corrob::server::FrameType::kResultResponse, payload});
    sink += static_cast<int64_t>(wire.size()) +
            static_cast<unsigned char>(wire[wire.size() - 1]);
    if (recorder != nullptr) recorder->AddSpan(handle, "run_end");

    if (recorder != nullptr && handle != 0) {
      corrob::obs::RequestFinish finish;
      finish.role = i % 3 == 0 ? corrob::obs::RequestRole::kCacheHit
                               : corrob::obs::RequestRole::kCold;
      finish.termination = i % 3 == 0 ? "cached" : "converged";
      finish.service_nanos = 1'000;
      finish.response_bytes = static_cast<int64_t>(payload.size());
      sink += recorder->End(handle, finish).total_nanos;
    }
  }
  return sink;
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  const int64_t requests = flags.GetInt("requests", 200000);
  const int num_facts = static_cast<int>(flags.GetInt("facts", 100));
  const int repetitions = static_cast<int>(flags.GetInt("reps", 5));

  corrob::bench::PrintHeader(
      "Flight-recorder overhead",
      "Median wall clock of the per-request serving kernel (response "
      "encode + id splice + frame encode) with no recorder (baseline), "
      "a disarmed recorder (capacity 0; one failed branch per request) "
      "and the corrobd default (capacity 1024, 8 shards). The disarmed "
      "delta is the price every request pays for the recorder existing; "
      "the bar is <= 2%.");

  corrob::bench::BenchReport report("flight_recorder", flags);
  report.SetConfig("requests", requests);
  report.SetConfig("facts", static_cast<int64_t>(num_facts));
  report.SetConfig("reps", static_cast<int64_t>(repetitions));

  corrob::obs::FlightRecorder::Options disarmed_options;
  disarmed_options.capacity = 0;
  corrob::obs::FlightRecorder disarmed(disarmed_options);

  corrob::obs::FlightRecorder::Options armed_options;
  armed_options.capacity = 1024;
  armed_options.shards = 8;
  corrob::obs::FlightRecorder armed(armed_options);

  // Arms are interleaved round-robin within each rep so slow drift
  // (frequency scaling, allocator state) lands on every arm equally
  // instead of whichever happened to run first; one untimed pass
  // absorbs the cold start.
  int64_t sink = 0;
  corrob::obs::FlightRecorder* const arms[] = {nullptr, &disarmed, &armed};
  std::vector<double> seconds[3];
  for (corrob::obs::FlightRecorder* arm : arms) {
    sink += RunStream(arm, requests, num_facts);
  }
  for (int rep = 0; rep < repetitions; ++rep) {
    for (int a = 0; a < 3; ++a) {
      seconds[a].push_back(corrob::bench::TimeSeconds(
          [&] { sink += RunStream(arms[a], requests, num_facts); }));
    }
  }
  auto median = [](std::vector<double>& values) {
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
  };
  const double baseline = median(seconds[0]);
  const double disarmed_seconds = median(seconds[1]);
  const double armed_seconds = median(seconds[2]);

  corrob::TablePrinter table({"Arm", "Seconds (median)", "Overhead"});
  auto record = [&](const std::string& arm, double seconds) {
    const double overhead_pct =
        baseline > 0.0 ? 100.0 * (seconds / baseline - 1.0) : 0.0;
    corrob::obs::JsonValue row =
        corrob::bench::BenchReport::Row(arm, seconds);
    row.Set("overhead_pct", corrob::obs::JsonValue::Double(overhead_pct));
    report.AddRow(std::move(row));
    table.AddRow({arm, corrob::FormatDouble(seconds, 4),
                  arm == "baseline"
                      ? "-"
                      : corrob::FormatDouble(overhead_pct, 2) + "%"});
  };
  record("baseline", baseline);
  record("disarmed", disarmed_seconds);
  record("armed", armed_seconds);

  std::fputs(table.ToString().c_str(), stdout);
  if (sink == 42) std::printf("(sink)\n");  // keep the loop honest
  report.Write();
  return 0;
}
