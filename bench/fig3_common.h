#ifndef CORROB_BENCH_FIG3_COMMON_H_
#define CORROB_BENCH_FIG3_COMMON_H_

// Shared sweep driver for the three Figure 3 panels: accuracy of each
// method on §6.3.1 synthetic corpora, averaged over seeds, one row
// per swept parameter value.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/synthetic.h"

namespace corrob {
namespace bench {

inline const std::vector<std::string>& Figure3Methods() {
  static const auto* kMethods = new std::vector<std::string>{
      "Voting", "Counting", "TwoEstimate", "BayesEstimate", "IncEstHeu"};
  return *kMethods;
}

/// Runs one Figure 3 panel: for each (label, options) row, reports
/// each method's mean accuracy over `seeds` seeds. Every
/// (row, method, seed) cell is an independent generate+run+score, so
/// the grid is fanned out over a thread pool.
inline void RunFigure3Sweep(
    const std::vector<std::pair<std::string, SyntheticOptions>>& rows,
    const std::string& x_label, int seeds) {
  const auto& methods = Figure3Methods();
  const int64_t cells =
      static_cast<int64_t>(rows.size()) * methods.size() * seeds;
  std::vector<double> accuracy(static_cast<size_t>(cells), 0.0);

  ParallelFor(cells, DefaultThreadCount(), [&](int64_t cell) {
    size_t row_index = static_cast<size_t>(cell) /
                       (methods.size() * static_cast<size_t>(seeds));
    size_t within = static_cast<size_t>(cell) %
                    (methods.size() * static_cast<size_t>(seeds));
    size_t method_index = within / static_cast<size_t>(seeds);
    int seed = static_cast<int>(within % static_cast<size_t>(seeds));

    SyntheticOptions options = rows[row_index].second;
    options.seed = 40 + static_cast<uint64_t>(seed);
    SyntheticDataset data = GenerateSynthetic(options).ValueOrDie();
    auto algorithm = MakeCorroborator(methods[method_index]).ValueOrDie();
    CorroborationResult result = algorithm->Run(data.dataset).ValueOrDie();
    accuracy[static_cast<size_t>(cell)] =
        EvaluateOnTruth(result, data.truth).accuracy;
  });

  std::vector<std::string> headers{x_label};
  for (const std::string& m : methods) headers.push_back(m);
  TablePrinter table(headers);
  for (size_t r = 0; r < rows.size(); ++r) {
    std::vector<double> row;
    for (size_t m = 0; m < methods.size(); ++m) {
      double sum = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        sum += accuracy[(r * methods.size() + m) *
                            static_cast<size_t>(seeds) +
                        static_cast<size_t>(seed)];
      }
      row.push_back(sum / seeds);
    }
    table.AddRow(rows[r].first, row, 3);
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace bench
}  // namespace corrob

#endif  // CORROB_BENCH_FIG3_COMMON_H_
