// Extended baselines (beyond the paper's Table 4): TruthFinder and
// the Pasternack & Roth family, on both evaluation workloads. The
// paper's related-work claim — that these techniques also "target
// corroboration tasks with explicit uncertainty and therefore are
// ineffective" on affirmative-dominated data — is measurable here.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "synth/hubdub_sim.h"
#include "synth/restaurant_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions restaurant_options;
  restaurant_options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", 36916));

  corrob::bench::PrintHeader(
      "Extended baselines (TruthFinder, AvgLog, Invest, PooledInvest)",
      "Classic truth-discovery methods from the paper's related work "
      "on the restaurant corpus (P/R/Acc/F1 on the golden set) and on "
      "Hubdub (errors). IncEstHeu shown for reference.");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(restaurant_options).ValueOrDie();
  corrob::QuestionDataset questions =
      corrob::GenerateHubdub(corrob::HubdubSimOptions{}).ValueOrDie();
  corrob::Dataset closed = questions.WithNegativeClosure();

  corrob::TablePrinter table({"Method", "Precision", "Recall", "Accuracy",
                              "F-1", "Hubdub errors"});
  std::vector<std::string> methods = corrob::ExtendedCorroboratorNames();
  methods.push_back("IncEstHeu");
  for (const std::string& name : methods) {
    corrob::MethodReport report =
        corrob::RunCorroborationMethod(name, corpus.dataset, corpus.golden)
            .ValueOrDie();
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult hubdub_result =
        algorithm->Run(closed).ValueOrDie();
    int64_t errors = corrob::EvaluateOnTruth(hubdub_result, questions.truth())
                         .confusion.errors();
    table.AddRow({name, corrob::FormatDouble(report.metrics.precision, 2),
                  corrob::FormatDouble(report.metrics.recall, 2),
                  corrob::FormatDouble(report.metrics.accuracy, 2),
                  corrob::FormatDouble(report.metrics.f1, 2),
                  std::to_string(errors)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
