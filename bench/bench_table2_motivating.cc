// Table 2 + Figure 1: the motivating example. Reproduces the paper's
// strategy comparison and the round-by-round trust of the scripted
// incremental walkthrough.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/inc_estimate.h"
#include "core/registry.h"
#include "data/motivating_example.h"
#include "eval/metrics.h"

namespace corrob {
namespace {

void PrintFigure1Walkthrough(const MotivatingExample& example) {
  // The §2.3 three-round schedule: {r9, r12}, {r5, r6}, then the rest,
  // with the paper-exact (unsmoothed) trust update.
  IncEstimateOptions options;
  options.trust_prior_weight = 0.0;
  options.record_trajectory = true;
  IncrementalEngine engine(example.dataset, options);

  auto group_of = [&](FactId fact) -> int32_t {
    const auto& groups = engine.groups();
    for (size_t g = 0; g < groups.size(); ++g) {
      for (FactId f : groups[g].facts) {
        if (f == fact) return static_cast<int32_t>(g);
      }
    }
    return -1;
  };

  engine.CommitGroup(group_of(8), 1);   // r9
  engine.CommitGroup(group_of(11), 1);  // r12
  engine.EndRound(2);
  engine.CommitGroup(group_of(4), 1);  // r5
  engine.CommitGroup(group_of(5), 1);  // r6
  engine.EndRound(2);
  engine.EndRound(engine.CommitAllRemaining());
  CorroborationResult result = std::move(engine).Finish("Walkthrough");

  std::printf("Figure 1 trust per round (paper: {-,1,1,0,1} -> "
              "{0,1,1,0,1} -> {0.67,1,1,0.7,1}):\n");
  for (size_t point = 1; point < result.trajectory.size(); ++point) {
    std::printf("  round %zu:", point);
    for (double t : result.trajectory[point].trust) {
      std::printf(" %.2f", t);
    }
    std::printf("\n");
  }
  BinaryMetrics metrics = EvaluateOnTruth(result, example.truth);
  std::printf("Walkthrough scores: P=%.2f R=%.2f Acc=%.2f "
              "(paper: 0.78 / 1 / 0.83)\n\n",
              metrics.precision, metrics.recall, metrics.accuracy);
}

}  // namespace
}  // namespace corrob

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  corrob::bench::PrintHeader(
      "Table 2 / Figure 1 (motivating example)",
      "Strategy comparison on the 5-source / 12-restaurant example. "
      "Paper reference: TwoEstimate 0.64/1/0.67, BayesEstimate "
      "0.58/1/0.58, our strategy 0.78/1/0.83.");

  corrob::MotivatingExample example = corrob::MakeMotivatingExample();
  corrob::PrintFigure1Walkthrough(example);

  corrob::TablePrinter table(
      {"Method", "Precision", "Recall", "Accuracy"});
  for (const std::string& name : corrob::CorroboratorNames()) {
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(example.dataset).ValueOrDie();
    corrob::BinaryMetrics metrics =
        corrob::EvaluateOnTruth(result, example.truth);
    table.AddRow(name, {metrics.precision, metrics.recall,
                        metrics.accuracy});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
