// Deduplication quality: the paper's cleaning step compressed 42,969
// raw rows into 36,916 entities (§6.2.1). This bench measures the
// pipeline's compression and pairwise precision/recall against the
// crawl simulator's hidden entity identities, across similarity
// thresholds (the paper uses 0.8).

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "common/timer.h"
#include "synth/restaurant_sim.h"
#include "text/dedup.h"

namespace {

struct PairCounts {
  int64_t true_positive_pairs = 0;   // same entity, same cluster
  int64_t false_positive_pairs = 0;  // different entity, same cluster
  int64_t false_negative_pairs = 0;  // same entity, split clusters
};

// Pairwise clustering metrics computed per dedup block would miss
// cross-block splits; count over all listing pairs of each entity and
// each cluster instead (both groupings are small).
PairCounts CountPairs(const corrob::RawCrawl& crawl,
                      const corrob::DedupResult& dedup) {
  PairCounts counts;
  std::map<std::string, std::vector<size_t>> by_entity;
  for (size_t i = 0; i < crawl.listings.size(); ++i) {
    by_entity[crawl.listings[i].entity_hint].push_back(i);
  }
  for (const auto& [entity, members] : by_entity) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        if (dedup.entity_of[members[a]] == dedup.entity_of[members[b]]) {
          ++counts.true_positive_pairs;
        } else {
          ++counts.false_negative_pairs;
        }
      }
    }
  }
  for (const corrob::DedupEntity& entity : dedup.entities) {
    for (size_t a = 0; a < entity.members.size(); ++a) {
      for (size_t b = a + 1; b < entity.members.size(); ++b) {
        if (crawl.listings[entity.members[a]].entity_hint !=
            crawl.listings[entity.members[b]].entity_hint) {
          ++counts.false_positive_pairs;
        }
      }
    }
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RawCrawlOptions options;
  options.num_restaurants =
      static_cast<int32_t>(flags.GetInt("restaurants", 8000));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));

  corrob::bench::PrintHeader(
      "Dedup quality (paper §6.2.1 cleaning step)",
      "Pairwise precision/recall of the entity-resolution pipeline "
      "against the crawl simulator's hidden identities, by similarity "
      "threshold. The paper uses 0.8 and compressed 42,969 raw rows "
      "to 36,916 entities (~14%).");

  corrob::RawCrawl crawl = corrob::GenerateRawCrawl(options).ValueOrDie();
  std::printf("Raw crawl: %zu listings over %zu restaurants.\n\n",
              crawl.listings.size(), crawl.entity_keys.size());

  corrob::TablePrinter table({"Threshold", "Entities", "Compression",
                              "Pair precision", "Pair recall", "Seconds"});
  for (double threshold : {0.6, 0.7, 0.8, 0.9, 0.95}) {
    corrob::DedupOptions dedup_options;
    dedup_options.similarity_threshold = threshold;
    corrob::StopwatchNs watch;
    corrob::DedupResult dedup =
        corrob::Deduplicate(crawl.listings, dedup_options).ValueOrDie();
    double seconds = watch.ElapsedSeconds();
    PairCounts counts = CountPairs(crawl, dedup);
    double precision =
        counts.true_positive_pairs + counts.false_positive_pairs > 0
            ? static_cast<double>(counts.true_positive_pairs) /
                  static_cast<double>(counts.true_positive_pairs +
                                      counts.false_positive_pairs)
            : 0.0;
    double recall =
        counts.true_positive_pairs + counts.false_negative_pairs > 0
            ? static_cast<double>(counts.true_positive_pairs) /
                  static_cast<double>(counts.true_positive_pairs +
                                      counts.false_negative_pairs)
            : 0.0;
    table.AddRow(
        {corrob::FormatDouble(threshold, 2),
         std::to_string(dedup.entities.size()),
         corrob::FormatDouble(
             100.0 * (1.0 - static_cast<double>(dedup.entities.size()) /
                                static_cast<double>(crawl.listings.size())),
             1) + "%",
         corrob::FormatDouble(precision, 3),
         corrob::FormatDouble(recall, 3),
         corrob::FormatDouble(seconds, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
