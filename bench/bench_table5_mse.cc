// Table 5: per-source trust scores and their mean squared error
// against the golden source accuracies.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/dataset_stats.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "synth/restaurant_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", options.num_facts));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));

  corrob::bench::PrintHeader(
      "Table 5 (trust-score MSE)",
      "Computed per-source trust vs. golden accuracy. Paper MSEs: "
      "TwoEstimate 0.063, BayesEstimate 0.066, ML-Logistic 0.004, "
      "IncEstHeu 0.005.");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();
  std::vector<double> reference =
      corrob::SourceAccuracyOnGolden(corpus.dataset, corpus.golden);

  std::vector<std::string> headers{"Method"};
  for (corrob::SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
    headers.push_back(corpus.dataset.source_name(s));
  }
  headers.push_back("MSE");
  corrob::TablePrinter table(headers);

  {
    std::vector<double> row = reference;
    row.push_back(0.0);
    table.AddRow("Golden accuracy", row, 2);
    table.AddSeparator();
  }

  auto add = [&](const corrob::MethodReport& report) {
    std::vector<std::string> cells{report.name};
    for (double trust : report.source_trust) {
      cells.push_back(corrob::FormatDouble(trust, 2));
    }
    cells.push_back(corrob::FormatDouble(
        corrob::TrustMse(reference, report.source_trust), 3));
    table.AddRow(std::move(cells));
  };

  for (const std::string& name :
       {std::string("TwoEstimate"), std::string("BayesEstimate")}) {
    add(corrob::RunCorroborationMethod(name, corpus.dataset, corpus.golden)
            .ValueOrDie());
  }
  add(corrob::RunMlMethod("ML-Logistic", corpus.dataset, corpus.golden)
          .ValueOrDie());
  add(corrob::RunCorroborationMethod("IncEstHeu", corpus.dataset,
                                     corpus.golden)
          .ValueOrDie());

  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nPaper IncEstHeu trust reference: "
              "0.51 / 0.70 / 0.90 / 0.93 / 0.51 / 0.89 (MSE 0.005)\n");
  return 0;
}
