// Table 3: source coverage, pairwise overlap, and golden accuracy of
// the simulated restaurant crawl, against the published values.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "data/dataset_stats.h"
#include "synth/restaurant_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", options.num_facts));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));

  corrob::bench::PrintHeader(
      "Table 3 (source coverage / overlap / accuracy)",
      "Marginals of the simulated crawl vs. the paper's published "
      "values (simulation targets in parentheses).");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();
  corrob::SourceStats stats = corrob::ComputeSourceStats(corpus.dataset);
  std::vector<double> accuracy =
      corrob::SourceAccuracyOnGolden(corpus.dataset, corpus.golden);
  std::vector<int64_t> f_votes =
      corrob::CountFalseVotesBySource(corpus.dataset);

  std::printf("Corpus: %d listings, %lld votes, %lld listings with F "
              "votes (paper: 36,916 listings, 654 with F votes), "
              "golden %zu (%d true / %d false).\n\n",
              corpus.dataset.num_facts(),
              static_cast<long long>(corpus.dataset.num_votes()),
              static_cast<long long>(
                  corrob::CountFactsWithFalseVotes(corpus.dataset)),
              corpus.golden.size(), corpus.golden.CountTrue(),
              corpus.golden.CountFalse());

  corrob::TablePrinter per_source(
      {"Source", "Coverage (target)", "Golden accuracy (target)",
       "F votes (target)"});
  for (corrob::SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
    const corrob::RestaurantSourceSpec& spec =
        options.sources[static_cast<size_t>(s)];
    per_source.AddRow(
        {corpus.dataset.source_name(s),
         corrob::FormatDouble(stats.coverage[s], 2) + " (" +
             corrob::FormatDouble(spec.coverage, 2) + ")",
         corrob::FormatDouble(accuracy[s], 2) + " (" +
             corrob::FormatDouble(spec.accuracy, 2) + ")",
         std::to_string(f_votes[s]) + " (" +
             std::to_string(spec.f_votes) + ")"});
  }
  std::fputs(per_source.ToString().c_str(), stdout);

  std::printf("\nPairwise source overlap (Jaccard):\n");
  std::vector<std::string> headers{"Overlap"};
  for (corrob::SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
    headers.push_back(corpus.dataset.source_name(s));
  }
  corrob::TablePrinter overlap(headers);
  for (corrob::SourceId a = 0; a < corpus.dataset.num_sources(); ++a) {
    std::vector<double> row;
    for (corrob::SourceId b = 0; b < corpus.dataset.num_sources(); ++b) {
      row.push_back(stats.overlap[a][b]);
    }
    overlap.AddRow(corpus.dataset.source_name(a), row, 2);
  }
  std::fputs(overlap.ToString().c_str(), stdout);
  std::printf("\nPaper overlap reference (YellowPages row): "
              "1 / 0.22 / 0.18 / 0.04 / 0.43 / 0.26\n");
  return 0;
}
