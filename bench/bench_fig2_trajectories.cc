// Figure 2: multi-value trust trajectories of IncEstPS and IncEstHeu
// on the restaurant corpus. Emits one sampled table per strategy
// (time point vs. per-source trust), the series the paper plots.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/inc_estimate.h"
#include "eval/report_io.h"
#include "synth/restaurant_sim.h"

namespace {

void PrintTrajectory(const corrob::Dataset& dataset,
                     const corrob::CorroborationResult& result,
                     int max_rows) {
  std::vector<std::string> headers{"t", "committed"};
  for (corrob::SourceId s = 0; s < dataset.num_sources(); ++s) {
    headers.push_back(dataset.source_name(s));
  }
  corrob::TablePrinter table(headers);
  size_t points = result.trajectory.size();
  size_t stride = points <= static_cast<size_t>(max_rows)
                      ? 1
                      : points / static_cast<size_t>(max_rows);
  for (size_t i = 0; i < points; i += stride) {
    const corrob::TrajectoryPoint& point = result.trajectory[i];
    std::vector<std::string> row{
        std::to_string(i), std::to_string(point.facts_committed)};
    for (double trust : point.trust) {
      row.push_back(corrob::FormatDouble(trust, 3));
    }
    table.AddRow(std::move(row));
  }
  if ((points - 1) % stride != 0) {
    const corrob::TrajectoryPoint& last = result.trajectory.back();
    std::vector<std::string> row{std::to_string(points - 1),
                                 std::to_string(last.facts_committed)};
    for (double trust : last.trust) {
      row.push_back(corrob::FormatDouble(trust, 3));
    }
    table.AddRow(std::move(row));
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", options.num_facts));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));
  const int max_rows = static_cast<int>(flags.GetInt("rows", 20));

  corrob::bench::PrintHeader(
      "Figure 2 (multi-value trust per time point)",
      "Paper shape: under IncEstPS every source stays at trust ~1 "
      "until the F-vote facts are reached at the very end; under "
      "IncEstHeu YellowPages and CitySearch dip below 0.5 mid-run and "
      "converge near their golden accuracies (~0.5-0.6).");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();

  for (corrob::IncSelectStrategy strategy :
       {corrob::IncSelectStrategy::kProbability,
        corrob::IncSelectStrategy::kHeuristic}) {
    corrob::IncEstimateOptions inc_options;
    inc_options.strategy = strategy;
    inc_options.record_trajectory = true;
    corrob::IncEstimateCorroborator algorithm(inc_options);
    corrob::CorroborationResult result =
        algorithm.Run(corpus.dataset).ValueOrDie();
    std::printf("\n(%s) %s — %d time points:\n",
                strategy == corrob::IncSelectStrategy::kProbability
                    ? "a"
                    : "b",
                std::string(algorithm.name()).c_str(), result.iterations);
    PrintTrajectory(corpus.dataset, result, max_rows);
    // Full-resolution series for plotting, e.g. --output /tmp/fig2
    // writes /tmp/fig2_IncEstPS.csv and /tmp/fig2_IncEstHeu.csv.
    std::string output = flags.GetString("output", "");
    if (!output.empty()) {
      std::string path =
          output + "_" + std::string(algorithm.name()) + ".csv";
      corrob::Status status =
          corrob::SaveTrajectoryCsv(path, corpus.dataset, result);
      if (status.ok()) {
        std::printf("(full series written to %s)\n", path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                     status.ToString().c_str());
      }
    }
  }
  return 0;
}
