// Table 6: wall-clock cost of every algorithm on the restaurant
// corpus. Absolute numbers depend on hardware; the paper's ordering
// (baselines < fixpoint < incremental << Gibbs) is the target shape.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "eval/runner.h"
#include "synth/restaurant_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", options.num_facts));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));
  const int repetitions = static_cast<int>(flags.GetInt("reps", 3));
  corrob::CorroboratorOptions shared;
  shared.num_threads = static_cast<int>(flags.GetInt("threads", 1));

  corrob::bench::PrintHeader(
      "Table 6 (time cost)",
      "Median-of-reps wall clock on the 36,916-listing corpus. Paper "
      "(2012 hardware): Voting 0.60s, Counting 0.61s, BayesEstimate "
      "7.38s, TwoEstimate 0.69s, ML-SMO 0.99s, ML-Logistic 0.91s, "
      "IncEstPS 1.13s, IncEstHeu 1.15s. --threads N parallelizes the "
      "iterative methods' sweeps (results are bit-identical).");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();

  corrob::bench::BenchReport report_json("table6", flags);
  report_json.SetConfig("facts", static_cast<int64_t>(options.num_facts));
  report_json.SetConfig("seed", static_cast<int64_t>(options.seed));
  report_json.SetConfig("reps", static_cast<int64_t>(repetitions));
  report_json.SetConfig("threads",
                        static_cast<int64_t>(shared.num_threads));
  report_json.SetConfig("dataset", std::string("restaurant"));

  corrob::TablePrinter table({"Method", "Seconds (median)", "Paper (s)"});
  auto time_method = [&](const std::string& name, bool ml,
                         const std::string& paper) {
    std::vector<double> seconds;
    for (int rep = 0; rep < repetitions; ++rep) {
      corrob::MethodReport report =
          ml ? corrob::RunMlMethod(name, corpus.dataset, corpus.golden)
                   .ValueOrDie()
             : corrob::RunCorroborationMethod(name, corpus.dataset,
                                              corpus.golden, shared)
                   .ValueOrDie();
      seconds.push_back(report.seconds);
    }
    std::sort(seconds.begin(), seconds.end());
    const double median = seconds[seconds.size() / 2];
    corrob::obs::JsonValue row = corrob::bench::BenchReport::Row(name, median);
    row.Set("paper_seconds_2012",
            corrob::obs::JsonValue::Str(paper));
    report_json.AddRow(std::move(row));
    table.AddRow({name, corrob::FormatDouble(median, 3), paper});
  };

  time_method("Voting", false, "0.60");
  time_method("Counting", false, "0.61");
  time_method("BayesEstimate", false, "7.38");
  time_method("TwoEstimate", false, "0.69");
  time_method("ML-SVM", true, "0.99");
  time_method("ML-Logistic", true, "0.91");
  time_method("IncEstPS", false, "1.13");
  time_method("IncEstHeu", false, "1.15");

  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nNote: the ML rows train and predict on the golden set "
              "only, matching the paper's protocol.\n");
  report_json.Write();
  return 0;
}
