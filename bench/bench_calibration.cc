// Calibration: the paper treats σ(f) as the probability that a fact
// is true (§3.2) and feeds its entropy into fact selection. This
// bench asks how probability-like each method's σ(f) actually is on
// the restaurant golden set (expected calibration error and Brier
// score; lower is better).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/registry.h"
#include "eval/calibration.h"
#include "synth/restaurant_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", options.num_facts));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));

  corrob::bench::PrintHeader(
      "Calibration of sigma(f) (restaurant golden set)",
      "ECE = expected calibration error over 10 bins; Brier = mean "
      "squared error against the 0/1 truth. The rounding fixpoints "
      "emit hard 0/1 scores (maximal overconfidence); IncEstimate and "
      "BayesEstimate emit graded scores.");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();

  corrob::TablePrinter table({"Method", "ECE", "Brier", "Graded facts"});
  for (const std::string& name :
       {std::string("Voting"), std::string("TwoEstimate"),
        std::string("BayesEstimate"), std::string("TruthFinder"),
        std::string("IncEstPS"), std::string("IncEstHeu")}) {
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(corpus.dataset).ValueOrDie();
    corrob::CalibrationReport report =
        corrob::CalibrationOnGolden(result, corpus.golden, 10).ValueOrDie();
    // How many golden facts carry a score strictly between 0 and 1.
    int64_t graded = 0;
    for (size_t i = 0; i < corpus.golden.size(); ++i) {
      double p = result.fact_probability[static_cast<size_t>(
          corpus.golden.fact(i))];
      if (p > 0.0 && p < 1.0) ++graded;
    }
    table.AddRow({name,
                  corrob::FormatDouble(report.expected_calibration_error, 3),
                  corrob::FormatDouble(report.brier_score, 3),
                  std::to_string(graded) + " / " +
                      std::to_string(corpus.golden.size())});
  }
  std::fputs(table.ToString().c_str(), stdout);

  // Reliability diagram of the most graded method.
  auto algorithm = corrob::MakeCorroborator("IncEstHeu").ValueOrDie();
  corrob::CorroborationResult result =
      algorithm->Run(corpus.dataset).ValueOrDie();
  corrob::CalibrationReport report =
      corrob::CalibrationOnGolden(result, corpus.golden, 10).ValueOrDie();
  std::printf("\nIncEstHeu reliability diagram:\n");
  corrob::TablePrinter diagram(
      {"Bin", "Count", "Mean sigma", "Fraction true"});
  for (const corrob::CalibrationBin& bin : report.bins) {
    if (bin.count == 0) continue;
    diagram.AddRow({corrob::FormatDouble(bin.lower, 1) + "-" +
                        corrob::FormatDouble(bin.upper, 1),
                    std::to_string(bin.count),
                    corrob::FormatDouble(bin.mean_predicted, 2),
                    corrob::FormatDouble(bin.fraction_true, 2)});
  }
  std::fputs(diagram.ToString().c_str(), stdout);
  return 0;
}
