// Table 4: precision / recall / accuracy / F-1 of every method on the
// (simulated) restaurant corpus, plus the paper's published values
// and paired significance tests for the headline comparisons.

#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"
#include "core/counting.h"
#include "eval/bootstrap.h"
#include "eval/runner.h"
#include "eval/significance.h"
#include "ml/features.h"
#include "ml/logistic_regression.h"
#include "synth/restaurant_sim.h"

namespace {

// Paper Table 4, for side-by-side reference.
const std::map<std::string, std::string>& PaperReference() {
  static const auto* kReference = new std::map<std::string, std::string>{
      {"Voting", "0.65 / 1.00 / 0.66 / 0.79"},
      {"Counting", "0.94 / 0.65 / 0.76 / 0.77"},
      {"BayesEstimate", "0.63 / 1.00 / 0.67 / 0.77"},
      {"TwoEstimate", "0.65 / 1.00 / 0.66 / 0.79"},
      {"ML-SVM", "0.98 / 0.74 / 0.77 / 0.84"},
      {"ML-Logistic", "0.86 / 0.85 / 0.82 / 0.82"},
      {"IncEstPS", "0.66 / 1.00 / 0.68 / 0.79"},
      {"IncEstHeu", "0.86 / 0.86 / 0.83 / 0.86"},
  };
  return *kReference;
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::RestaurantSimOptions options;
  options.num_facts =
      static_cast<int32_t>(flags.GetInt("facts", options.num_facts));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));

  corrob::bench::PrintHeader(
      "Table 4 (corroboration quality, restaurant corpus)",
      "All methods on the simulated crawl, scored on the 601-listing "
      "golden set. Counting uses an absolute threshold of 3 T votes "
      "(see EXPERIMENTS.md for why the literal majority rule cannot "
      "reproduce the published recall).");

  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(options).ValueOrDie();

  corrob::TablePrinter table({"Method", "Precision", "Recall", "Accuracy",
                              "F-1", "Paper (P/R/Acc/F1)"});
  std::map<std::string, corrob::MethodReport> reports;

  auto add = [&](const corrob::MethodReport& report) {
    reports[report.name] = report;
    auto reference = PaperReference().find(report.name);
    table.AddRow({report.name,
                  corrob::FormatDouble(report.metrics.precision, 2),
                  corrob::FormatDouble(report.metrics.recall, 2),
                  corrob::FormatDouble(report.metrics.accuracy, 2),
                  corrob::FormatDouble(report.metrics.f1, 2),
                  reference == PaperReference().end() ? ""
                                                      : reference->second});
  };

  add(corrob::RunCorroborationMethod("Voting", corpus.dataset, corpus.golden)
          .ValueOrDie());
  {
    // Counting with the absolute 3-vote threshold (see header note).
    corrob::CountingOptions counting_options;
    counting_options.min_true_votes = 3;
    corrob::CountingCorroborator counting(counting_options);
    corrob::CorroborationResult result =
        counting.Run(corpus.dataset).ValueOrDie();
    corrob::MethodReport report;
    report.name = "Counting";
    report.metrics = corrob::EvaluateOnGolden(result, corpus.golden);
    report.source_trust = result.source_trust;
    std::vector<bool> predicted(corpus.golden.size());
    report.golden_correct.resize(corpus.golden.size());
    for (size_t i = 0; i < corpus.golden.size(); ++i) {
      predicted[i] = result.Decide(corpus.golden.fact(i));
      report.golden_correct[i] = predicted[i] == corpus.golden.label(i);
    }
    add(report);
  }
  for (const std::string& name :
       {std::string("BayesEstimate"), std::string("TwoEstimate")}) {
    add(corrob::RunCorroborationMethod(name, corpus.dataset, corpus.golden)
            .ValueOrDie());
  }
  for (const std::string& name :
       {std::string("ML-SVM"), std::string("ML-Logistic")}) {
    add(corrob::RunMlMethod(name, corpus.dataset, corpus.golden)
            .ValueOrDie());
  }
  for (const std::string& name :
       {std::string("IncEstPS"), std::string("IncEstHeu")}) {
    add(corrob::RunCorroborationMethod(name, corpus.dataset, corpus.golden)
            .ValueOrDie());
  }
  std::fputs(table.ToString().c_str(), stdout);

  // Significance of the headline gaps (paper: p < 0.001 vs. baseline
  // and existing corroboration techniques).
  std::printf("\nMcNemar p-values for IncEstHeu vs:\n");
  for (const std::string& other :
       {std::string("Voting"), std::string("TwoEstimate"),
        std::string("BayesEstimate"), std::string("ML-Logistic")}) {
    double p = corrob::McNemarPValue(reports["IncEstHeu"].golden_correct,
                                     reports[other].golden_correct)
                   .ValueOrDie();
    std::printf("  %-14s p = %.2e\n", other.c_str(), p);
  }

  // Bootstrap confidence for the headline accuracy gap.
  {
    corrob::BootstrapInterval gap =
        corrob::BootstrapPairedDifference(
            reports["IncEstHeu"].golden_correct,
            reports["TwoEstimate"].golden_correct)
            .ValueOrDie();
    std::printf("\nIncEstHeu - TwoEstimate accuracy gap: %+.3f "
                "(95%% CI [%+.3f, %+.3f])\n",
                gap.point, gap.lower, gap.upper);
  }

  // The paper's feature observation: "the most discriminating
  // features are the F votes from the 3 sources". With the signed
  // encoding an F vote contributes -1, so the discriminating sources
  // carry large positive logistic weights.
  corrob::MlDataset ml_data = corrob::ExtractGoldenFeatures(
      corpus.dataset, corpus.golden, corrob::VoteEncoding::kSigned);
  corrob::LogisticRegression logistic;
  if (logistic.Fit(ml_data.features, ml_data.labels).ok()) {
    std::printf("\nML-Logistic per-source weights (signed encoding; the "
                "F-casting sources dominate):\n");
    for (corrob::SourceId s = 0; s < corpus.dataset.num_sources(); ++s) {
      std::printf("  %-12s %+.2f\n",
                  corpus.dataset.source_name(s).c_str(),
                  logistic.weights()[static_cast<size_t>(s)]);
    }
  }
  return 0;
}
