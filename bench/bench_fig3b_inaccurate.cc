// Figure 3(b): accuracy vs. number of inaccurate sources with the
// total fixed at 10.

#include "fig3_common.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::SyntheticOptions base;
  base.num_facts = static_cast<int32_t>(flags.GetInt("facts", 20000));
  base.num_sources = static_cast<int32_t>(flags.GetInt("sources", 10));
  base.eta = flags.GetDouble("eta", 0.02);
  const int seeds = static_cast<int>(flags.GetInt("seeds", 2));

  corrob::bench::PrintHeader(
      "Figure 3(b): accuracy vs. number of inaccurate sources",
      "10 sources total. Paper shape: IncEstHeu leads by as much as "
      "37% and decays to the baseline level once nearly every source "
      "is inaccurate (there are then no F votes to learn from).");

  std::vector<std::pair<std::string, corrob::SyntheticOptions>> rows;
  for (int bad = 0; bad <= base.num_sources; bad += 1) {
    corrob::SyntheticOptions options = base;
    options.num_inaccurate = bad;
    rows.emplace_back(std::to_string(bad), options);
  }
  corrob::bench::RunFigure3Sweep(rows, "Inaccurate", seeds);
  return 0;
}
