// Google-benchmark micro-kernels for the hot paths: grouping, Eq. 5
// scoring, ΔH evaluation, fixpoint iterations, Gibbs sweeps, and the
// dedup text kernels.

#include <benchmark/benchmark.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "core/bayes_estimate.h"
#include "core/run_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/fact_group.h"
#include "core/inc_estimate.h"
#include "core/online.h"
#include "core/three_estimate.h"
#include "core/truth_finder.h"
#include "core/two_estimate.h"
#include "core/vote_matrix.h"
#include "core/voting.h"
#include "synth/restaurant_sim.h"
#include "synth/rumor_sim.h"
#include "synth/synthetic.h"
#include "text/address.h"
#include "text/phonetic.h"
#include "text/similarity.h"

namespace corrob {
namespace {

const SyntheticDataset& SharedSynthetic(int64_t facts) {
  static auto* cache = new std::map<int64_t, SyntheticDataset>();
  auto it = cache->find(facts);
  if (it == cache->end()) {
    SyntheticOptions options;
    options.num_facts = static_cast<int32_t>(facts);
    options.num_sources = 10;
    options.num_inaccurate = 2;
    options.eta = 0.02;
    options.seed = 77;
    it = cache->emplace(facts, GenerateSynthetic(options).ValueOrDie())
             .first;
  }
  return it->second;
}

void BM_BuildFactGroups(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildFactGroups(data.dataset));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildFactGroups)->Arg(1000)->Arg(10000)->Arg(36916);

void BM_CorrobScore(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(10000);
  std::vector<double> trust(10, 0.9);
  FactId f = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CorrobScore(data.dataset.VotesOnFact(f), trust));
    f = (f + 1) % data.dataset.num_facts();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CorrobScore);

void BM_EntropyDelta(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(state.range(0));
  IncrementalEngine engine(data.dataset, IncEstimateOptions{});
  int32_t g = 0;
  int32_t num_groups = static_cast<int32_t>(engine.groups().size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.EntropyDelta(g));
    g = (g + 1) % num_groups;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntropyDelta)->Arg(1000)->Arg(10000);

void BM_VotingFull(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(state.range(0));
  VotingCorroborator voting;
  for (auto _ : state) {
    benchmark::DoNotOptimize(voting.Run(data.dataset).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VotingFull)->Arg(10000)->Arg(36916);

void BM_TwoEstimateFull(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(state.range(0));
  TwoEstimateCorroborator two_estimate;
  for (auto _ : state) {
    benchmark::DoNotOptimize(two_estimate.Run(data.dataset).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TwoEstimateFull)->Arg(10000)->Arg(36916);

// Per-iteration cost of the execution-budget machinery on the
// TwoEstimate sweep kernel (the acceptance bar is <= 2% for the
// disarmed arm; see bench_budget_overhead for the recorded number):
//   /0 unbounded — RunContext::Unbounded(), byte-for-byte the legacy
//        code path (null sweep stop, no snapshots);
//   /1 cancel-armed — a live CancellationToken that never fires:
//        per-iteration snapshot plus relaxed-atomic polls at chunk
//        boundaries;
//   /2 deadline-armed — a far-future deadline: arm /1 plus a
//        monotonic clock read per boundary poll.
void BM_TwoEstimateBudgetChecks(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(100000);
  TwoEstimateCorroborator two_estimate;
  CancellationToken token;
  RunContext context;
  if (state.range(0) == 1) {
    context.WithCancellation(&token);
  } else if (state.range(0) == 2) {
    context.WithDeadline(
        Deadline::AfterMs(obs::MonotonicClock::Get(), 1e9));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        two_estimate.Run(data.dataset, context).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TwoEstimateBudgetChecks)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Thread-scaling sweep for the parallel vote-matrix sweeps: same
// 100k-statement synthetic corpus at 1/2/4/8 worker threads. Results
// are bit-identical across rows (see the parity suite); only time
// should move. On a multicore host 4 threads should cut TwoEstimate
// wall time by >= 2x; a single-core host shows flat-to-slightly-worse
// timings (pool dispatch overhead with no parallel hardware).
void BM_TwoEstimateScaling(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(100000);
  TwoEstimateOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  TwoEstimateCorroborator two_estimate(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(two_estimate.Run(data.dataset).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TwoEstimateScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ThreeEstimateScaling(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(100000);
  ThreeEstimateOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  ThreeEstimateCorroborator three_estimate(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(three_estimate.Run(data.dataset).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ThreeEstimateScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TruthFinderScaling(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(100000);
  TruthFinderOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  TruthFinderCorroborator truth_finder(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(truth_finder.Run(data.dataset).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TruthFinderScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_VoteMatrixBuild(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(VoteMatrix(data.dataset));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VoteMatrixBuild)->Arg(10000)->Arg(100000);

void BM_IncEstHeuFull(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(state.range(0));
  IncEstimateCorroborator inc_est;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inc_est.Run(data.dataset).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncEstHeuFull)->Arg(1000)->Arg(10000);

void BM_BayesGibbsSweeps(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(5000);
  BayesEstimateOptions options;
  options.iterations = 20;
  options.burn_in = 5;
  BayesEstimateCorroborator bayes(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bayes.Run(data.dataset).ValueOrDie());
  }
  // 20 sweeps over 5000 facts per run.
  state.SetItemsProcessed(state.iterations() * 20 * 5000);
}
BENCHMARK(BM_BayesGibbsSweeps);

void BM_OnlineObserve(benchmark::State& state) {
  const SyntheticDataset& data = SharedSynthetic(10000);
  OnlineCorroborator online;
  for (SourceId s = 0; s < data.dataset.num_sources(); ++s) {
    online.AddSource(data.dataset.source_name(s));
  }
  FactId f = 0;
  std::vector<SourceVote> votes;
  for (auto _ : state) {
    auto span = data.dataset.VotesOnFact(f);
    votes.assign(span.begin(), span.end());
    benchmark::DoNotOptimize(online.Observe(votes));
    f = (f + 1) % data.dataset.num_facts();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineObserve);

Status GuardedObserve(OnlineCorroborator& online,
                      const std::vector<SourceVote>& votes) {
  CORROB_FAILPOINT("bench.observe");
  return online.Observe(votes).status();
}

void BM_OnlineObserveThroughDisarmedFailpoint(benchmark::State& state) {
  // Same kernel as BM_OnlineObserve but every observation crosses a
  // failpoint site. With nothing armed this must match the plain
  // benchmark: the disarmed check is one relaxed atomic load.
  const SyntheticDataset& data = SharedSynthetic(10000);
  OnlineCorroborator online;
  for (SourceId s = 0; s < data.dataset.num_sources(); ++s) {
    online.AddSource(data.dataset.source_name(s));
  }
  FactId f = 0;
  std::vector<SourceVote> votes;
  for (auto _ : state) {
    auto span = data.dataset.VotesOnFact(f);
    votes.assign(span.begin(), span.end());
    benchmark::DoNotOptimize(GuardedObserve(online, votes));
    f = (f + 1) % data.dataset.num_facts();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineObserveThroughDisarmedFailpoint);

// Observability overhead kernels. The instrumented hot paths cross
// these primitives on every call, so their disabled cost must stay in
// the noise: a span with tracing off is one relaxed atomic load, a
// sharded counter add is one relaxed fetch_add on a thread-local
// cache line. Compare BM_TwoEstimateFull before/after a tracing
// change for the end-to-end version of the same claim.
void BM_TraceSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    CORROB_TRACE_SPAN("bench.overhead.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_MetricsCounterAdd(benchmark::State& state) {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "bench.overhead.counter");
  for (auto _ : state) {
    counter->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "bench.overhead.histogram");
  int64_t value = 0;
  for (auto _ : state) {
    histogram->Record(value++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_GenerateRumors(benchmark::State& state) {
  for (auto _ : state) {
    RumorSimOptions options;
    options.num_rumors = static_cast<int32_t>(state.range(0));
    benchmark::DoNotOptimize(GenerateRumors(options).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateRumors)->Arg(1000)->Arg(5000);

void BM_Soundex(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Soundex("Grandiose"));
    benchmark::DoNotOptimize(Soundex("Pallace"));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_Soundex);

void BM_NormalizeAddress(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NormalizeAddress("346 West 46th Street, Suite 4B, New York"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NormalizeAddress);

void BM_ListingSimilarity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ListingSimilarity("Danny's Grand Sea Palace 346 W 46 St",
                          "dannys grand sea palace 346 west 46 street"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ListingSimilarity);

}  // namespace
}  // namespace corrob

BENCHMARK_MAIN();
