// Figure 3(a): accuracy vs. total number of sources with the number
// of inaccurate sources fixed at 2.

#include "fig3_common.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::SyntheticOptions base;
  base.num_facts = static_cast<int32_t>(flags.GetInt("facts", 20000));
  base.num_inaccurate = 2;
  base.eta = flags.GetDouble("eta", 0.02);
  const int seeds = static_cast<int>(flags.GetInt("seeds", 2));

  corrob::bench::PrintHeader(
      "Figure 3(a): accuracy vs. number of sources",
      "2 inaccurate sources throughout. Paper shape: IncEstHeu "
      "improves as accurate sources are added while every other "
      "method stays flat.");

  std::vector<std::pair<std::string, corrob::SyntheticOptions>> rows;
  for (int total = 3; total <= 11; ++total) {
    corrob::SyntheticOptions options = base;
    options.num_sources = total;
    rows.emplace_back(std::to_string(total), options);
  }
  corrob::bench::RunFigure3Sweep(rows, "Sources", seeds);
  return 0;
}
