#ifndef CORROB_BENCH_BENCH_COMMON_H_
#define CORROB_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-table/figure benchmark binaries. Every
// binary runs stand-alone with defaults matching the paper's setup
// and accepts --facts/--seed/--seeds style flags for quick runs.
// Binaries that report timings also write a machine-readable
// BENCH_<name>.json sidecar (see BenchReport) so the perf trajectory
// accumulates run over run instead of evaporating with the terminal.

#include <cstdio>
#include <string>
#include <utility>

#include "common/csv.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace corrob {
namespace bench {

inline FlagParser ParseFlags(int argc, char** argv) {
  return FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
}

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n\n", experiment, description);
}

/// Machine-readable sidecar for a benchmark binary. Collect config and
/// per-measurement rows while the human table prints, then Write()
/// emits `BENCH_<name>.json` in the working directory (`--json <path>`
/// overrides; `--json none` disables). The file carries a process
/// metrics snapshot alongside the rows, so counter-level context
/// (sweeps run, chunks dispatched) travels with the timings.
///
/// Schema "corrob.bench/1", validated by tools/obs/validate_trace.py:
///   {"schema": "corrob.bench/1", "bench": "<name>",
///    "config": {...}, "rows": [{"method": ..., "seconds": ...}, ...],
///    "metrics": {<MetricsSnapshot::ToJson()>}}
class BenchReport {
 public:
  BenchReport(const std::string& name, const FlagParser& flags)
      : path_(flags.GetString("json", "BENCH_" + name + ".json")),
        root_(obs::JsonValue::Object()),
        config_(obs::JsonValue::Object()),
        rows_(obs::JsonValue::Array()) {
    root_.Set("schema", obs::JsonValue::Str("corrob.bench/1"));
    root_.Set("bench", obs::JsonValue::Str(name));
  }

  void SetConfig(const std::string& key, int64_t value) {
    config_.Set(key, obs::JsonValue::Int(value));
  }
  void SetConfig(const std::string& key, double value) {
    config_.Set(key, obs::JsonValue::Double(value));
  }
  void SetConfig(const std::string& key, const std::string& value) {
    config_.Set(key, obs::JsonValue::Str(value));
  }

  /// Starts a row; chain Set calls on the returned object, then
  /// AddRow it.
  static obs::JsonValue Row(const std::string& method, double seconds) {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("method", obs::JsonValue::Str(method));
    row.Set("seconds", obs::JsonValue::Double(seconds));
    return row;
  }

  void AddRow(obs::JsonValue row) { rows_.Append(std::move(row)); }

  /// Writes the report. A write failure warns on stderr but never
  /// fails the benchmark run — the human table already printed.
  void Write() {
    if (path_.empty() || path_ == "none") return;
    root_.Set("config", std::move(config_));
    root_.Set("rows", std::move(rows_));
    root_.Set("metrics",
              obs::MetricsRegistry::Global().Snapshot().ToJson());
    Status status = WriteStringToFile(path_, root_.Dump(2) + "\n");
    if (status.ok()) {
      std::printf("\nwrote %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "bench: cannot write %s: %s\n", path_.c_str(),
                   status.ToString().c_str());
    }
  }

 private:
  std::string path_;
  obs::JsonValue root_;
  obs::JsonValue config_;
  obs::JsonValue rows_;
};

/// Times one call of `fn` in seconds on the monotonic clock.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  StopwatchNs watch;
  std::forward<Fn>(fn)();
  watch.Pause();
  return watch.ElapsedSeconds();
}

}  // namespace bench
}  // namespace corrob

#endif  // CORROB_BENCH_BENCH_COMMON_H_
