#ifndef CORROB_BENCH_BENCH_COMMON_H_
#define CORROB_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-table/figure benchmark binaries. Every
// binary runs stand-alone with defaults matching the paper's setup
// and accepts --facts/--seed/--seeds style flags for quick runs.

#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace corrob {
namespace bench {

inline FlagParser ParseFlags(int argc, char** argv) {
  return FlagParser::Parse(argc - 1, argv + 1).ValueOrDie();
}

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n\n", experiment, description);
}

}  // namespace bench
}  // namespace corrob

#endif  // CORROB_BENCH_BENCH_COMMON_H_
