// Append throughput of the vote-delta WAL (data/wal.h) at each fsync
// policy, recorded as BENCH_wal.json (schema corrob.wal_bench/1, not
// the shared corrob.bench/1 — rows here are records/s per policy, not
// method timings). The three arms bound the durability/throughput
// trade an operator picks with corrobd --wal-fsync:
//   always    one fsync per record: the ack-means-durable ceiling
//   interval  one fsync per --fsync-interval records
//   never     OS page cache only; a crash loses the unsynced tail
// The "always" arm appends fewer records by default — at one fsync
// per record, disks do hundreds to low thousands per second, and the
// point is the ratio, not a long wait.

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/wal.h"

namespace {

/// Removes every file in `dir` and the directory itself so each arm
/// starts on a fresh log.
void RemoveWalDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> names;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(handle);
  for (const std::string& name : names) {
    ::unlink((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

/// Appends `records` synthetic vote deltas and returns the elapsed
/// seconds, or a negative value on error.
double RunArm(const std::string& dir, corrob::WalFsyncPolicy policy,
              int64_t interval, int64_t records) {
  RemoveWalDir(dir);
  corrob::WalOptions options;
  options.fsync_policy = policy;
  options.fsync_interval_records = interval;
  corrob::Result<corrob::WalWriter> writer =
      corrob::WalWriter::Open(dir, options);
  if (!writer.ok()) {
    std::fprintf(stderr, "bench_wal_append: %s\n",
                 writer.status().ToString().c_str());
    return -1.0;
  }
  const double seconds = corrob::bench::TimeSeconds([&] {
    for (int64_t i = 0; i < records; ++i) {
      const corrob::Status appended = writer.ValueOrDie().Append(
          corrob::MakeAddVote("source-" + std::to_string(i % 64),
                              "fact-" + std::to_string(i % 1024),
                              i % 5 == 0 ? corrob::Vote::kFalse
                                         : corrob::Vote::kTrue));
      if (!appended.ok()) {
        std::fprintf(stderr, "bench_wal_append: %s\n",
                     appended.ToString().c_str());
      }
    }
  });
  RemoveWalDir(dir);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  const int64_t records = flags.GetInt("records", 100000);
  // One fsync per record runs orders of magnitude slower; a smaller
  // default keeps the arm honest without a minute-long wait.
  const int64_t always_records =
      flags.GetInt("always-records", records / 100 > 0 ? records / 100 : 1);
  const int64_t interval = flags.GetInt("fsync-interval", 64);
  const std::string dir =
      flags.GetString("dir", "/tmp/corrob_bench_wal_append");
  const std::string json_path = flags.GetString("json", "BENCH_wal.json");

  corrob::bench::PrintHeader(
      "WAL append throughput",
      "Records per second appended to the vote-delta WAL at each fsync "
      "policy (corrobd --wal-fsync). 'always' is the ack-means-durable "
      "ceiling; 'never' is the page-cache upper bound.");

  corrob::obs::JsonValue root = corrob::obs::JsonValue::Object();
  root.Set("schema", corrob::obs::JsonValue::Str("corrob.wal_bench/1"));
  root.Set("bench", corrob::obs::JsonValue::Str("wal_append"));
  corrob::obs::JsonValue config = corrob::obs::JsonValue::Object();
  config.Set("records", corrob::obs::JsonValue::Int(records));
  config.Set("always_records", corrob::obs::JsonValue::Int(always_records));
  config.Set("fsync_interval", corrob::obs::JsonValue::Int(interval));
  root.Set("config", std::move(config));
  corrob::obs::JsonValue rows = corrob::obs::JsonValue::Array();

  corrob::TablePrinter table({"Policy", "Records", "Seconds", "Records/s"});
  const struct {
    corrob::WalFsyncPolicy policy;
    int64_t records;
  } arms[] = {
      {corrob::WalFsyncPolicy::kAlways, always_records},
      {corrob::WalFsyncPolicy::kInterval, records},
      {corrob::WalFsyncPolicy::kNever, records},
  };
  bool ok = true;
  for (const auto& arm : arms) {
    const std::string name(corrob::WalFsyncPolicyName(arm.policy));
    const double seconds = RunArm(dir, arm.policy, interval, arm.records);
    if (seconds < 0.0) {
      ok = false;
      continue;
    }
    const double rate =
        seconds > 0.0 ? static_cast<double>(arm.records) / seconds : 0.0;
    corrob::obs::JsonValue row = corrob::obs::JsonValue::Object();
    row.Set("policy", corrob::obs::JsonValue::Str(name));
    row.Set("records", corrob::obs::JsonValue::Int(arm.records));
    row.Set("seconds", corrob::obs::JsonValue::Double(seconds));
    row.Set("records_per_sec", corrob::obs::JsonValue::Double(rate));
    rows.Append(std::move(row));
    table.AddRow({name, std::to_string(arm.records),
                  corrob::FormatDouble(seconds, 4),
                  corrob::FormatDouble(rate, 1)});
  }
  root.Set("rows", std::move(rows));
  std::fputs(table.ToString().c_str(), stdout);

  if (json_path.empty() || json_path == "none") return ok ? 0 : 1;
  const corrob::Status written =
      corrob::WriteStringToFile(json_path, root.Dump(2) + "\n");
  if (!written.ok()) {
    std::fprintf(stderr, "bench_wal_append: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
