// Overhead of the execution-budget checks (core/run_context.h) on the
// TwoEstimate sweep kernel, recorded as BENCH_budget_overhead.json.
// Three arms over the same synthetic corpus:
//   unbounded       RunContext::Unbounded() — the legacy code path
//   cancel_armed    live CancellationToken that never fires
//   deadline_armed  far-future deadline (clock read per boundary poll)
// The acceptance bar for this subsystem is <= 2% median overhead on
// the unarmed ("unbounded" vs a bounded-but-idle) path; the armed
// arms document what a real deployment pays for interruptibility.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/budget.h"
#include "core/run_context.h"
#include "core/two_estimate.h"
#include "synth/synthetic.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::SyntheticOptions options;
  options.num_facts = static_cast<int32_t>(flags.GetInt("facts", 100000));
  options.num_sources = 10;
  options.num_inaccurate = 2;
  options.eta = 0.02;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 77));
  const int repetitions = static_cast<int>(flags.GetInt("reps", 5));
  corrob::TwoEstimateOptions method_options;
  method_options.num_threads = static_cast<int>(flags.GetInt("threads", 1));

  corrob::bench::PrintHeader(
      "Budget-check overhead",
      "Median TwoEstimate wall clock with the execution budget "
      "disarmed vs armed (never-firing token / far-future deadline). "
      "The disarmed delta is the price every run pays for the budget "
      "subsystem existing; the bar is <= 2%.");

  corrob::SyntheticDataset data =
      corrob::GenerateSynthetic(options).ValueOrDie();
  corrob::TwoEstimateCorroborator two_estimate(method_options);

  corrob::bench::BenchReport report("budget_overhead", flags);
  report.SetConfig("facts", static_cast<int64_t>(options.num_facts));
  report.SetConfig("seed", static_cast<int64_t>(options.seed));
  report.SetConfig("reps", static_cast<int64_t>(repetitions));
  report.SetConfig("threads",
                   static_cast<int64_t>(method_options.num_threads));

  corrob::CancellationToken token;
  corrob::RunContext cancel_armed;
  cancel_armed.WithCancellation(&token);
  corrob::RunContext deadline_armed;
  deadline_armed.WithDeadline(corrob::Deadline::AfterMs(
      corrob::obs::MonotonicClock::Get(), 1e9));

  auto median_seconds = [&](const corrob::RunContext& context) {
    std::vector<double> seconds;
    for (int rep = 0; rep < repetitions; ++rep) {
      corrob::StopwatchNs watch;
      auto result = two_estimate.Run(data.dataset, context);
      seconds.push_back(watch.ElapsedSeconds());
      result.ValueOrDie();
    }
    std::sort(seconds.begin(), seconds.end());
    return seconds[seconds.size() / 2];
  };

  const double unbounded =
      median_seconds(corrob::RunContext::Unbounded());
  corrob::TablePrinter table({"Arm", "Seconds (median)", "Overhead"});
  auto record = [&](const std::string& arm, double seconds) {
    const double overhead_pct =
        unbounded > 0.0 ? 100.0 * (seconds / unbounded - 1.0) : 0.0;
    corrob::obs::JsonValue row =
        corrob::bench::BenchReport::Row(arm, seconds);
    row.Set("overhead_pct", corrob::obs::JsonValue::Double(overhead_pct));
    report.AddRow(std::move(row));
    table.AddRow({arm, corrob::FormatDouble(seconds, 4),
                  arm == "unbounded"
                      ? "-"
                      : corrob::FormatDouble(overhead_pct, 2) + "%"});
  };

  record("unbounded", unbounded);
  record("cancel_armed", median_seconds(cancel_armed));
  record("deadline_armed", median_seconds(deadline_armed));

  std::fputs(table.ToString().c_str(), stdout);
  report.Write();
  return 0;
}
