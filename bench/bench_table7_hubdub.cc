// Table 7: error counts on the Hubdub-style multi-answer benchmark.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/registry.h"
#include "eval/metrics.h"
#include "synth/hubdub_sim.h"

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  corrob::HubdubSimOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 830));
  options.num_questions =
      static_cast<int32_t>(flags.GetInt("questions", options.num_questions));
  options.num_answers =
      static_cast<int32_t>(flags.GetInt("answers", options.num_answers));
  options.num_users =
      static_cast<int32_t>(flags.GetInt("users", options.num_users));

  corrob::bench::PrintHeader(
      "Table 7 (Hubdub)",
      "Errors (false positives + false negatives) over 830 candidate "
      "answers. Paper: Voting 292, Counting 327, TwoEstimate 269, "
      "ThreeEstimate 270, IncEstHeu 262.");

  corrob::QuestionDataset questions =
      corrob::GenerateHubdub(options).ValueOrDie();
  corrob::Dataset closed = questions.WithNegativeClosure();
  std::printf("Simulated snapshot: %d questions, %d answers, %d users, "
              "%lld votes after negative closure.\n\n",
              questions.num_questions(), questions.dataset().num_facts(),
              questions.dataset().num_sources(),
              static_cast<long long>(closed.num_votes()));

  corrob::TablePrinter table({"Method", "Errors", "Paper"});
  const std::pair<const char*, const char*> rows[] = {
      {"Voting", "292"},        {"Counting", "327"},
      {"TwoEstimate", "269"},   {"ThreeEstimate", "270"},
      {"IncEstHeu", "262"},
  };
  for (const auto& [name, paper] : rows) {
    auto algorithm = corrob::MakeCorroborator(name).ValueOrDie();
    corrob::CorroborationResult result =
        algorithm->Run(closed).ValueOrDie();
    corrob::BinaryMetrics metrics =
        corrob::EvaluateOnTruth(result, questions.truth());
    table.AddRow({name, std::to_string(metrics.confusion.errors()), paper});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
