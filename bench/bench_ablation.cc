// Ablation: the IncEstHeu design choices called out in DESIGN.md,
// each toggled independently, measured on both evaluation workloads
// (restaurant corpus accuracy on golden, synthetic accuracy on truth).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/inc_estimate.h"
#include "eval/metrics.h"
#include "synth/restaurant_sim.h"
#include "synth/synthetic.h"

namespace {

struct Variant {
  std::string name;
  corrob::IncEstimateOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"default (w=8, margin=.05, band=.05)", {}});

  corrob::IncEstimateOptions o;
  o.trust_prior_weight = 0.0;
  variants.push_back({"no trust smoothing (w=0, paper-exact Eq. 8)", o});

  o = {};
  o.tie_margin = 0.0;
  variants.push_back({"no positive deferral band (margin=0)", o});

  o = {};
  o.extreme_band = 1.0;
  variants.push_back({"no confidence-first filter (band=1, literal dH)", o});

  o = {};
  o.quarantine_suspect_groups = true;
  variants.push_back({"quarantine suspect groups", o});

  o = {};
  o.max_candidate_groups = 0;
  variants.push_back({"exact dH over all candidates (no cap)", o});

  o = {};
  o.strategy = corrob::IncSelectStrategy::kProbability;
  variants.push_back({"IncEstPS (greedy selection)", o});

  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  corrob::FlagParser flags = corrob::bench::ParseFlags(argc, argv);
  const int32_t restaurant_facts =
      static_cast<int32_t>(flags.GetInt("restaurant_facts", 36916));
  const int32_t synthetic_facts =
      static_cast<int32_t>(flags.GetInt("synthetic_facts", 10000));

  corrob::bench::PrintHeader(
      "Ablation (IncEstHeu design choices)",
      "Each refinement of the incremental algorithm toggled "
      "independently; higher accuracy is better. See DESIGN.md for "
      "why each knob exists.");

  corrob::RestaurantSimOptions restaurant_options;
  restaurant_options.num_facts = restaurant_facts;
  corrob::RestaurantCorpus corpus =
      corrob::GenerateRestaurantCorpus(restaurant_options).ValueOrDie();

  corrob::SyntheticOptions synthetic_options;
  synthetic_options.num_facts = synthetic_facts;
  synthetic_options.num_sources = 10;
  synthetic_options.num_inaccurate = 2;
  synthetic_options.eta = 0.02;
  synthetic_options.seed = 41;
  corrob::SyntheticDataset synthetic =
      corrob::GenerateSynthetic(synthetic_options).ValueOrDie();

  corrob::TablePrinter table(
      {"Variant", "Restaurant acc", "Restaurant F-1", "Synthetic acc"});
  for (const Variant& variant : Variants()) {
    corrob::IncEstimateCorroborator algorithm(variant.options);
    corrob::CorroborationResult restaurant_result =
        algorithm.Run(corpus.dataset).ValueOrDie();
    corrob::BinaryMetrics restaurant_metrics =
        corrob::EvaluateOnGolden(restaurant_result, corpus.golden);
    corrob::CorroborationResult synthetic_result =
        algorithm.Run(synthetic.dataset).ValueOrDie();
    double synthetic_accuracy =
        corrob::EvaluateOnTruth(synthetic_result, synthetic.truth).accuracy;
    table.AddRow(variant.name,
                 {restaurant_metrics.accuracy, restaurant_metrics.f1,
                  synthetic_accuracy},
                 3);
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}
