#include "cli/cli.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/budget.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/inc_estimate.h"
#include "core/online.h"
#include "core/online_checkpoint.h"
#include "core/delta_apply.h"
#include "core/registry.h"
#include "core/run_context.h"
#include "data/dataset_io.h"
#include "data/wal.h"
#include "data/dataset_stats.h"
#include "data/golden_io.h"
#include "eval/metrics.h"
#include "eval/report_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "synth/hubdub_sim.h"
#include "synth/restaurant_sim.h"
#include "synth/synthetic.h"
#include "text/dedup.h"

namespace corrob {

namespace {

constexpr char kHelp[] = R"(corrob — truth discovery from conflicting web sources
(reproduction of Wu & Marian, "Corroborating Facts from Affirmative
Statements", EDBT 2014)

USAGE
  corrob run      --input data.csv --algorithm IncEstHeu
                  [--output results.csv] [--trust trust.csv]
                  [--telemetry run.json]
      Corroborate a vote matrix; prints per-fact probabilities or
      writes them as CSV (fact,probability,decision). --method is an
      alias for --algorithm; names match case- and separator-
      insensitively (inc_est_heu == IncEstHeu). --telemetry records
      the run's convergence story (per-iteration trust deltas; for
      IncEst*, per-round group selections) as JSON.

  corrob eval     --input data.csv [--algorithm NAME | --all]
                  [--extended] [--golden golden.csv]
      Score algorithms against the dataset's __truth__ column, or
      against a hand-checked golden subset (CSV: fact,label).

  corrob stats    --input data.csv
      Coverage, overlap and vote statistics of a dataset.

  corrob generate --kind synthetic|restaurant|hubdub --output data.csv
                  [--facts N] [--sources N] [--inaccurate N]
                  [--eta F] [--seed N]
      Write a synthetic corpus (with ground truth) as CSV.

  corrob dedup    --input listings.csv --output data.csv
      Entity-resolve raw listings (columns: source,name,address,closed)
      into a vote matrix.

  corrob trajectory --input data.csv --output trust.csv
                    [--strategy IncEstHeu|IncEstPS]
      Run the incremental algorithm and write the per-round
      multi-value trust series (the Figure 2 data) as CSV.

  corrob compare  --input data.csv --left IncEstHeu --right Voting
                  [--show 20]
      Run two algorithms and report where and how they disagree
      (scored against __truth__ when the column is present).

  corrob stream   --input data.csv [--output results.csv]
                  [--checkpoint state.snap [--checkpoint-every 100]
                   [--resume]] [--trust trust.csv]
                  [--initial-trust F] [--trust-prior-weight F]
                  [--tie-margin F]
      Corroborate facts one at a time in arrival (row) order with the
      streaming algorithm, periodically snapshotting trust state to
      --checkpoint. With --resume, restores the snapshot and continues
      from the first unobserved fact; the finished trust state is
      bit-identical to an uninterrupted run over the same stream. The
      decision/deferral counters travel with the checkpoint, so a
      resumed run's running stats continue instead of restarting at
      zero. --telemetry <file> writes them as JSON at the end.

  corrob explain  telemetry.json
      Render a --telemetry file as a table: one row per IncEstimate
      selection round (kind, group signatures, |FG+|, |FG-|, ΔH,
      committed n) or per fixpoint iteration (max trust delta,
      trust distribution).

  corrob wal-inspect --dir wal/flights [--export-csv state.csv]
      Read-only inspection of a corrobd write-ahead vote-delta log:
      segment count, record tallies by type, snapshot presence, and
      whether the final segment ends in a torn (partial) record. A
      torn tail is reported, never repaired — only corrobd's own
      recovery truncates. --export-csv replays snapshot + deltas into
      the dataset CSV corrobd would serve after restart.

  corrob help
      This text.

GLOBAL FLAGS
  --lenient
      Skip malformed dataset rows (reported on stderr) instead of
      failing the whole load. Strict parsing remains the default.
  --threads N
      Worker threads for the iterative corroborators' update sweeps
      (default: the hardware concurrency). Results are bit-identical
      at any value; --threads 1 is the sequential legacy path.
  --failpoint <name>=<mode>[:opt...][,<name>=...]
      Arm fault-injection points for testing, e.g.
      --failpoint cli.stream.observe=fail:1:skip=500
      modes: off | fail[:N] | prob:P   opts: code=<Status>|skip=N|seed=N
  --trace <file>
      Record Chrome trace_event JSON for the whole command; open the
      file in chrome://tracing or https://ui.perfetto.dev.
  --metrics <file>
      Write a JSON snapshot of the process metrics (counters, gauges,
      histograms) accumulated by the command.
  --timeout-ms N
      Wall-clock budget for the corroboration work. On expiry the run
      stops at its next iteration/round boundary and reports its
      best-so-far answer (`corrob stream` checkpoints and exits 0).
  --max-rounds N
      Cap fixpoint iterations / Gibbs sweeps / IncEstimate selection
      rounds; for `corrob stream`, total observed facts.
  --max-memory-mb N
      Refuse runs whose resident vote matrix would exceed this size.
  --max-facts-per-round N
      Cap how many facts one IncEstimate round may commit.

  Ctrl-C (SIGINT/SIGTERM) requests the same graceful stop as an
  expired deadline: in-flight results are finalized best-so-far and
  `corrob stream` saves its checkpoint before exiting 0. A second
  signal hard-exits with status 130.

DATASET CSV
  fact,<source1>,...,<sourceN>[,__truth__]   with cells T, F or '-'.

ALGORITHMS
  Voting Counting TwoEstimate ThreeEstimate BayesEstimate IncEstPS
  IncEstHeu, plus extended baselines: Cosine TruthFinder AvgLog
  Invest PooledInvest.
)";

int Fail(std::ostream& err, const Status& status) {
  err << "corrob: " << status.ToString() << "\n";
  return 1;
}

int Fail(std::ostream& err, const std::string& message) {
  err << "corrob: " << message << "\n";
  return 1;
}

/// Reads the global --threads flag (default: hardware concurrency).
/// Zero, negative and non-numeric values are usage errors, not aborts.
Result<CorroboratorOptions> SharedOptions(const FlagParser& flags) {
  CORROB_ASSIGN_OR_RETURN(
      int64_t threads, flags.TryGetInt("threads", DefaultThreadCount()));
  if (threads < 1) {
    return Status::InvalidArgument(
        "--threads must be a positive integer, got " +
        std::to_string(threads));
  }
  CorroboratorOptions options;
  options.num_threads = static_cast<int>(threads);
  return options;
}

/// Builds the execution budget shared by every subcommand from the
/// global --timeout-ms / --max-rounds / --max-memory-mb /
/// --max-facts-per-round flags, parented on the process shutdown
/// token so Ctrl-C cancels in-flight work at its next boundary.
Result<RunContext> BuildRunContext(const FlagParser& flags) {
  RunContext context;
  context.WithCancellation(&ProcessShutdownToken());
  CORROB_ASSIGN_OR_RETURN(int64_t timeout_ms,
                          flags.TryGetInt("timeout-ms", 0));
  if (timeout_ms < 0) {
    return Status::InvalidArgument("--timeout-ms must be >= 0, got " +
                                   std::to_string(timeout_ms));
  }
  if (timeout_ms > 0) {
    context.WithDeadline(Deadline::AfterMs(
        obs::MonotonicClock::Get(), static_cast<double>(timeout_ms)));
  }
  ResourceBudget budget;
  CORROB_ASSIGN_OR_RETURN(int64_t memory_mb,
                          flags.TryGetInt("max-memory-mb", 0));
  CORROB_ASSIGN_OR_RETURN(budget.max_rounds,
                          flags.TryGetInt("max-rounds", 0));
  CORROB_ASSIGN_OR_RETURN(budget.max_facts_per_round,
                          flags.TryGetInt("max-facts-per-round", 0));
  budget.max_vote_matrix_bytes = memory_mb * (1024 * 1024);
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(budget));
  context.WithBudget(budget);
  return context;
}

/// Reports an early termination (deadline, Ctrl-C, exhausted budget)
/// on `err` — the decisions CSV may go to `out` — and records the
/// signal-to-return cancellation latency histogram.
void NoteTermination(const CorroborationResult& result, std::ostream& err) {
  if (!TerminatedEarly(result.termination)) return;
  err << "corrob: " << result.algorithm << " terminated early ("
      << TerminationName(result.termination)
      << "); results are the best-so-far state after " << result.iterations
      << " iteration(s)\n";
  if (result.termination == Termination::kCancelled) {
    const int64_t cancelled_at = ProcessShutdownToken().cancelled_at_nanos();
    if (cancelled_at > 0) {
      const int64_t now = obs::MonotonicClock::Get()->NowNanos();
      obs::MetricsRegistry::Global()
          .GetHistogram("corrob.budget.cancel_latency_ms")
          ->Record((now - cancelled_at) / 1000000);
    }
  }
}

Result<LabeledDataset> LoadInput(const FlagParser& flags,
                                 std::ostream& err) {
  std::string path = flags.GetString("input", "");
  if (path.empty()) {
    return Status::InvalidArgument("--input is required");
  }
  DatasetCsvOptions options;
  options.lenient = flags.GetBool("lenient", false);
  options.cancel = &ProcessShutdownToken();
  ParseReport report;
  auto loaded = LoadDatasetCsv(path, options, &report);
  if (loaded.ok() && options.lenient && !report.AllRowsLoaded()) {
    err << "corrob: " << path << ": " << report.ToString() << "\n";
  }
  return loaded;
}

/// --algorithm, with --method accepted as an alias (the paper's term).
/// --algorithm wins when both are given.
std::string AlgorithmFlag(const FlagParser& flags,
                          const std::string& fallback) {
  if (flags.Has("algorithm")) return flags.GetString("algorithm", fallback);
  return flags.GetString("method", fallback);
}

int CmdRun(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadInput(flags, err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  const Dataset& dataset = loaded.ValueOrDie().dataset;

  auto shared = SharedOptions(flags);
  if (!shared.ok()) return Fail(err, shared.status());
  const std::string telemetry_path = flags.GetString("telemetry", "");
  shared.ValueOrDie().collect_telemetry = !telemetry_path.empty();
  std::string algorithm_name = AlgorithmFlag(flags, "IncEstHeu");
  auto algorithm = MakeCorroborator(algorithm_name, shared.ValueOrDie());
  if (!algorithm.ok()) return Fail(err, algorithm.status());
  auto context = BuildRunContext(flags);
  if (!context.ok()) return Fail(err, context.status());
  auto result = algorithm.ValueOrDie()->Run(dataset, context.ValueOrDie());
  if (!result.ok()) return Fail(err, result.status());
  const CorroborationResult& corroboration = result.ValueOrDie();
  NoteTermination(corroboration, err);

  if (!telemetry_path.empty()) {
    if (corroboration.telemetry == nullptr) {
      return Fail(err, "algorithm '" + algorithm_name +
                           "' does not record telemetry (iterative "
                           "corroborators only)");
    }
    Status status = WriteStringToFile(
        telemetry_path,
        obs::TelemetryToJsonString(*corroboration.telemetry));
    if (!status.ok()) return Fail(err, status);
    out << "wrote telemetry to " << telemetry_path << "\n";
  }

  std::string output = flags.GetString("output", "");
  std::string decisions = DecisionsToCsv(dataset, corroboration);
  if (output.empty()) {
    out << decisions;
  } else {
    Status status = WriteStringToFile(output, decisions);
    if (!status.ok()) return Fail(err, status);
    out << "wrote " << dataset.num_facts() << " decisions to " << output
        << "\n";
  }

  std::string trust_path = flags.GetString("trust", "");
  if (!trust_path.empty()) {
    std::vector<std::vector<std::string>> trust_rows;
    trust_rows.push_back({"source", "trust"});
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      trust_rows.push_back(
          {dataset.source_name(s),
           FormatDouble(corroboration.source_trust[static_cast<size_t>(s)],
                        4)});
    }
    Status status = WriteCsvFile(trust_path, trust_rows);
    if (!status.ok()) return Fail(err, status);
    out << "wrote source trust to " << trust_path << "\n";
  }
  return 0;
}

int CmdEval(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadInput(flags, err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  const LabeledDataset& labeled = loaded.ValueOrDie();
  GoldenSet golden;
  std::string golden_path = flags.GetString("golden", "");
  if (!golden_path.empty()) {
    auto parsed_golden = LoadGoldenCsv(golden_path, labeled.dataset);
    if (!parsed_golden.ok()) return Fail(err, parsed_golden.status());
    golden = std::move(parsed_golden).ValueOrDie();
  } else if (labeled.truth.has_value()) {
    golden = GoldenSet::FromFullTruth(*labeled.truth);
  } else {
    return Fail(err,
                "eval requires a complete __truth__ column or --golden");
  }

  std::vector<std::string> names;
  if (flags.Has("algorithm") || flags.Has("method")) {
    names.push_back(AlgorithmFlag(flags, ""));
  } else {
    names = CorroboratorNames();
    if (flags.GetBool("extended", false)) {
      for (const std::string& name : ExtendedCorroboratorNames()) {
        names.push_back(name);
      }
    }
  }

  auto shared = SharedOptions(flags);
  if (!shared.ok()) return Fail(err, shared.status());
  auto context = BuildRunContext(flags);
  if (!context.ok()) return Fail(err, context.status());
  TablePrinter table({"Algorithm", "Precision", "Recall", "Accuracy", "F-1"});
  for (const std::string& name : names) {
    auto algorithm = MakeCorroborator(name, shared.ValueOrDie());
    if (!algorithm.ok()) return Fail(err, algorithm.status());
    auto result =
        algorithm.ValueOrDie()->Run(labeled.dataset, context.ValueOrDie());
    if (!result.ok()) return Fail(err, result.status());
    NoteTermination(result.ValueOrDie(), err);
    BinaryMetrics metrics = EvaluateOnGolden(result.ValueOrDie(), golden);
    table.AddRow(name, {metrics.precision, metrics.recall, metrics.accuracy,
                        metrics.f1});
  }
  out << table.ToString();
  return 0;
}

int CmdStats(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  auto loaded = LoadInput(flags, err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  const Dataset& dataset = loaded.ValueOrDie().dataset;

  out << "facts: " << dataset.num_facts()
      << "\nsources: " << dataset.num_sources()
      << "\nvotes: " << dataset.num_votes() << "\nfacts with F votes: "
      << CountFactsWithFalseVotes(dataset)
      << "\naffirmative-only fraction: "
      << FormatDouble(AffirmativeOnlyFraction(dataset), 4) << "\n\n";

  SourceStats stats = ComputeSourceStats(dataset);
  std::vector<int64_t> f_votes = CountFalseVotesBySource(dataset);
  TablePrinter table({"Source", "Coverage", "F votes"});
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    table.AddRow({dataset.source_name(s),
                  FormatDouble(stats.coverage[s], 4),
                  std::to_string(f_votes[s])});
  }
  out << table.ToString();
  return 0;
}

int CmdGenerate(const FlagParser& flags, std::ostream& out,
                std::ostream& err) {
  std::string output = flags.GetString("output", "");
  if (output.empty()) return Fail(err, "--output is required");
  std::string kind = flags.GetString("kind", "synthetic");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  Dataset dataset;
  GroundTruth truth;
  if (kind == "synthetic") {
    SyntheticOptions options;
    options.num_facts = static_cast<int32_t>(flags.GetInt("facts", 20000));
    options.num_sources =
        static_cast<int32_t>(flags.GetInt("sources", 10));
    options.num_inaccurate =
        static_cast<int32_t>(flags.GetInt("inaccurate", 2));
    options.eta = flags.GetDouble("eta", 0.02);
    options.seed = seed;
    auto data = GenerateSynthetic(options);
    if (!data.ok()) return Fail(err, data.status());
    dataset = std::move(data.ValueOrDie().dataset);
    truth = std::move(data.ValueOrDie().truth);
  } else if (kind == "restaurant") {
    RestaurantSimOptions options;
    options.num_facts = static_cast<int32_t>(flags.GetInt("facts", 36916));
    options.seed = seed;
    auto data = GenerateRestaurantCorpus(options);
    if (!data.ok()) return Fail(err, data.status());
    dataset = std::move(data.ValueOrDie().dataset);
    truth = std::move(data.ValueOrDie().truth);
  } else if (kind == "hubdub") {
    HubdubSimOptions options;
    options.seed = seed;
    auto data = GenerateHubdub(options);
    if (!data.ok()) return Fail(err, data.status());
    dataset = data.ValueOrDie().WithNegativeClosure();
    truth = data.ValueOrDie().truth();
  } else {
    return Fail(err, "unknown --kind '" + kind +
                         "' (expected synthetic|restaurant|hubdub)");
  }

  Status status = SaveDatasetCsv(output, dataset, &truth);
  if (!status.ok()) return Fail(err, status);
  out << "wrote " << dataset.num_facts() << " facts x "
      << dataset.num_sources() << " sources to " << output << "\n";
  return 0;
}

int CmdDedup(const FlagParser& flags, std::ostream& out, std::ostream& err) {
  std::string input = flags.GetString("input", "");
  std::string output = flags.GetString("output", "");
  if (input.empty() || output.empty()) {
    return Fail(err, "--input and --output are required");
  }
  auto doc = ReadCsvFile(input);
  if (!doc.ok()) return Fail(err, doc.status());
  const auto& rows = doc.ValueOrDie().rows;
  if (rows.empty() || rows[0] !=
                          std::vector<std::string>{"source", "name",
                                                   "address", "closed"}) {
    return Fail(err,
                "listings CSV must have header: source,name,address,closed");
  }
  std::vector<RawListing> listings;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 4) {
      return Fail(err, "row " + std::to_string(r) + " has " +
                           std::to_string(rows[r].size()) +
                           " cells, expected 4");
    }
    RawListing listing;
    listing.source = rows[r][0];
    listing.name = rows[r][1];
    listing.address = rows[r][2];
    std::string closed = ToLower(Trim(rows[r][3]));
    if (closed == "true" || closed == "1" || closed == "closed") {
      listing.closed = true;
    } else if (closed == "false" || closed == "0" || closed.empty()) {
      listing.closed = false;
    } else {
      return Fail(err, "bad closed cell '" + rows[r][3] + "' at row " +
                           std::to_string(r));
    }
    listings.push_back(std::move(listing));
  }

  auto dedup = Deduplicate(listings);
  if (!dedup.ok()) return Fail(err, dedup.status());
  Status status = SaveDatasetCsv(output, dedup.ValueOrDie().dataset);
  if (!status.ok()) return Fail(err, status);
  out << "deduplicated " << listings.size() << " listings into "
      << dedup.ValueOrDie().entities.size() << " entities; wrote " << output
      << "\n";
  return 0;
}

int CmdTrajectory(const FlagParser& flags, std::ostream& out,
                  std::ostream& err) {
  auto loaded = LoadInput(flags, err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  std::string output = flags.GetString("output", "");
  if (output.empty()) return Fail(err, "--output is required");

  auto shared = SharedOptions(flags);
  if (!shared.ok()) return Fail(err, shared.status());
  IncEstimateOptions options;
  options.record_trajectory = true;
  options.num_threads = shared.ValueOrDie().num_threads;
  std::string strategy = flags.GetString("strategy", "IncEstHeu");
  if (strategy == "IncEstPS") {
    options.strategy = IncSelectStrategy::kProbability;
  } else if (strategy != "IncEstHeu") {
    return Fail(err, "unknown --strategy '" + strategy +
                         "' (expected IncEstHeu|IncEstPS)");
  }
  auto context = BuildRunContext(flags);
  if (!context.ok()) return Fail(err, context.status());
  IncEstimateCorroborator algorithm(options);
  auto result =
      algorithm.Run(loaded.ValueOrDie().dataset, context.ValueOrDie());
  if (!result.ok()) return Fail(err, result.status());
  NoteTermination(result.ValueOrDie(), err);
  Status status = SaveTrajectoryCsv(output, loaded.ValueOrDie().dataset,
                                    result.ValueOrDie());
  if (!status.ok()) return Fail(err, status);
  out << "wrote " << result.ValueOrDie().trajectory.size()
      << " time points to " << output << "\n";
  return 0;
}

int CmdCompare(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  auto loaded = LoadInput(flags, err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  const LabeledDataset& labeled = loaded.ValueOrDie();
  const Dataset& dataset = labeled.dataset;
  const std::string left_name = flags.GetString("left", "IncEstHeu");
  const std::string right_name = flags.GetString("right", "Voting");
  const int64_t show = flags.GetInt("show", 20);

  auto shared = SharedOptions(flags);
  if (!shared.ok()) return Fail(err, shared.status());
  auto context = BuildRunContext(flags);
  if (!context.ok()) return Fail(err, context.status());
  auto run = [&](const std::string& name) -> Result<CorroborationResult> {
    CORROB_ASSIGN_OR_RETURN(
        std::unique_ptr<Corroborator> algorithm,
        MakeCorroborator(name, shared.ValueOrDie()));
    CORROB_ASSIGN_OR_RETURN(CorroborationResult result,
                            algorithm->Run(dataset, context.ValueOrDie()));
    NoteTermination(result, err);
    return result;
  };
  auto left = run(left_name);
  if (!left.ok()) return Fail(err, left.status());
  auto right = run(right_name);
  if (!right.ok()) return Fail(err, right.status());

  int64_t disagreements = 0;
  int64_t left_right_on_disagreement = 0;
  TablePrinter table(labeled.truth.has_value()
                         ? std::vector<std::string>{"Fact", left_name,
                                                    right_name, "Truth"}
                         : std::vector<std::string>{"Fact", left_name,
                                                    right_name});
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    bool l = left.ValueOrDie().Decide(f);
    bool r = right.ValueOrDie().Decide(f);
    if (l == r) continue;
    ++disagreements;
    if (labeled.truth.has_value() && l == labeled.truth->IsTrue(f)) {
      ++left_right_on_disagreement;
    }
    if (disagreements <= show) {
      std::vector<std::string> row{dataset.fact_name(f),
                                   l ? "true" : "false",
                                   r ? "true" : "false"};
      if (labeled.truth.has_value()) {
        row.push_back(labeled.truth->IsTrue(f) ? "true" : "false");
      }
      table.AddRow(std::move(row));
    }
  }

  out << left_name << " vs " << right_name << ": " << disagreements
      << " of " << dataset.num_facts() << " facts decided differently ("
      << FormatDouble(dataset.num_facts() > 0
                          ? 100.0 * static_cast<double>(disagreements) /
                                static_cast<double>(dataset.num_facts())
                          : 0.0,
                      1)
      << "%).\n";
  if (labeled.truth.has_value() && disagreements > 0) {
    out << left_name << " is right on " << left_right_on_disagreement
        << " of the " << disagreements << " disagreements ("
        << FormatDouble(100.0 *
                            static_cast<double>(left_right_on_disagreement) /
                            static_cast<double>(disagreements),
                        1)
        << "%).\n";
  }
  if (disagreements > 0) {
    out << "\nFirst " << std::min<int64_t>(show, disagreements)
        << " disagreements:\n"
        << table.ToString();
  }
  return 0;
}

/// Observes facts [start, num_facts) in row order, checkpointing every
/// `checkpoint_every` facts. The failpoint "cli.stream.observe" is
/// checked before each observation so tests can kill the stream at an
/// exact fact index.
Status StreamFacts(const Dataset& dataset, OnlineCorroborator& online,
                   FactId start, const std::string& checkpoint_path,
                   int64_t checkpoint_every, const RunContext& context,
                   std::vector<std::vector<std::string>>& decision_rows,
                   std::optional<Termination>* interrupted) {
  for (FactId f = start; f < dataset.num_facts(); ++f) {
    // One observed fact is the stream's "round": the budget boundary
    // sits between facts, so the state at an interrupt is always an
    // exact prefix of the uninterrupted run and a later --resume
    // continues bit-identically.
    if (auto interrupt =
            context.CheckIterationBoundary(online.facts_observed())) {
      *interrupted = interrupt;
      return Status::OK();
    }
    CORROB_FAILPOINT("cli.stream.observe");
    auto votes = dataset.VotesOnFact(f);
    CORROB_ASSIGN_OR_RETURN(
        OnlineCorroborator::Verdict verdict,
        online.Observe(std::vector<SourceVote>(votes.begin(), votes.end())));
    decision_rows.push_back({dataset.fact_name(f),
                             FormatDouble(verdict.probability, 6),
                             verdict.decision ? "true" : "false"});
    if (!checkpoint_path.empty() &&
        online.facts_observed() % checkpoint_every == 0) {
      CORROB_RETURN_NOT_OK(SaveOnlineSnapshot(checkpoint_path, online));
    }
  }
  return Status::OK();
}

int CmdStream(const FlagParser& flags, std::ostream& out,
              std::ostream& err) {
  auto loaded = LoadInput(flags, err);
  if (!loaded.ok()) return Fail(err, loaded.status());
  const Dataset& dataset = loaded.ValueOrDie().dataset;

  const std::string checkpoint = flags.GetString("checkpoint", "");
  const int64_t checkpoint_every = flags.GetInt("checkpoint-every", 100);
  if (checkpoint_every <= 0) {
    return Fail(err, "--checkpoint-every must be positive");
  }
  const bool resume = flags.GetBool("resume", false);
  if (resume && checkpoint.empty()) {
    return Fail(err, "--resume requires --checkpoint");
  }

  OnlineCorroboratorOptions options;
  options.initial_trust =
      flags.GetDouble("initial-trust", options.initial_trust);
  options.trust_prior_weight =
      flags.GetDouble("trust-prior-weight", options.trust_prior_weight);
  options.tie_margin = flags.GetDouble("tie-margin", options.tie_margin);

  OnlineCorroborator online(options);
  FactId start = 0;
  if (resume) {
    auto restored = LoadOnlineSnapshot(checkpoint);
    if (!restored.ok()) return Fail(err, restored.status());
    online = std::move(restored).ValueOrDie();
    if (online.num_sources() != dataset.num_sources()) {
      return Fail(err, "checkpoint has " +
                           std::to_string(online.num_sources()) +
                           " sources but the dataset has " +
                           std::to_string(dataset.num_sources()));
    }
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      if (online.source_name(s) != dataset.source_name(s)) {
        return Fail(err, "checkpoint source " + std::to_string(s) +
                             " is '" + online.source_name(s) +
                             "' but the dataset has '" +
                             dataset.source_name(s) + "'");
      }
    }
    if (online.facts_observed() > dataset.num_facts()) {
      return Fail(err, "checkpoint has observed " +
                           std::to_string(online.facts_observed()) +
                           " facts but the dataset only has " +
                           std::to_string(dataset.num_facts()));
    }
    start = static_cast<FactId>(online.facts_observed());
    out << "resumed from " << checkpoint << " at fact " << start << "\n";
  } else {
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      online.AddSource(dataset.source_name(s));
    }
  }

  auto context = BuildRunContext(flags);
  if (!context.ok()) return Fail(err, context.status());
  std::vector<std::vector<std::string>> decision_rows;
  decision_rows.push_back({"fact", "probability", "decision"});
  std::optional<Termination> interrupted;
  Status streamed =
      StreamFacts(dataset, online, start, checkpoint, checkpoint_every,
                  context.ValueOrDie(), decision_rows, &interrupted);
  // Where interrupt state lands when no --checkpoint was given: a
  // per-(input, output) derived path, so concurrent streams sharing a
  // directory can never clobber each other's interrupt snapshot.
  const std::string output = flags.GetString("output", "");
  const std::string interrupt_checkpoint =
      checkpoint.empty()
          ? DeriveInterruptCheckpointPath(flags.GetString("input", ""),
                                          output)
          : checkpoint;
  if (!streamed.ok()) {
    // Best-effort final snapshot so an injected or real fault loses at
    // most the decisions CSV, never the trust state.
    Status saved = SaveOnlineSnapshot(interrupt_checkpoint, online);
    if (saved.ok()) {
      err << "corrob: stream interrupted; checkpoint saved to "
          << interrupt_checkpoint << " at fact "
          << online.facts_observed() << "\n";
    }
    return Fail(err, streamed);
  }
  if (!checkpoint.empty()) {
    Status saved = SaveOnlineSnapshot(checkpoint, online);
    if (!saved.ok()) return Fail(err, saved);
  }
  if (interrupted.has_value()) {
    // Graceful stop: the decisions so far still go out below and the
    // command exits 0 — the checkpoint carries the exact prefix state
    // for --resume (auto-derived when --checkpoint was not given).
    if (checkpoint.empty()) {
      Status saved = SaveOnlineSnapshot(interrupt_checkpoint, online);
      if (!saved.ok()) return Fail(err, saved);
    }
    err << "corrob: stream interrupted (" << TerminationName(*interrupted)
        << ") at fact " << online.facts_observed()
        << "; checkpoint saved, continue with --checkpoint "
        << interrupt_checkpoint << " --resume\n";
  }

  std::string decisions = WriteCsv(decision_rows);
  if (output.empty()) {
    out << decisions;
  } else {
    Status status = WriteStringToFile(output, decisions);
    if (!status.ok()) return Fail(err, status);
    out << "wrote " << decision_rows.size() - 1 << " decisions to "
        << output << "\n";
  }

  std::string trust_path = flags.GetString("trust", "");
  if (!trust_path.empty()) {
    std::vector<std::vector<std::string>> trust_rows;
    trust_rows.push_back({"source", "trust"});
    for (SourceId s = 0; s < online.num_sources(); ++s) {
      trust_rows.push_back(
          {online.source_name(s), FormatDouble(online.trust(s), 6)});
    }
    Status status = WriteCsvFile(trust_path, trust_rows);
    if (!status.ok()) return Fail(err, status);
    out << "wrote source trust to " << trust_path << "\n";
  }
  std::string telemetry_path = flags.GetString("telemetry", "");
  if (!telemetry_path.empty()) {
    // Counters only — they are deterministic and survive checkpoint
    // resume, so a resumed stream reports continuous totals.
    obs::JsonValue telemetry = obs::JsonValue::Object();
    telemetry.Set("schema",
                  obs::JsonValue::Str("corrob.stream_telemetry/1"));
    telemetry.Set("facts_observed",
                  obs::JsonValue::Int(online.facts_observed()));
    telemetry.Set("decisions_true",
                  obs::JsonValue::Int(online.decisions_true()));
    telemetry.Set("decisions_false",
                  obs::JsonValue::Int(online.decisions_false()));
    telemetry.Set("deferrals", obs::JsonValue::Int(online.deferrals()));
    telemetry.Set("num_sources", obs::JsonValue::Int(static_cast<int64_t>(
                                     online.num_sources())));
    Status status =
        WriteStringToFile(telemetry_path, telemetry.Dump(2) + "\n");
    if (!status.ok()) return Fail(err, status);
    out << "wrote stream telemetry to " << telemetry_path << "\n";
  }
  out << "observed " << online.facts_observed() << " facts ("
      << online.facts_observed() - start << " this run)\n";
  return 0;
}

/// Renders a --telemetry JSON file as tables: the run header, then one
/// row per IncEstimate round and/or per fixpoint iteration.
int CmdExplain(const FlagParser& flags, std::ostream& out,
               std::ostream& err) {
  std::string path = flags.GetString("input", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty()) {
    return Fail(err, "usage: corrob explain <telemetry.json>");
  }
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return Fail(err, bytes.status());
  obs::RunTelemetry telemetry;
  std::string error;
  if (!obs::TelemetryFromJsonString(bytes.ValueOrDie(), &telemetry,
                                    &error)) {
    return Fail(err, path + ": " + error);
  }

  out << telemetry.algorithm << " on " << telemetry.num_facts
      << " facts x " << telemetry.num_sources << " sources: "
      << telemetry.iterations
      << (telemetry.rounds.empty() ? " iterations" : " rounds") << ", "
      << (telemetry.converged ? "converged" : "did not converge") << "\n";

  if (!telemetry.rounds.empty()) {
    TablePrinter table({"Round", "Kind", "FG+ signature", "|FG+|", "dH+",
                        "FG- signature", "|FG-|", "dH-", "n", "Committed",
                        "Trust u"});
    for (const obs::IncRoundEvent& round : telemetry.rounds) {
      table.AddRow({std::to_string(round.round), round.kind,
                    round.positive_signature,
                    std::to_string(round.fg_positive),
                    FormatDouble(round.delta_h_positive, 4),
                    round.negative_signature,
                    std::to_string(round.fg_negative),
                    FormatDouble(round.delta_h_negative, 4),
                    std::to_string(round.committed_n),
                    std::to_string(round.facts_committed),
                    FormatDouble(round.trust_mean, 4)});
    }
    out << "\n" << table.ToString();
  }
  if (!telemetry.iteration_stats.empty()) {
    TablePrinter table({"Iter", "Max delta", "Trust min", "Trust mean",
                        "Trust max", "Facts"});
    for (const obs::IterationStats& stats : telemetry.iteration_stats) {
      table.AddRow({std::to_string(stats.iteration),
                    FormatDouble(stats.max_delta, 6),
                    FormatDouble(stats.trust_min, 4),
                    FormatDouble(stats.trust_mean, 4),
                    FormatDouble(stats.trust_max, 4),
                    std::to_string(stats.facts_committed)});
    }
    out << "\n" << table.ToString();
  }
  if (telemetry.rounds.empty() && telemetry.iteration_stats.empty()) {
    out << "\n(no per-round or per-iteration records)\n";
  }
  return 0;
}

/// Read-only WAL inspection: tallies the log without repairing it
/// (InspectWal never truncates; only WalWriter::Open does).
int CmdWalInspect(const FlagParser& flags, std::ostream& out,
                  std::ostream& err) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty() && !flags.positional().empty()) {
    dir = flags.positional().front();
  }
  if (dir.empty()) {
    return Fail(err, "usage: corrob wal-inspect --dir <wal-directory>");
  }
  auto inspected = InspectWal(dir);
  if (!inspected.ok()) return Fail(err, inspected.status());
  const WalRecovery& recovery = inspected.ValueOrDie();

  int64_t add_sources = 0;
  int64_t add_votes = 0;
  int64_t retractions = 0;
  int64_t markers = 0;
  for (const WalRecord& record : recovery.records) {
    switch (record.type) {
      case WalRecordType::kAddSource:
        ++add_sources;
        break;
      case WalRecordType::kAddVote:
        ++add_votes;
        break;
      case WalRecordType::kRetractVote:
        ++retractions;
        break;
      case WalRecordType::kSnapshotMarker:
        ++markers;
        break;
    }
  }
  out << "wal: " << dir << "\n"
      << "segments: " << recovery.segments_scanned << "\n"
      << "snapshot: " << (recovery.has_snapshot ? "present" : "none")
      << "\n"
      << "records: " << recovery.records.size() << " (add-source "
      << add_sources << ", add-vote " << add_votes << ", retract "
      << retractions << ", snapshot-marker " << markers << ")\n";
  if (recovery.tail_truncated) {
    out << "torn tail: " << recovery.tail_bytes_dropped
        << " byte(s) of a partial final record (corrobd will truncate "
           "on its next recovery)\n";
  } else {
    out << "torn tail: none\n";
  }

  const std::string export_path = flags.GetString("export-csv", "");
  if (!export_path.empty()) {
    auto replayed = DatasetFromWalRecovery(recovery);
    if (!replayed.ok()) return Fail(err, replayed.status());
    const Dataset& dataset = replayed.ValueOrDie();
    Status written = SaveDatasetCsv(export_path, dataset);
    if (!written.ok()) return Fail(err, written);
    out << "exported " << dataset.num_facts() << " facts x "
        << dataset.num_sources() << " sources to " << export_path << "\n";
  }
  return 0;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kHelp;
    return 0;
  }
  const std::string& command = args[0];

  std::vector<const char*> rest;
  rest.reserve(args.size() - 1);
  for (size_t i = 1; i < args.size(); ++i) rest.push_back(args[i].c_str());
  auto flags =
      FlagParser::Parse(static_cast<int>(rest.size()), rest.data());
  if (!flags.ok()) return Fail(err, flags.status());
  const FlagParser& parsed = flags.ValueOrDie();

  // Fault injection armed via --failpoint lives for this invocation
  // only; the disarmer keeps faults from leaking across RunCli calls
  // in one process (tests, embedding).
  std::optional<ScopedFailpointDisarmer> disarmer;
  if (parsed.Has("failpoint")) {
    disarmer.emplace();
    Status armed =
        Failpoints::ArmFromSpecList(parsed.GetString("failpoint", ""));
    if (!armed.ok()) return Fail(err, armed);
  }

  // Global observability: --trace records the whole command as
  // trace_event spans; --metrics snapshots the process counters after
  // it. Both reset their global sink first so one RunCli invocation
  // (tests and embedders call several per process) reports only its
  // own events.
  const std::string trace_path = parsed.GetString("trace", "");
  const std::string metrics_path = parsed.GetString("metrics", "");
  if (!trace_path.empty()) {
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().Start();
  }
  if (!metrics_path.empty()) {
    obs::MetricsRegistry::Global().ResetAll();
  }

  int code = 1;
  if (command == "run") {
    code = CmdRun(parsed, out, err);
  } else if (command == "eval") {
    code = CmdEval(parsed, out, err);
  } else if (command == "stats") {
    code = CmdStats(parsed, out, err);
  } else if (command == "generate") {
    code = CmdGenerate(parsed, out, err);
  } else if (command == "dedup") {
    code = CmdDedup(parsed, out, err);
  } else if (command == "trajectory") {
    code = CmdTrajectory(parsed, out, err);
  } else if (command == "compare") {
    code = CmdCompare(parsed, out, err);
  } else if (command == "stream") {
    code = CmdStream(parsed, out, err);
  } else if (command == "explain") {
    code = CmdExplain(parsed, out, err);
  } else if (command == "wal-inspect") {
    code = CmdWalInspect(parsed, out, err);
  } else {
    if (!trace_path.empty()) obs::TraceRecorder::Global().Stop();
    return Fail(err, "unknown command '" + command +
                         "' (try `corrob help`)");
  }

  if (!trace_path.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.Stop();
    Status status =
        WriteStringToFile(trace_path, recorder.ToJsonString() + "\n");
    if (!status.ok()) return Fail(err, status);
    out << "wrote " << recorder.event_count() << " trace events to "
        << trace_path << "\n";
  }
  if (!metrics_path.empty()) {
    Status status = WriteStringToFile(
        metrics_path,
        obs::MetricsRegistry::Global().Snapshot().ToJsonString() + "\n");
    if (!status.ok()) return Fail(err, status);
    out << "wrote metrics to " << metrics_path << "\n";
  }
  return code;
}

}  // namespace corrob
