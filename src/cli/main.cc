#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "common/budget.h"

int main(int argc, char** argv) {
  // First Ctrl-C cancels the in-flight work at its next boundary so
  // results/checkpoints are flushed; a second one hard-exits (130).
  corrob::InstallShutdownSignalHandlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  return corrob::RunCli(args, std::cout, std::cerr);
}
