#ifndef CORROB_CLI_CLI_H_
#define CORROB_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace corrob {

/// Entry point of the `corrob` command-line tool, factored out of
/// main() so tests can drive it with in-memory streams.
///
/// Subcommands:
///   corrob run      --input data.csv --algorithm IncEstHeu
///                   [--output results.csv] [--trust trust.csv]
///   corrob eval     --input data.csv (requires a __truth__ column)
///                   [--algorithm NAME | --all] [--extended]
///   corrob stats    --input data.csv
///   corrob generate --kind synthetic|restaurant|hubdub --output data.csv
///                   [generator-specific flags, see `corrob help`]
///   corrob dedup    --input listings.csv --output data.csv
///                   (listings.csv columns: source,name,address,closed)
///   corrob help
///
/// Returns a process exit code (0 on success). Normal output goes to
/// `out`, diagnostics to `err`.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace corrob

#endif  // CORROB_CLI_CLI_H_
