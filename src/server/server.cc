#include "server/server.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "core/registry.h"
#include "core/run_context.h"
#include "data/dataset_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/frame.h"

namespace corrob {
namespace server {

namespace {

/// Cadence of the disconnect watcher and the drain wait.
constexpr double kHousekeepingSliceMs = 20.0;

/// Upper bound on writing one response frame. Response writes must
/// survive the abort token firing (a request cut short by the drain
/// deadline still answers), so the only thing that may stop them is
/// this bounded deadline — the backstop against a peer that never
/// drains its socket.
constexpr double kResponseWriteTimeoutMs = 5000.0;

struct ServerMetrics {
  obs::Counter* connections;
  obs::Counter* requests_admitted;
  obs::Counter* requests_shed;
  obs::Counter* requests_failed;
  obs::Counter* responses_sent;
  obs::Histogram* queue_wait_nanos;
  obs::Histogram* service_nanos;
  obs::Gauge* running;

  static ServerMetrics& Get() {
    static ServerMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      ServerMetrics m;
      m.connections = registry.GetCounter("corrobd.connections");
      m.requests_admitted = registry.GetCounter("corrobd.requests.admitted");
      m.requests_shed = registry.GetCounter("corrobd.requests.shed");
      m.requests_failed = registry.GetCounter("corrobd.requests.failed");
      m.responses_sent = registry.GetCounter("corrobd.responses.sent");
      m.queue_wait_nanos =
          registry.GetHistogram("corrobd.request.queue_wait_nanos");
      m.service_nanos = registry.GetHistogram("corrobd.request.service_nanos");
      m.running = registry.GetGauge("corrobd.requests.running");
      return m;
    }();
    return metrics;
  }
};

/// "name=path" → {name, path}; bare path → {stem, path}.
std::pair<std::string, std::string> SplitDatasetSpec(
    const std::string& spec) {
  const size_t equals = spec.find('=');
  if (equals != std::string::npos) {
    return {spec.substr(0, equals), spec.substr(equals + 1)};
  }
  size_t start = spec.find_last_of('/');
  start = start == std::string::npos ? 0 : start + 1;
  size_t end = spec.find_last_of('.');
  if (end == std::string::npos || end <= start) end = spec.size();
  return {spec.substr(start, end - start), spec};
}

}  // namespace

/// Per-connection state. The owning thread is the only reader of the
/// socket; `active_request` is the handshake with the disconnect
/// watcher, set only while a corroborate request is executing.
struct CorrobdServer::Connection {
  UniqueFd fd;
  std::thread thread;
  std::atomic<bool> done{false};

  std::mutex mutex;
  /// Token of the request this connection is executing, or null.
  /// Guarded by `mutex`; the watcher cancels through it when the
  /// peer vanishes.
  CancellationToken* active_request = nullptr;
};

CorrobdServer::CorrobdServer(ServerOptions options)
    : options_(std::move(options)) {
  clock_ = options_.clock != nullptr ? options_.clock
                                     : obs::MonotonicClock::Get();
  admission_ =
      std::make_unique<AdmissionController>(options_.admission, clock_);
}

CorrobdServer::~CorrobdServer() {
  // Serve() joins everything; this only covers a server that was
  // Start()ed but never Serve()d.
  stopping_.store(true, std::memory_order_relaxed);
  abort_token_.Cancel();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

Status CorrobdServer::Start() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("corrobd needs a --socket path");
  }
  if (options_.dataset_specs.empty()) {
    return Status::InvalidArgument(
        "corrobd needs at least one --dataset to serve");
  }
  for (const std::string& spec : options_.dataset_specs) {
    auto [name, path] = SplitDatasetSpec(spec);
    if (name.empty()) {
      return Status::InvalidArgument("dataset spec '" + spec +
                                     "' has an empty name");
    }
    if (FindDataset(name) != nullptr) {
      return Status::AlreadyExists("dataset '" + name +
                                   "' is specified twice");
    }
    CORROB_ASSIGN_OR_RETURN(LabeledDataset loaded, LoadDatasetCsv(path));
    ServedDataset served;
    served.name = name;
    served.dataset = std::move(loaded.dataset);
    datasets_.push_back(std::move(served));
  }
  std::sort(datasets_.begin(), datasets_.end(),
            [](const ServedDataset& a, const ServedDataset& b) {
              return a.name < b.name;
            });
  CORROB_ASSIGN_OR_RETURN(listener_,
                          ListenUnixSocket(options_.socket_path));
  return Status::OK();
}

std::vector<std::string> CorrobdServer::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const ServedDataset& served : datasets_) names.push_back(served.name);
  return names;
}

const ServedDataset* CorrobdServer::FindDataset(
    const std::string& name) const {
  for (const ServedDataset& served : datasets_) {
    if (served.name == name) return &served;
  }
  return nullptr;
}

StopSignal CorrobdServer::WriteStop() const {
  // Deliberately NOT the abort token: after the drain deadline cancels
  // in-flight requests, their termination=cancelled responses are
  // still owed to the clients.
  return StopSignal(nullptr, Deadline::AfterMs(clock_, kResponseWriteTimeoutMs));
}

Status CorrobdServer::Serve(const CancellationToken* drain) {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("Serve() called before Start()");
  }
  std::thread watcher([this] { WatchDisconnects(); });

  const StopSignal accept_stop(drain, Deadline());
  while (!accept_stop.ShouldStop()) {
    Result<UniqueFd> accepted = AcceptWithStop(listener_.get(), accept_stop);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kCancelled) break;
      // A transient accept failure (e.g. the peer vanished between
      // connect and accept) must not kill the daemon.
      continue;
    }
    ServerMetrics::Get().connections->Add(1);
    auto connection = std::make_unique<Connection>();
    connection->fd = std::move(accepted).ValueOrDie();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      // Reap finished connections so a long-lived daemon does not
      // accumulate dead threads.
      for (auto& old : connections_) {
        if (old->done.load(std::memory_order_acquire) &&
            old->thread.joinable()) {
          old->thread.join();
        }
      }
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::unique_ptr<Connection>& c) {
                           return c->done.load(std::memory_order_acquire) &&
                                  !c->thread.joinable();
                         }),
          connections_.end());
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] {
      RunConnection(raw);
      raw->done.store(true, std::memory_order_release);
    });
  }

  // Drain: no new connections; in-flight requests keep their slots
  // until the drain deadline, then the abort token cuts them short
  // (they still answer, with termination=cancelled). Idle connections
  // close promptly: their next-frame reads watch read_interrupt_.
  draining_.store(true, std::memory_order_release);
  read_interrupt_.Cancel();
  listener_.Reset();
  const Deadline drain_deadline =
      Deadline::AfterMs(clock_, static_cast<double>(options_.drain_timeout_ms));
  const auto all_done = [this] {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    return std::all_of(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->done.load(std::memory_order_acquire);
                       });
  };
  while (!all_done()) {
    if (drain_deadline.expired()) {
      abort_token_.Cancel(clock_->NowNanos());
      break;
    }
    // lint-friendly interruptible sleep slice; the token is only
    // cancelled after this loop, so this is a plain bounded wait.
    (void)abort_token_.WaitForMs(kHousekeepingSliceMs);  // lint: discard-ok: bounded housekeeping sleep
  }

  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
    }
    connections_.clear();
  }
  watcher.join();
  return Status::OK();
}

void CorrobdServer::WatchDisconnects() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (auto& connection : connections_) {
        if (connection->done.load(std::memory_order_acquire)) continue;
        std::lock_guard<std::mutex> request_lock(connection->mutex);
        if (connection->active_request != nullptr &&
            PeerClosed(connection->fd.get())) {
          connection->active_request->Cancel(clock_->NowNanos());
        }
      }
    }
    (void)abort_token_.WaitForMs(kHousekeepingSliceMs);  // lint: discard-ok: watcher cadence sleep
  }
}

void CorrobdServer::RunConnection(Connection* connection) {
  // Reading the next request stops on drain (idle connections close
  // promptly when the daemon drains) — but never mid-request: request
  // execution only watches the abort token.
  const StopSignal read_stop(&read_interrupt_, Deadline());
  while (!draining_.load(std::memory_order_acquire) &&
         !read_stop.ShouldStop()) {
    Result<std::optional<Frame>> next =
        ReadFrameOrEof(connection->fd.get(), read_stop);
    if (!next.ok()) {
      // Drain interrupted an idle read: a silent close, not an error
      // — the client is sitting at a frame boundary and sees a clean
      // EOF, exactly like a fresh goodbye.
      if (next.status().code() == StatusCode::kCancelled) break;
      // Framing is broken (bad magic, checksum, oversize, I/O error):
      // report the typed error if the pipe still works, then close —
      // the stream can no longer be trusted to be frame-aligned.
      Frame error;
      error.type = FrameType::kErrorResponse;
      ErrorResponse body;
      body.code = static_cast<uint8_t>(next.status().code());
      body.message = next.status().message();
      error.payload = EncodeErrorResponse(body);
      (void)WriteFrame(connection->fd.get(), error, WriteStop());  // lint: discard-ok: already closing on error
      break;
    }
    if (!next.ValueOrDie().has_value()) break;  // clean goodbye
    const Frame& frame = *next.ValueOrDie();
    Status handled = HandleFrame(connection, frame.type, frame.payload);
    if (!handled.ok()) break;
  }
  connection->fd.Reset();
}

Status CorrobdServer::HandleFrame(Connection* connection, FrameType type,
                                  const std::string& payload) {
  switch (type) {
    case FrameType::kPingRequest: {
      Frame pong;
      pong.type = FrameType::kPongResponse;
      pong.payload = payload;  // echo
      Status written = WriteFrame(connection->fd.get(), pong, WriteStop());
      if (written.ok()) {
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::Get().responses_sent->Add(1);
      }
      return written;
    }
    case FrameType::kStatsRequest:
      return HandleStats(connection);
    case FrameType::kCorroborateRequest:
      return HandleCorroborate(connection, payload);
    default: {
      // A response type arriving at the server: answer in-band and
      // keep the connection (framing itself is intact).
      Frame error;
      error.type = FrameType::kErrorResponse;
      ErrorResponse body;
      body.code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      body.message = "server cannot handle frame type '" +
                     std::string(FrameTypeName(type)) + "'";
      error.payload = EncodeErrorResponse(body);
      Status written = WriteFrame(connection->fd.get(), error, WriteStop());
      if (written.ok()) {
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::Get().responses_sent->Add(1);
      }
      return written;
    }
  }
}

Status CorrobdServer::HandleStats(Connection* connection) {
  obs::JsonValue stats = obs::JsonValue::Object();
  stats.Set("schema", obs::JsonValue::Str("corrob.serving_stats/1"));
  stats.Set("running",
            obs::JsonValue::Int(admission_->running()));
  obs::JsonValue queued = obs::JsonValue::Object();
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    queued.Set(std::string(PriorityName(static_cast<Priority>(cls))),
               obs::JsonValue::Int(
                   admission_->queued(static_cast<Priority>(cls))));
  }
  stats.Set("queued", std::move(queued));
  obs::JsonValue names = obs::JsonValue::Array();
  for (const ServedDataset& served : datasets_) {
    names.Append(obs::JsonValue::Str(served.name));
  }
  stats.Set("datasets", std::move(names));
  stats.Set("responses_sent",
            obs::JsonValue::Int(
                responses_sent_.load(std::memory_order_relaxed)));
  stats.Set("draining",
            obs::JsonValue::Bool(draining_.load(std::memory_order_acquire)));

  Frame response;
  response.type = FrameType::kStatsResponse;
  response.payload = stats.Dump();
  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

Status CorrobdServer::HandleCorroborate(Connection* connection,
                                        const std::string& payload) {
  ServerMetrics& metrics = ServerMetrics::Get();
  Frame response;

  // Everything below fills `response`; a single write at the end
  // keeps the one-request-one-response invariant easy to audit.
  const auto respond_error = [&](const Status& status) {
    response.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(status.code());
    body.message = status.message();
    response.payload = EncodeErrorResponse(body);
    metrics.requests_failed->Add(1);
  };

  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(payload);
  if (!decoded.ok()) {
    respond_error(decoded.status());
  } else {
    const CorroborateRequest& request = decoded.ValueOrDie();
    const int cls = static_cast<int>(request.priority);
    const ServedDataset* served = FindDataset(request.dataset);
    Result<std::unique_ptr<Corroborator>> corroborator =
        Status::InvalidArgument("unresolved");
    if (served == nullptr) {
      respond_error(Status::NotFound(
          "dataset '" + request.dataset +
          "' is not loaded (corrobd serves only datasets named at "
          "startup)"));
    } else if (corroborator = MakeCorroborator(
                   request.algorithm,
                   CorroboratorOptions{.num_threads = options_.run_threads});
               !corroborator.ok()) {
      respond_error(corroborator.status());
    } else {
      // Per-request isolation: child token (disconnect watcher and
      // abort fan-in) + class-defaulted deadline and budget.
      CancellationToken request_token(&abort_token_);
      const int64_t timeout_ms =
          request.timeout_ms > 0
              ? static_cast<int64_t>(request.timeout_ms)
              : options_.admission.default_timeout_ms[cls];
      const Deadline deadline =
          timeout_ms > 0
              ? Deadline::AfterMs(clock_, static_cast<double>(timeout_ms))
              : Deadline();
      const StopSignal request_stop(&request_token, deadline);

      const AdmissionDecision admitted =
          admission_->Admit(request.priority, request_stop);
      metrics.queue_wait_nanos->Record(admitted.queue_wait_nanos);
      switch (admitted.outcome) {
        case AdmissionDecision::Outcome::kShed: {
          response.type = FrameType::kOverloadedResponse;
          OverloadedResponse body;
          body.retry_after_ms = admitted.retry_after_ms;
          body.queue_depth = admitted.queue_depth;
          body.message = "admission queue for class '" +
                         std::string(PriorityName(request.priority)) +
                         "' is full";
          response.payload = EncodeOverloadedResponse(body);
          metrics.requests_shed->Add(1);
          break;
        }
        case AdmissionDecision::Outcome::kCancelled:
          respond_error(Status::Cancelled(
              request_stop.deadline_expired()
                  ? "request deadline expired while queued for admission"
                  : "request cancelled while queued for admission"));
          break;
        case AdmissionDecision::Outcome::kAdmitted: {
          metrics.requests_admitted->Add(1);
          metrics.running->Set(admission_->running());
          {
            std::lock_guard<std::mutex> lock(connection->mutex);
            connection->active_request = &request_token;
          }
          // Test hook: holds the request in-flight while armed, so
          // overload and drain scenarios are deterministic.
          while (Failpoints::IsArmed("server.request.stall") &&
                 !request_stop.ShouldStop()) {
            (void)request_token.WaitForMs(1.0);  // lint: discard-ok: stall hook polls stop each slice
          }

          ResourceBudget budget;
          budget.max_rounds =
              request.max_rounds > 0
                  ? static_cast<int64_t>(request.max_rounds)
                  : options_.admission.default_max_rounds[cls];
          RunContext context;
          context.WithCancellation(&request_token)
              .WithDeadline(deadline)
              .WithBudget(budget);

          const int64_t run_started = clock_->NowNanos();
          Result<CorroborationResult> run =
              Status::Internal("request failpoint");
          Status injected = Failpoints::Check("server.request.fail");
          if (injected.ok()) {
            run = corroborator.ValueOrDie()->Run(served->dataset, context);
          } else {
            run = injected;
          }
          const int64_t service_nanos = clock_->NowNanos() - run_started;
          {
            std::lock_guard<std::mutex> lock(connection->mutex);
            connection->active_request = nullptr;
          }
          admission_->Release(request.priority, service_nanos);
          metrics.service_nanos->Record(service_nanos);
          metrics.running->Set(admission_->running());

          if (!run.ok()) {
            respond_error(run.status());
          } else {
            const CorroborationResult& result = run.ValueOrDie();
            response.type = FrameType::kResultResponse;
            CorroborateResponse body;
            body.algorithm = result.algorithm;
            body.termination = static_cast<uint8_t>(result.termination);
            body.iterations = static_cast<uint32_t>(result.iterations);
            body.fact_probability = result.fact_probability;
            body.source_trust = result.source_trust;
            response.payload = EncodeCorroborateResponse(body);
          }
          break;
        }
      }
    }
  }

  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    metrics.responses_sent->Add(1);
  }
  return written;
}

}  // namespace server
}  // namespace corrob
