#include "server/server.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "core/delta_apply.h"
#include "core/registry.h"
#include "core/run_context.h"
#include "data/dataset_io.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/frame.h"

namespace corrob {
namespace server {

namespace {

/// Cadence of the disconnect watcher and the drain wait.
constexpr double kHousekeepingSliceMs = 20.0;

/// Upper bound on writing one response frame. Response writes must
/// survive the abort token firing (a request cut short by the drain
/// deadline still answers), so the only thing that may stop them is
/// this bounded deadline — the backstop against a peer that never
/// drains its socket.
constexpr double kResponseWriteTimeoutMs = 5000.0;

struct ServerMetrics {
  obs::Counter* connections;
  obs::Counter* requests_admitted;
  obs::Counter* requests_shed;
  obs::Counter* requests_failed;
  obs::Counter* requests_quota_rejected;
  obs::Counter* responses_sent;
  obs::Counter* deltas_applied;
  obs::Counter* wal_failures;
  obs::Counter* slow_requests;
  obs::Counter* watchdog_scans;
  obs::Counter* watchdog_flagged;
  obs::Gauge* watchdog_stuck;
  obs::Histogram* queue_wait_nanos;
  obs::Histogram* service_nanos;
  obs::Gauge* running;

  static ServerMetrics& Get() {
    static ServerMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      ServerMetrics m;
      m.connections = registry.GetCounter("corrobd.connections");
      m.requests_admitted = registry.GetCounter("corrobd.requests.admitted");
      m.requests_shed = registry.GetCounter("corrobd.requests.shed");
      m.requests_failed = registry.GetCounter("corrobd.requests.failed");
      m.requests_quota_rejected =
          registry.GetCounter("corrobd.requests.quota_rejected");
      m.responses_sent = registry.GetCounter("corrobd.responses.sent");
      m.deltas_applied = registry.GetCounter("corrobd.deltas.applied");
      m.wal_failures = registry.GetCounter("corrobd.wal.failures");
      m.slow_requests = registry.GetCounter("corrob.server.slow_requests");
      m.watchdog_scans =
          registry.GetCounter("corrob.server.watchdog.scans");
      m.watchdog_flagged =
          registry.GetCounter("corrob.server.watchdog.flagged");
      m.watchdog_stuck = registry.GetGauge("corrob.server.watchdog.stuck");
      m.queue_wait_nanos =
          registry.GetHistogram("corrobd.request.queue_wait_nanos");
      m.service_nanos = registry.GetHistogram("corrobd.request.service_nanos");
      m.running = registry.GetGauge("corrobd.requests.running");
      return m;
    }();
    return metrics;
  }
};

/// "name=path" → {name, path}; bare path → {stem, path}.
std::pair<std::string, std::string> SplitDatasetSpec(
    const std::string& spec) {
  const size_t equals = spec.find('=');
  if (equals != std::string::npos) {
    return {spec.substr(0, equals), spec.substr(equals + 1)};
  }
  size_t start = spec.find_last_of('/');
  start = start == std::string::npos ? 0 : start + 1;
  size_t end = spec.find_last_of('.');
  if (end == std::string::npos || end <= start) end = spec.size();
  return {spec.substr(start, end - start), spec};
}

/// True when `termination` is a deterministic full outcome — a
/// function of (dataset generation, algorithm, round budget) alone,
/// so the encoded response may be cached and shared with coalesced
/// followers. Deadline and cancellation truncations depend on
/// wall-clock timing and are private to the request that hit them.
bool IsShareableTermination(uint8_t termination) {
  switch (static_cast<Termination>(termination)) {
    case Termination::kConverged:
    case Termination::kIterationCap:
    case Termination::kBudgetExhausted:
      return true;
    case Termination::kDeadlineExceeded:
    case Termination::kCancelled:
      return false;
  }
  return false;
}

}  // namespace

/// Per-connection state. The owning thread is the only reader of the
/// socket; `active_request` is the handshake with the disconnect
/// watcher, set only while a corroborate request is executing.
struct CorrobdServer::Connection {
  UniqueFd fd;
  std::thread thread;
  std::atomic<bool> done{false};

  std::mutex mutex;
  /// Token of the request this connection is executing, or null; the
  /// watcher cancels through it when the peer vanishes.
  CancellationToken* active_request CORROB_GUARDED_BY(mutex) = nullptr;
};

CorrobdServer::CorrobdServer(ServerOptions options)
    : options_(std::move(options)) {
  clock_ = options_.clock != nullptr ? options_.clock
                                     : obs::MonotonicClock::Get();
  admission_ =
      std::make_unique<AdmissionController>(options_.admission, clock_);
  cache_ = std::make_unique<ResultCache>(options_.cache);
  quotas_ = std::make_unique<TenantQuotas>(options_.quota, clock_);
  for (const auto& [tenant, limits] : options_.tenant_overrides) {
    quotas_->SetLimits(tenant, limits);
  }
  obs::FlightRecorder::Options recorder_options;
  recorder_options.capacity = options_.flight_recorder_entries;
  recorder_options.slow_threshold_nanos =
      options_.slow_request_ms * 1'000'000;
  recorder_options.clock = clock_;
  recorder_ = std::make_unique<obs::FlightRecorder>(recorder_options);
}

CorrobdServer::~CorrobdServer() {
  // Serve() joins everything; this only covers a server that was
  // Start()ed but never Serve()d.
  stopping_.store(true, std::memory_order_relaxed);
  abort_token_.Cancel();
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

Status CorrobdServer::Start() {
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("corrobd needs a --socket path");
  }
  if (options_.dataset_specs.empty()) {
    return Status::InvalidArgument(
        "corrobd needs at least one --dataset to serve");
  }
  for (const std::string& spec : options_.dataset_specs) {
    auto [name, path] = SplitDatasetSpec(spec);
    if (name.empty()) {
      return Status::InvalidArgument("dataset spec '" + spec +
                                     "' has an empty name");
    }
    if (FindDataset(name) != nullptr) {
      return Status::AlreadyExists("dataset '" + name +
                                   "' is specified twice");
    }
    CORROB_ASSIGN_OR_RETURN(LabeledDataset loaded, LoadDatasetCsv(path));
    auto served = std::make_unique<ServedDataset>();
    served->name = name;
    served->path = path;
    Dataset resident = std::move(loaded.dataset);
    if (!options_.wal_dir.empty()) {
      WalOptions wal_options;
      wal_options.fsync_policy = options_.wal_fsync;
      wal_options.fsync_interval_records =
          options_.wal_fsync_interval_records;
      wal_options.segment_bytes = options_.wal_segment_bytes;
      WalRecovery recovery;
      CORROB_ASSIGN_OR_RETURN(
          WalWriter writer,
          WalWriter::Open(options_.wal_dir + "/" + name, wal_options,
                          &recovery));
      const std::vector<WalRecord> mutations = recovery.Mutations();
      if (recovery.has_snapshot) {
        // The snapshot already folds the state the daemon logged
        // against plus every compacted delta; it replaces the CSV
        // load wholesale.
        CORROB_ASSIGN_OR_RETURN(resident,
                                DatasetFromWalRecovery(recovery));
      } else if (!mutations.empty()) {
        CORROB_ASSIGN_OR_RETURN(
            resident, ApplyDeltasToDataset(resident, mutations));
      }
      if (recovery.has_snapshot || !mutations.empty()) {
        CORROB_LOG_INFO << "corrobd: dataset '" << name << "' recovered "
                        << mutations.size() << " delta(s)"
                        << (recovery.has_snapshot ? " on a snapshot"
                                                  : "")
                        << " from " << options_.wal_dir << "/" << name;
      }
      served->deltas_applied.store(mutations.size(),
                                   std::memory_order_relaxed);
      std::lock_guard<std::mutex> wal_lock(served->wal_mutex);
      served->wal = std::make_unique<WalWriter>(std::move(writer));
    }
    {
      // No other thread exists yet, but the guard on `dataset` is
      // unconditional; the uncontended lock keeps the discipline
      // checkable instead of special-cased.
      std::lock_guard<std::mutex> lock(served->mutex);
      served->dataset = std::make_shared<const Dataset>(std::move(resident));
    }
    datasets_.push_back(std::move(served));
  }
  std::sort(datasets_.begin(), datasets_.end(),
            [](const std::unique_ptr<ServedDataset>& a,
               const std::unique_ptr<ServedDataset>& b) {
              return a->name < b->name;
            });
  CORROB_ASSIGN_OR_RETURN(listener_,
                          ListenUnixSocket(options_.socket_path));
  return Status::OK();
}

std::vector<std::string> CorrobdServer::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& served : datasets_) names.push_back(served->name);
  return names;
}

ServedDataset* CorrobdServer::FindDataset(const std::string& name) const {
  for (const auto& served : datasets_) {
    if (served->name == name) return served.get();
  }
  return nullptr;
}

Status CorrobdServer::ReloadDataset(ServedDataset* served) {
  {
    // A WAL-backed dataset's resident state is CSV + replayed log;
    // swapping in the raw CSV would drop acked durable deltas from
    // live serving while the next restart replays them anyway —
    // live answers and post-restart answers would diverge. Mutate
    // through apply-delta instead, or restart against a fresh --wal
    // directory to re-base on the CSV.
    std::lock_guard<std::mutex> wal_lock(served->wal_mutex);
    if (served->wal != nullptr) {
      return Status::FailedPrecondition(
          "dataset '" + served->name +
          "' has a durable vote-delta log; a CSV reload would diverge "
          "from the log's replay (ingest via apply-delta, or restart "
          "corrobd with a fresh --wal directory to re-base)");
    }
  }
  CORROB_ASSIGN_OR_RETURN(LabeledDataset loaded,
                          LoadDatasetCsv(served->path));
  auto fresh = std::make_shared<const Dataset>(std::move(loaded.dataset));
  {
    std::lock_guard<std::mutex> lock(served->mutex);
    served->dataset = std::move(fresh);
    served->generation.fetch_add(1, std::memory_order_release);
  }
  // Old-generation keys can never match again (the generation is in
  // the key); the scan just frees their memory eagerly.
  cache_->InvalidateDataset(served->name);
  return Status::OK();
}

StopSignal CorrobdServer::WriteStop() const {
  // Deliberately NOT the abort token: after the drain deadline cancels
  // in-flight requests, their termination=cancelled responses are
  // still owed to the clients.
  return StopSignal(nullptr, Deadline::AfterMs(clock_, kResponseWriteTimeoutMs));
}

Status CorrobdServer::Serve(const CancellationToken* drain) {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("Serve() called before Start()");
  }
  std::thread watcher([this] { WatchDisconnects(); });
  std::thread watchdog;
  if (options_.watchdog_interval_ms > 0 && recorder_->armed()) {
    watchdog = std::thread([this] { WatchStuckRequests(); });
  }

  const StopSignal accept_stop(drain, Deadline());
  while (!accept_stop.ShouldStop()) {
    Result<UniqueFd> accepted = AcceptWithStop(listener_.get(), accept_stop);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kCancelled) break;
      // A transient accept failure (e.g. the peer vanished between
      // connect and accept) must not kill the daemon.
      continue;
    }
    ServerMetrics::Get().connections->Add(1);
    auto connection = std::make_unique<Connection>();
    connection->fd = std::move(accepted).ValueOrDie();
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      // Reap finished connections so a long-lived daemon does not
      // accumulate dead threads.
      for (auto& old : connections_) {
        if (old->done.load(std::memory_order_acquire) &&
            old->thread.joinable()) {
          old->thread.join();
        }
      }
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::unique_ptr<Connection>& c) {
                           return c->done.load(std::memory_order_acquire) &&
                                  !c->thread.joinable();
                         }),
          connections_.end());
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] {
      RunConnection(raw);
      raw->done.store(true, std::memory_order_release);
    });
  }

  // Drain: no new connections; in-flight requests keep their slots
  // until the drain deadline, then the abort token cuts them short
  // (they still answer, with termination=cancelled). Idle connections
  // close promptly: their next-frame reads watch read_interrupt_.
  draining_.store(true, std::memory_order_release);
  read_interrupt_.Cancel();
  listener_.Reset();
  const Deadline drain_deadline =
      Deadline::AfterMs(clock_, static_cast<double>(options_.drain_timeout_ms));
  const auto all_done = [this] {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    return std::all_of(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& c) {
                         return c->done.load(std::memory_order_acquire);
                       });
  };
  while (!all_done()) {
    if (drain_deadline.expired()) {
      abort_token_.Cancel(clock_->NowNanos());
      break;
    }
    // lint-friendly interruptible sleep slice; the token is only
    // cancelled after this loop, so this is a plain bounded wait.
    (void)abort_token_.WaitForMs(kHousekeepingSliceMs);  // lint: discard-ok: bounded housekeeping sleep
  }

  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->thread.joinable()) connection->thread.join();
    }
    connections_.clear();
  }
  watcher.join();
  if (watchdog.joinable()) watchdog.join();
  return Status::OK();
}

void CorrobdServer::WatchStuckRequests() {
  ServerMetrics& metrics = ServerMetrics::Get();
  int64_t last_scan = clock_->NowNanos();
  const int64_t interval_nanos = options_.watchdog_interval_ms * 1'000'000;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Housekeeping-sized slices so shutdown never waits out a full
    // watchdog interval.
    (void)abort_token_.WaitForMs(kHousekeepingSliceMs);  // lint: discard-ok: watchdog cadence sleep
    const int64_t now = clock_->NowNanos();
    if (now - last_scan < interval_nanos) continue;
    last_scan = now;
    const std::vector<obs::ActiveSnapshot> flagged =
        recorder_->FlagStuck(now, options_.watchdog_deadline_multiplier);
    metrics.watchdog_scans->Add(1);
    watchdog_scans_.fetch_add(1, std::memory_order_relaxed);
    for (const obs::ActiveSnapshot& request : flagged) {
      CORROB_LOG_WARNING
          << "watchdog: stuck request seq=" << request.sequence
          << " id=" << request.client_request_id
          << " tenant=" << request.tenant
          << " dataset=" << request.dataset
          << " method=" << request.method
          << " priority=" << request.priority
          << " age_ms=" << request.age_nanos / 1'000'000
          << " deadline_ms=" << request.deadline_nanos / 1'000'000;
    }
    if (!flagged.empty()) {
      metrics.watchdog_flagged->Add(static_cast<int64_t>(flagged.size()));
      watchdog_flagged_.fetch_add(static_cast<int64_t>(flagged.size()),
                                  std::memory_order_relaxed);
    }
    metrics.watchdog_stuck->Set(recorder_->stuck_now());
  }
}

void CorrobdServer::WatchDisconnects() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (auto& connection : connections_) {
        if (connection->done.load(std::memory_order_acquire)) continue;
        std::lock_guard<std::mutex> request_lock(connection->mutex);
        if (connection->active_request != nullptr &&
            PeerClosed(connection->fd.get())) {
          connection->active_request->Cancel(clock_->NowNanos());
        }
      }
    }
    (void)abort_token_.WaitForMs(kHousekeepingSliceMs);  // lint: discard-ok: watcher cadence sleep
  }
}

void CorrobdServer::RunConnection(Connection* connection) {
  // Reading the next request stops on drain (idle connections close
  // promptly when the daemon drains) — but never mid-request: request
  // execution only watches the abort token.
  const StopSignal read_stop(&read_interrupt_, Deadline());
  while (!draining_.load(std::memory_order_acquire) &&
         !read_stop.ShouldStop()) {
    Result<std::optional<Frame>> next =
        ReadFrameOrEof(connection->fd.get(), read_stop);
    if (!next.ok()) {
      // Drain interrupted an idle read: a silent close, not an error
      // — the client is sitting at a frame boundary and sees a clean
      // EOF, exactly like a fresh goodbye.
      if (next.status().code() == StatusCode::kCancelled) break;
      // Framing is broken (bad magic, checksum, oversize, I/O error):
      // report the typed error if the pipe still works, then close —
      // the stream can no longer be trusted to be frame-aligned.
      Frame error;
      error.type = FrameType::kErrorResponse;
      ErrorResponse body;
      body.code = static_cast<uint8_t>(next.status().code());
      body.message = next.status().message();
      error.payload = EncodeErrorResponse(body);
      (void)WriteFrame(connection->fd.get(), error, WriteStop());  // lint: discard-ok: already closing on error
      break;
    }
    if (!next.ValueOrDie().has_value()) break;  // clean goodbye
    const Frame& frame = *next.ValueOrDie();
    const Status handled = HandleFrame(connection, frame.type, frame.payload);
    if (!handled.ok()) break;
  }
  connection->fd.Reset();
}

Status CorrobdServer::HandleFrame(Connection* connection, FrameType type,
                                  const std::string& payload) {
  switch (type) {
    case FrameType::kPingRequest: {
      Frame pong;
      pong.type = FrameType::kPongResponse;
      pong.payload = payload;  // echo
      Status written = WriteFrame(connection->fd.get(), pong, WriteStop());
      if (written.ok()) {
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::Get().responses_sent->Add(1);
      }
      return written;
    }
    case FrameType::kStatsRequest:
      return HandleStats(connection);
    case FrameType::kIntrospectRequest:
      return HandleIntrospect(connection, payload);
    case FrameType::kCorroborateRequest:
      return HandleCorroborate(connection, payload);
    case FrameType::kBatchRequest:
      return HandleBatch(connection, payload);
    case FrameType::kReloadRequest:
      return HandleReload(connection, payload);
    case FrameType::kApplyDeltaRequest:
      return HandleApplyDelta(connection, payload);
    default: {
      // A response type arriving at the server: answer in-band and
      // keep the connection (framing itself is intact).
      Frame error;
      error.type = FrameType::kErrorResponse;
      ErrorResponse body;
      body.code = static_cast<uint8_t>(StatusCode::kInvalidArgument);
      body.message = "server cannot handle frame type '" +
                     std::string(FrameTypeName(type)) + "'";
      error.payload = EncodeErrorResponse(body);
      Status written = WriteFrame(connection->fd.get(), error, WriteStop());
      if (written.ok()) {
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::Get().responses_sent->Add(1);
      }
      return written;
    }
  }
}

Status CorrobdServer::HandleStats(Connection* connection) {
  obs::JsonValue stats = obs::JsonValue::Object();
  stats.Set("schema", obs::JsonValue::Str("corrob.serving_stats/4"));
  stats.Set("running",
            obs::JsonValue::Int(admission_->running()));
  obs::JsonValue queued = obs::JsonValue::Object();
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    queued.Set(std::string(PriorityName(static_cast<Priority>(cls))),
               obs::JsonValue::Int(
                   admission_->queued(static_cast<Priority>(cls))));
  }
  stats.Set("queued", std::move(queued));
  obs::JsonValue names = obs::JsonValue::Array();
  for (const auto& served : datasets_) {
    names.Append(obs::JsonValue::Str(served->name));
  }
  stats.Set("datasets", std::move(names));
  stats.Set("responses_sent",
            obs::JsonValue::Int(
                responses_sent_.load(std::memory_order_relaxed)));
  stats.Set("draining",
            obs::JsonValue::Bool(draining_.load(std::memory_order_acquire)));

  obs::JsonValue wal_json = obs::JsonValue::Object();
  wal_json.Set("enabled", obs::JsonValue::Bool(!options_.wal_dir.empty()));
  int64_t deltas_total = 0;
  int64_t unhealthy = 0;
  for (const auto& served : datasets_) {
    deltas_total += static_cast<int64_t>(
        served->deltas_applied.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> wal_lock(served->wal_mutex);
    if (served->wal != nullptr && !served->wal_healthy) ++unhealthy;
  }
  wal_json.Set("deltas_applied", obs::JsonValue::Int(deltas_total));
  wal_json.Set("unhealthy_datasets", obs::JsonValue::Int(unhealthy));
  stats.Set("wal", std::move(wal_json));

  const CacheStats cache = cache_->stats();
  obs::JsonValue cache_json = obs::JsonValue::Object();
  cache_json.Set("hits", obs::JsonValue::Int(cache.hits));
  cache_json.Set("misses", obs::JsonValue::Int(cache.misses));
  cache_json.Set("insertions", obs::JsonValue::Int(cache.insertions));
  cache_json.Set("evictions", obs::JsonValue::Int(cache.evictions));
  cache_json.Set("invalidations", obs::JsonValue::Int(cache.invalidations));
  cache_json.Set("entries", obs::JsonValue::Int(cache.entries));
  stats.Set("cache", std::move(cache_json));

  const RunCoalescer::Stats coalesce = coalescer_.stats();
  obs::JsonValue coalesce_json = obs::JsonValue::Object();
  coalesce_json.Set("leaders", obs::JsonValue::Int(coalesce.leaders));
  coalesce_json.Set("followers", obs::JsonValue::Int(coalesce.followers));
  coalesce_json.Set("shared", obs::JsonValue::Int(coalesce.shared));
  coalesce_json.Set("promotions", obs::JsonValue::Int(coalesce.promotions));
  coalesce_json.Set("abandoned", obs::JsonValue::Int(coalesce.abandoned));
  stats.Set("coalesce", std::move(coalesce_json));

  const TenantQuotas::Stats quota = quotas_->stats();
  obs::JsonValue quota_json = obs::JsonValue::Object();
  quota_json.Set("rate_rejections",
                 obs::JsonValue::Int(quota.rate_rejections));
  quota_json.Set("slot_rejections",
                 obs::JsonValue::Int(quota.slot_rejections));
  stats.Set("quota", std::move(quota_json));

  const obs::FlightRecorderStats recorder = recorder_->stats();
  obs::JsonValue recorder_json = obs::JsonValue::Object();
  recorder_json.Set("started", obs::JsonValue::Int(recorder.started));
  recorder_json.Set("completed", obs::JsonValue::Int(recorder.completed));
  recorder_json.Set("active", obs::JsonValue::Int(recorder.active));
  recorder_json.Set("dropped", obs::JsonValue::Int(recorder.dropped));
  recorder_json.Set("slow", obs::JsonValue::Int(recorder.slow));
  stats.Set("recorder", std::move(recorder_json));

  obs::JsonValue watchdog_json = obs::JsonValue::Object();
  watchdog_json.Set("scans",
                    obs::JsonValue::Int(watchdog_scans_.load(
                        std::memory_order_relaxed)));
  watchdog_json.Set("flagged",
                    obs::JsonValue::Int(watchdog_flagged_.load(
                        std::memory_order_relaxed)));
  watchdog_json.Set("stuck", obs::JsonValue::Int(recorder_->stuck_now()));
  stats.Set("watchdog", std::move(watchdog_json));

  Frame response;
  response.type = FrameType::kStatsResponse;
  response.payload = stats.Dump();
  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

Status CorrobdServer::HandleIntrospect(Connection* connection,
                                       const std::string& payload) {
  Frame response;
  Result<IntrospectRequest> decoded = DecodeIntrospectRequest(payload);
  if (!decoded.ok()) {
    response.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(decoded.status().code());
    body.message = decoded.status().message();
    response.payload = EncodeErrorResponse(body);
    ServerMetrics::Get().requests_failed->Add(1);
  } else {
    const IntrospectRequest& request = decoded.ValueOrDie();
    // Bound both knobs by the ring capacity: asking for more than the
    // recorder can hold is harmless, but the caps keep a hostile u32
    // from turning into an int overflow.
    const int top_k = static_cast<int>(
        std::min<uint32_t>(request.top_k, 1u << 20));
    const int max_recent = static_cast<int>(
        std::min<uint32_t>(request.max_recent, 1u << 20));

    obs::JsonValue doc = obs::JsonValue::Object();
    doc.Set("schema", obs::JsonValue::Str("corrob.introspect/1"));
    const int64_t now = clock_->NowNanos();
    doc.Set("now_nanos", obs::JsonValue::Int(now));

    obs::JsonValue active = obs::JsonValue::Array();
    for (const obs::ActiveSnapshot& snap : recorder_->ActiveRequests(now)) {
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("seq",
              obs::JsonValue::Int(static_cast<int64_t>(snap.sequence)));
      row.Set("id", obs::JsonValue::Str(snap.client_request_id));
      row.Set("tenant", obs::JsonValue::Str(snap.tenant));
      row.Set("dataset", obs::JsonValue::Str(snap.dataset));
      row.Set("method", obs::JsonValue::Str(snap.method));
      row.Set("priority", obs::JsonValue::Str(snap.priority));
      row.Set("age_nanos", obs::JsonValue::Int(snap.age_nanos));
      row.Set("deadline_nanos", obs::JsonValue::Int(snap.deadline_nanos));
      row.Set("flagged", obs::JsonValue::Bool(snap.flagged_stuck));
      active.Append(std::move(row));
    }
    doc.Set("active", std::move(active));

    doc.Set("recorder", recorder_->SnapshotJson(top_k, max_recent));

    obs::JsonValue watchdog = obs::JsonValue::Object();
    watchdog.Set("scans",
                 obs::JsonValue::Int(watchdog_scans_.load(
                     std::memory_order_relaxed)));
    watchdog.Set("flagged",
                 obs::JsonValue::Int(watchdog_flagged_.load(
                     std::memory_order_relaxed)));
    watchdog.Set("stuck", obs::JsonValue::Int(recorder_->stuck_now()));
    doc.Set("watchdog", std::move(watchdog));

    doc.Set("metrics", obs::MetricsRegistry::Global().Snapshot().ToJson());

    response.type = FrameType::kIntrospectResponse;
    response.payload = doc.Dump();
  }

  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

CorrobdServer::SubResponse CorrobdServer::ExecuteOne(
    Connection* connection, const SubRequest& request, bool charge_rate) {
  ServerMetrics& metrics = ServerMetrics::Get();
  SubResponse out;

  const int cls = static_cast<int>(request.priority);
  const int64_t timeout_ms =
      request.timeout_ms > 0
          ? static_cast<int64_t>(request.timeout_ms)
          : options_.admission.default_timeout_ms[cls];

  // Flight-recorder entry. Every outcome below funnels through
  // finish_record exactly once; paths that never produced bytes of
  // their own (shed, quota, error) record role=rejected, which keeps
  // them out of the cold/hit latency histograms. A disarmed recorder
  // must cost a branch and nothing else — the metadata strings are
  // only assembled when a record will actually be kept
  // (bench_flight_recorder pins this).
  uint64_t record = 0;
  if (recorder_->armed()) {
    obs::RequestStart start;
    start.client_request_id = request.request_id;
    start.tenant = request.tenant;
    start.dataset = request.dataset;
    start.method = request.algorithm;
    start.priority = std::string(PriorityName(request.priority));
    start.deadline_nanos = timeout_ms > 0 ? timeout_ms * 1'000'000 : 0;
    record = recorder_->Begin(std::move(start));
  }
  obs::RequestFinish finish;
  finish.role = obs::RequestRole::kRejected;
  const auto finish_record = [&](std::string_view termination) {
    if (record == 0) return;
    finish.termination = std::string(termination);
    finish.response_bytes = static_cast<int64_t>(out.payload.size());
    const obs::FinishSummary summary = recorder_->End(record, finish);
    if (summary.slow) {
      metrics.slow_requests->Add(1);
      CORROB_LOG_WARNING
          << "slow request seq=" << record << " id=" << request.request_id
          << " tenant=" << request.tenant
          << " dataset=" << request.dataset
          << " priority=" << PriorityName(request.priority)
          << " termination=" << finish.termination
          << " total_ms=" << summary.total_nanos / 1'000'000;
    }
  };

  const auto fail = [&](const Status& status) {
    out.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(status.code());
    body.message = status.message();
    out.payload = EncodeErrorResponse(body);
    metrics.requests_failed->Add(1);
    finish_record("error");
  };
  const auto quota_reject = [&](const QuotaDecision& decision) {
    out.type = FrameType::kQuotaExceededResponse;
    QuotaExceededResponse body;
    body.retry_after_ms = decision.retry_after_ms;
    body.tenant = request.tenant;
    body.message = decision.reason;
    out.payload = EncodeQuotaExceededResponse(body);
    metrics.requests_quota_rejected->Add(1);
    finish_record("quota_rejected");
  };

  if (charge_rate) {
    const QuotaDecision rate = quotas_->ChargeRate(request.tenant, 1);
    if (!rate.allowed) {
      quota_reject(rate);
      return out;
    }
  }

  ServedDataset* served = FindDataset(request.dataset);
  if (served == nullptr) {
    fail(Status::NotFound(
        "dataset '" + request.dataset +
        "' is not loaded (corrobd serves only datasets named at "
        "startup)"));
    return out;
  }
  Result<std::unique_ptr<Corroborator>> corroborator = MakeCorroborator(
      request.algorithm,
      CorroboratorOptions{.num_threads = options_.run_threads});
  if (!corroborator.ok()) {
    fail(corroborator.status());
    return out;
  }

  // Snapshot data + generation together so a concurrent reload cannot
  // pair new data with an old cache key (or vice versa).
  std::shared_ptr<const Dataset> data;
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(served->mutex);
    data = served->dataset;
    generation = served->generation.load(std::memory_order_acquire);
  }

  const int64_t effective_rounds =
      request.max_rounds > 0
          ? static_cast<int64_t>(request.max_rounds)
          : options_.admission.default_max_rounds[cls];
  const std::string key =
      CacheKey(request.dataset, generation, request.algorithm,
               effective_rounds, request.options);

  // Cache fast path: replay the exact bytes of the original cold run.
  // No admission slot, no tenant run slot — a hit costs the daemon no
  // corroboration work (the rate token above was still charged).
  if (std::optional<std::string> cached = cache_->Lookup(key)) {
    out.type = FrameType::kResultResponse;
    out.payload = *std::move(cached);
    finish.role = obs::RequestRole::kCacheHit;
    finish_record("cached");
    return out;
  }
  recorder_->AddSpan(record, "cache_miss");

  const QuotaDecision slot = quotas_->TryEnterRun(request.tenant);
  if (!slot.allowed) {
    quota_reject(slot);
    return out;
  }

  // Per-request isolation: child token (disconnect watcher and abort
  // fan-in) + class-defaulted deadline and budget.
  CancellationToken request_token(&abort_token_);
  const Deadline deadline =
      timeout_ms > 0
          ? Deadline::AfterMs(clock_, static_cast<double>(timeout_ms))
          : Deadline();
  const StopSignal request_stop(&request_token, deadline);

  const AdmissionDecision admitted =
      admission_->Admit(request.priority, request_stop);
  metrics.queue_wait_nanos->Record(admitted.queue_wait_nanos);
  finish.admission_wait_nanos = admitted.queue_wait_nanos;
  switch (admitted.outcome) {
    case AdmissionDecision::Outcome::kShed: {
      out.type = FrameType::kOverloadedResponse;
      OverloadedResponse body;
      body.retry_after_ms = admitted.retry_after_ms;
      body.queue_depth = admitted.queue_depth;
      body.message = "admission queue for class '" +
                     std::string(PriorityName(request.priority)) +
                     "' is full";
      out.payload = EncodeOverloadedResponse(body);
      metrics.requests_shed->Add(1);
      finish_record("shed");
      quotas_->ExitRun(request.tenant);
      return out;
    }
    case AdmissionDecision::Outcome::kCancelled:
      fail(Status::Cancelled(
          request_stop.deadline_expired()
              ? "request deadline expired while queued for admission"
              : "request cancelled while queued for admission"));
      quotas_->ExitRun(request.tenant);
      return out;
    case AdmissionDecision::Outcome::kAdmitted:
      break;
  }
  metrics.requests_admitted->Add(1);
  metrics.running->Set(admission_->running());
  recorder_->AddSpan(record, "admitted");
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->active_request = &request_token;
  }

  // Coalesce: first arrival for the key runs; the rest wait for its
  // bytes. Followers keep holding their admission slot while waiting
  // (they are occupying daemon patience either way); a follower whose
  // own stop fires detaches without touching the leader, and a leader
  // that cannot share (error or timing-truncated run) hands the key
  // to one follower, which re-runs — the promotion loop below.
  RunCoalescer::Ticket ticket = coalescer_.Attach(key);
  recorder_->AddSpan(record, "coalesce_attach");
  const bool was_follower =
      ticket.role() == RunCoalescer::Role::kFollower;
  const int64_t section_started = clock_->NowNanos();
  for (;;) {
    if (ticket.role() == RunCoalescer::Role::kFollower) {
      RunCoalescer::WaitResult waited =
          coalescer_.Wait(&ticket, request_stop);
      if (waited.outcome == RunCoalescer::WaitOutcome::kGotResult) {
        out.type = FrameType::kResultResponse;
        out.payload = std::move(waited.payload);
        finish.role = obs::RequestRole::kFollower;
        finish_record("coalesced");
        break;
      }
      if (waited.outcome == RunCoalescer::WaitOutcome::kCancelled) {
        fail(Status::Cancelled(
            request_stop.deadline_expired()
                ? "request deadline expired while awaiting a "
                  "coalesced result"
                : "request cancelled while awaiting a coalesced "
                  "result"));
        break;
      }
      // kPromoted: this ticket is now the leader; run it ourselves.
      continue;
    }

    // Leader path. Test hook: holds the request in-flight while
    // armed, so overload and drain scenarios are deterministic.
    while (Failpoints::IsArmed("server.request.stall") &&
           !request_stop.ShouldStop()) {
      (void)request_token.WaitForMs(1.0);  // lint: discard-ok: stall hook polls stop each slice
    }
    // Harder stall for the watchdog tests: deliberately ignores the
    // request deadline so an in-flight request can exceed N× its
    // allowance; only cancellation (disconnect, drain abort) or
    // disarming the failpoint releases it.
    while (Failpoints::IsArmed("server.request.stall_hard") &&
           !request_token.cancelled()) {
      (void)request_token.WaitForMs(1.0);  // lint: discard-ok: stall hook polls cancellation each slice
    }

    ResourceBudget budget;
    budget.max_rounds = effective_rounds;
    RunContext context;
    context.WithCancellation(&request_token)
        .WithDeadline(deadline)
        .WithBudget(budget);

    recorder_->AddSpan(record, "run_start");
    const int64_t run_started = clock_->NowNanos();
    Result<CorroborationResult> run =
        Status::Internal("request failpoint");
    const Status injected = Failpoints::Check("server.request.fail");
    if (injected.ok()) {
      run = corroborator.ValueOrDie()->Run(*data, context);
    } else {
      run = injected;
    }
    const int64_t service_nanos = clock_->NowNanos() - run_started;
    metrics.service_nanos->Record(service_nanos);
    finish.service_nanos = service_nanos;
    recorder_->AddSpan(record, "run_end");

    if (!run.ok()) {
      fail(run.status());
      coalescer_.Abandon(ticket);
      break;
    }
    const CorroborationResult& result = run.ValueOrDie();
    CorroborateResponse body;
    body.algorithm = result.algorithm;
    body.termination = static_cast<uint8_t>(result.termination);
    body.iterations = static_cast<uint32_t>(result.iterations);
    body.fact_probability = result.fact_probability;
    body.source_trust = result.source_trust;
    out.type = FrameType::kResultResponse;
    out.payload = EncodeCorroborateResponse(body);
    if (IsShareableTermination(body.termination)) {
      cache_->Insert(key, request.dataset, out.payload);
      coalescer_.Publish(ticket, out.payload);
      finish.role = was_follower ? obs::RequestRole::kPromoted
                                 : obs::RequestRole::kLeader;
    } else {
      coalescer_.Abandon(ticket);
      // A truncated-but-answered run produced its own private bytes.
      finish.role = was_follower ? obs::RequestRole::kPromoted
                                 : obs::RequestRole::kCold;
    }
    finish_record(TerminationName(result.termination));
    break;
  }

  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->active_request = nullptr;
  }
  admission_->Release(request.priority,
                      clock_->NowNanos() - section_started);
  metrics.running->Set(admission_->running());
  quotas_->ExitRun(request.tenant);
  return out;
}

Status CorrobdServer::HandleCorroborate(Connection* connection,
                                        const std::string& payload) {
  Frame response;
  Result<CorroborateRequest> decoded = DecodeCorroborateRequest(payload);
  if (!decoded.ok()) {
    response.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(decoded.status().code());
    body.message = decoded.status().message();
    response.payload = EncodeErrorResponse(body);
    ServerMetrics::Get().requests_failed->Add(1);
  } else {
    const CorroborateRequest& request = decoded.ValueOrDie();
    SubRequest sub;
    sub.priority = request.priority;
    sub.tenant = request.tenant;
    sub.dataset = request.dataset;
    sub.algorithm = request.algorithm;
    sub.timeout_ms = request.timeout_ms;
    sub.max_rounds = request.max_rounds;
    sub.options = request.options;
    sub.request_id = request.request_id;
    SubResponse result = ExecuteOne(connection, sub, /*charge_rate=*/true);
    response.type = result.type;
    response.payload = std::move(result.payload);
    // After the cache/coalescer: the shared canonical payload stays
    // id-free; only this client's copy grows the echo.
    AttachRequestId(&response.payload, request.request_id);
  }

  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

Status CorrobdServer::HandleBatch(Connection* connection,
                                  const std::string& payload) {
  Frame response;
  Result<BatchRequest> decoded = DecodeBatchRequest(payload);
  if (!decoded.ok()) {
    response.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(decoded.status().code());
    body.message = decoded.status().message();
    response.payload = EncodeErrorResponse(body);
    ServerMetrics::Get().requests_failed->Add(1);
  } else {
    const BatchRequest& request = decoded.ValueOrDie();
    // The whole batch charges the tenant's rate bucket up front —
    // items.size() admission units, all or nothing.
    const QuotaDecision rate = quotas_->ChargeRate(
        request.tenant, static_cast<int>(request.items.size()));
    if (!rate.allowed) {
      response.type = FrameType::kQuotaExceededResponse;
      QuotaExceededResponse body;
      body.retry_after_ms = rate.retry_after_ms;
      body.tenant = request.tenant;
      body.message = rate.reason;
      response.payload = EncodeQuotaExceededResponse(body);
      ServerMetrics::Get().requests_quota_rejected->Add(1);
    } else {
      BatchResponse batch;
      batch.items.reserve(request.items.size());
      for (const BatchItem& item : request.items) {
        SubRequest sub;
        sub.priority = request.priority;
        sub.tenant = request.tenant;
        sub.dataset = item.dataset;
        sub.algorithm = item.algorithm;
        sub.timeout_ms = item.timeout_ms;
        sub.max_rounds = item.max_rounds;
        sub.options = item.options;
        SubResponse result =
            ExecuteOne(connection, sub, /*charge_rate=*/false);
        BatchItemResponse encoded;
        encoded.type = static_cast<uint8_t>(result.type);
        encoded.payload = std::move(result.payload);
        batch.items.push_back(std::move(encoded));
      }
      response.type = FrameType::kBatchResponse;
      response.payload = EncodeBatchResponse(batch);
    }
  }

  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

Status CorrobdServer::HandleReload(Connection* connection,
                                   const std::string& payload) {
  Frame response;
  const auto respond_error = [&](const Status& status) {
    response.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(status.code());
    body.message = status.message();
    response.payload = EncodeErrorResponse(body);
    ServerMetrics::Get().requests_failed->Add(1);
  };

  Result<ReloadRequest> decoded = DecodeReloadRequest(payload);
  if (!decoded.ok()) {
    respond_error(decoded.status());
  } else {
    const ReloadRequest& request = decoded.ValueOrDie();
    ReloadResponse body;
    Status reloaded = Status::OK();
    if (!request.dataset.empty()) {
      ServedDataset* served = FindDataset(request.dataset);
      if (served == nullptr) {
        reloaded = Status::NotFound("dataset '" + request.dataset +
                                    "' is not loaded");
      } else {
        reloaded = ReloadDataset(served);
        if (reloaded.ok()) {
          body.datasets_reloaded = 1;
          body.generation =
              served->generation.load(std::memory_order_acquire);
        }
      }
    } else {
      for (const auto& served : datasets_) {
        reloaded = ReloadDataset(served.get());
        if (!reloaded.ok()) break;
        ++body.datasets_reloaded;
        body.generation =
            std::max(body.generation,
                     served->generation.load(std::memory_order_acquire));
      }
    }
    if (!reloaded.ok()) {
      respond_error(reloaded);
    } else {
      response.type = FrameType::kReloadResponse;
      response.payload = EncodeReloadResponse(body);
    }
  }

  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

Status CorrobdServer::HandleApplyDelta(Connection* connection,
                                       const std::string& payload) {
  Frame response;
  const auto respond_error = [&](const Status& status) {
    response.type = FrameType::kErrorResponse;
    ErrorResponse body;
    body.code = static_cast<uint8_t>(status.code());
    body.message = status.message();
    response.payload = EncodeErrorResponse(body);
    ServerMetrics::Get().requests_failed->Add(1);
  };

  Result<ApplyDeltaRequest> decoded = DecodeApplyDeltaRequest(payload);
  if (!decoded.ok()) {
    respond_error(decoded.status());
  } else if (options_.wal_dir.empty()) {
    respond_error(Status::FailedPrecondition(
        "corrobd is running without --wal; delta ingestion is "
        "disabled"));
  } else {
    const ApplyDeltaRequest& request = decoded.ValueOrDie();
    ServedDataset* served = FindDataset(request.dataset);
    if (served == nullptr) {
      respond_error(Status::NotFound("dataset '" + request.dataset +
                                     "' is not loaded"));
    } else {
      // One mutator at a time. Readers never wait on this lock: they
      // snapshot the shared_ptr under served->mutex, which an apply
      // only takes for the final swap.
      std::lock_guard<std::mutex> wal_lock(served->wal_mutex);
      Status applied = Status::OK();
      if (!served->wal_healthy || served->wal == nullptr) {
        applied = Status::WalUnavailable(
            "dataset '" + served->name +
            "' is serving read-only: its write-ahead log previously "
            "failed (restart corrobd to recover)");
      }
      std::shared_ptr<const Dataset> current;
      if (applied.ok()) {
        std::lock_guard<std::mutex> lock(served->mutex);
        current = served->dataset;
      }
      // Validate-and-build before the log sees anything, so a delta
      // batch the core rejects leaves both the WAL and the resident
      // dataset untouched.
      Result<Dataset> rebuilt =
          Status::FailedPrecondition("delta rebuild never ran");
      if (applied.ok()) {
        rebuilt = ApplyDeltasToDataset(*current, request.deltas);
        if (!rebuilt.ok()) applied = rebuilt.status();
      }
      if (applied.ok()) {
        // Durability before the ack: the whole batch reaches the log
        // (and the disk, under the always policy) as ONE framed
        // record before the client hears anything. One frame means
        // all-or-nothing: a NACKed batch can never leave a durable
        // prefix of itself for the next restart to replay.
        applied = served->wal->AppendBatch(request.deltas);
        if (!applied.ok()) {
          // The log can no longer be trusted to be ahead of the
          // resident state, so stop mutating: reads continue from
          // the snapshot, writes get the typed code below.
          served->wal_healthy = false;
          ServerMetrics::Get().wal_failures->Add(1);
          CORROB_LOG_WARNING
              << "corrobd: WAL append failed for dataset '"
              << served->name << "' (" << applied.message()
              << "); dataset degrades to read-only serving";
          applied = Status::WalUnavailable(
              "WAL append failed for dataset '" + served->name +
              "': " + applied.message() +
              " (dataset now serves read-only)");
        }
      }
      if (!applied.ok()) {
        respond_error(applied);
      } else {
        {
          std::lock_guard<std::mutex> lock(served->mutex);
          served->dataset = std::make_shared<const Dataset>(
              std::move(rebuilt).ValueOrDie());
          served->generation.fetch_add(1, std::memory_order_release);
        }
        cache_->InvalidateDataset(served->name);
        served->deltas_applied.fetch_add(request.deltas.size(),
                                         std::memory_order_relaxed);
        ServerMetrics::Get().deltas_applied->Add(
            static_cast<int64_t>(request.deltas.size()));
        ApplyDeltaResponse body;
        body.applied = static_cast<uint32_t>(request.deltas.size());
        body.generation =
            served->generation.load(std::memory_order_acquire);
        response.type = FrameType::kApplyDeltaResponse;
        response.payload = EncodeApplyDeltaResponse(body);
      }
    }
  }

  Status written = WriteFrame(connection->fd.get(), response, WriteStop());
  if (written.ok()) {
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().responses_sent->Add(1);
  }
  return written;
}

}  // namespace server
}  // namespace corrob
