#include "server/coalesce.h"

#include <chrono>

#include "obs/metrics.h"

namespace corrob {
namespace server {

namespace {

/// Poll cadence for follower waits; StopSignal has no wakeup fd, so
/// cancellation latency is bounded by this instead.
constexpr std::chrono::milliseconds kWaitPollInterval{5};

struct CoalesceMetrics {
  obs::Counter* leaders;
  obs::Counter* followers;
  obs::Counter* shared;
  obs::Counter* promotions;
  obs::Counter* abandoned;

  static CoalesceMetrics& Get() {
    static CoalesceMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      CoalesceMetrics m;
      m.leaders = registry.GetCounter("corrob.server.coalesce.leaders");
      m.followers = registry.GetCounter("corrob.server.coalesce.followers");
      m.shared = registry.GetCounter("corrob.server.coalesce.shared");
      m.promotions =
          registry.GetCounter("corrob.server.coalesce.promotions");
      m.abandoned = registry.GetCounter("corrob.server.coalesce.abandoned");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

/// Shared state of one in-flight computation. All fields are guarded
/// by the coalescer's mutex; the cv shares that mutex.
struct RunCoalescer::Ticket::Flight {
  std::string key;
  /// Followers attached and not yet resolved.
  int waiters = 0;
  bool published = false;
  /// Leadership is up for grabs: the previous leader abandoned and no
  /// follower has claimed the flight yet.
  bool orphaned = false;
  std::string payload;
  std::condition_variable cv;
};

RunCoalescer::Ticket RunCoalescer::Attach(const std::string& key) {
  Ticket ticket;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = flights_.find(key);
  if (it == flights_.end()) {
    auto flight = std::make_shared<Ticket::Flight>();
    flight->key = key;
    flights_.emplace(key, flight);
    ticket.role_ = Role::kLeader;
    ticket.flight_ = std::move(flight);
    ++stats_.leaders;
    CoalesceMetrics::Get().leaders->Add(1);
  } else {
    ticket.role_ = Role::kFollower;
    ticket.flight_ = it->second;
    ++ticket.flight_->waiters;
    ++stats_.followers;
    CoalesceMetrics::Get().followers->Add(1);
  }
  return ticket;
}

void RunCoalescer::Publish(const Ticket& ticket,
                           const std::string& payload) {
  auto& flight = *ticket.flight_;
  std::lock_guard<std::mutex> lock(mutex_);
  flight.published = true;
  flight.payload = payload;
  const auto it = flights_.find(flight.key);
  if (it != flights_.end() && it->second == ticket.flight_) {
    flights_.erase(it);
  }
  flight.cv.notify_all();
}

void RunCoalescer::Abandon(const Ticket& ticket) {
  auto& flight = *ticket.flight_;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.abandoned;
  CoalesceMetrics::Get().abandoned->Add(1);
  if (flight.waiters > 0) {
    // Leave the flight mapped: a waiter will claim leadership, and
    // new arrivals keep following under the same key.
    flight.orphaned = true;
    flight.cv.notify_all();
    return;
  }
  const auto it = flights_.find(flight.key);
  if (it != flights_.end() && it->second == ticket.flight_) {
    flights_.erase(it);
  }
}

// Justified: the bounded-slice cv wait needs std::unique_lock, which
// carries no capability annotations, so the analysis would flag the
// flights_/stats_ accesses in the wait loop as unlocked. The
// discipline is pinned dynamically by the TSan job and the
// coalescing race tests.
RunCoalescer::WaitResult RunCoalescer::Wait(Ticket* ticket,
                                            const StopSignal& stop)
    CORROB_NO_THREAD_SAFETY_ANALYSIS {
  auto& flight = *ticket->flight_;
  WaitResult result;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (flight.published) {
      --flight.waiters;
      result.outcome = WaitOutcome::kGotResult;
      result.payload = flight.payload;
      ++stats_.shared;
      CoalesceMetrics::Get().shared->Add(1);
      return result;
    }
    // A stopped follower declines promotion, so the stop check comes
    // before the orphan claim.
    if (stop.ShouldStop()) {
      --flight.waiters;
      // If leadership is up for grabs and this was the last waiter,
      // nobody is left to run the flight: retire it so later arrivals
      // start fresh instead of following a ghost.
      if (flight.waiters == 0 && flight.orphaned) {
        flight.orphaned = false;
        const auto it = flights_.find(flight.key);
        if (it != flights_.end() && it->second == ticket->flight_) {
          flights_.erase(it);
        }
      }
      result.outcome = WaitOutcome::kCancelled;
      return result;
    }
    if (flight.orphaned) {
      flight.orphaned = false;
      --flight.waiters;
      ticket->role_ = Role::kLeader;
      result.outcome = WaitOutcome::kPromoted;
      ++stats_.promotions;
      ++stats_.leaders;
      CoalesceMetrics::Get().promotions->Add(1);
      CoalesceMetrics::Get().leaders->Add(1);
      return result;
    }
    // lint: cvwait-ok: bounded poll slice; the loop re-checks published/orphaned and stop.ShouldStop(), which no cv predicate can observe (StopSignal has no wakeup channel)
    flight.cv.wait_for(lock, kWaitPollInterval);
  }
}

RunCoalescer::Stats RunCoalescer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace server
}  // namespace corrob
