#include "server/protocol.h"

#include <bit>
#include <cstring>

#include "common/string_util.h"

namespace corrob {
namespace server {

namespace {

// ---------------------------------------------------------------
// Little-endian payload writer/reader with bounds-checked reads.
// ---------------------------------------------------------------

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void PutF64(std::string* out, double value) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
}

void PutString(std::string* out, std::string_view text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : rest_(payload) {}

  [[nodiscard]] Status ReadU8(uint8_t* out) {
    CORROB_RETURN_NOT_OK(Need(1, "u8"));
    *out = static_cast<uint8_t>(rest_[0]);
    rest_.remove_prefix(1);
    return Status::OK();
  }

  [[nodiscard]] Status ReadU32(uint32_t* out) {
    CORROB_RETURN_NOT_OK(Need(4, "u32"));
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(rest_[i]))
               << (8 * i);
    }
    rest_.remove_prefix(4);
    *out = value;
    return Status::OK();
  }

  [[nodiscard]] Status ReadF64(double* out) {
    CORROB_RETURN_NOT_OK(Need(8, "f64"));
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(rest_[i]))
              << (8 * i);
    }
    rest_.remove_prefix(8);
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }

  [[nodiscard]] Status ReadString(std::string* out) {
    uint32_t length = 0;
    CORROB_RETURN_NOT_OK(ReadU32(&length));
    CORROB_RETURN_NOT_OK(Need(length, "string body"));
    out->assign(rest_.substr(0, length));
    rest_.remove_prefix(length);
    return Status::OK();
  }

  [[nodiscard]] Status ReadF64Vector(std::vector<double>* out) {
    uint32_t count = 0;
    CORROB_RETURN_NOT_OK(ReadU32(&count));
    CORROB_RETURN_NOT_OK(Need(static_cast<size_t>(count) * 8, "f64 array"));
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      CORROB_RETURN_NOT_OK(ReadF64(&(*out)[i]));
    }
    return Status::OK();
  }

  /// Every decoder's final check: trailing bytes mean a version skew
  /// or a corrupted payload, both worth rejecting loudly.
  [[nodiscard]] Status ExpectEnd() const {
    if (!rest_.empty()) {
      return Status::ParseError("payload has " +
                                std::to_string(rest_.size()) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  [[nodiscard]] Status Need(size_t bytes, const char* what) const {
    if (rest_.size() < bytes) {
      return Status::ParseError("payload truncated reading " +
                                std::string(what) + ": need " +
                                std::to_string(bytes) + " bytes, have " +
                                std::to_string(rest_.size()));
    }
    return Status::OK();
  }

  std::string_view rest_;
};

[[nodiscard]] Status CheckVersion(PayloadReader& reader) {
  uint8_t version = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&version));
  if (version != kProtocolVersion) {
    return Status::FailedPrecondition(
        "payload codec version " + std::to_string(version) +
        " is not the supported version " +
        std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

}  // namespace

std::string_view PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

Result<Priority> ParsePriority(std::string_view text) {
  const std::string lowered = ToLower(Trim(text));
  if (lowered == "interactive") return Priority::kInteractive;
  if (lowered == "batch") return Priority::kBatch;
  if (lowered == "best_effort" || lowered == "besteffort" ||
      lowered == "best-effort") {
    return Priority::kBestEffort;
  }
  return Status::InvalidArgument(
      "unknown priority '" + std::string(text) +
      "' (expected interactive|batch|best_effort)");
}

std::string EncodeCorroborateRequest(const CorroborateRequest& request) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(request.priority));
  PutU32(&out, request.timeout_ms);
  PutU32(&out, request.max_rounds);
  PutString(&out, request.dataset);
  PutString(&out, request.algorithm);
  return out;
}

Result<CorroborateRequest> DecodeCorroborateRequest(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(CheckVersion(reader));
  CorroborateRequest request;
  uint8_t priority = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&priority));
  if (priority >= kNumPriorities) {
    return Status::InvalidArgument("unknown priority class " +
                                   std::to_string(priority));
  }
  request.priority = static_cast<Priority>(priority);
  CORROB_RETURN_NOT_OK(reader.ReadU32(&request.timeout_ms));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&request.max_rounds));
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.dataset));
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.algorithm));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

std::string EncodeCorroborateResponse(
    const CorroborateResponse& response) {
  std::string out;
  out.reserve(32 + 8 * (response.fact_probability.size() +
                        response.source_trust.size()));
  PutU8(&out, kProtocolVersion);
  PutString(&out, response.algorithm);
  PutU8(&out, response.termination);
  PutU32(&out, response.iterations);
  PutU32(&out, static_cast<uint32_t>(response.fact_probability.size()));
  for (double p : response.fact_probability) PutF64(&out, p);
  PutU32(&out, static_cast<uint32_t>(response.source_trust.size()));
  for (double t : response.source_trust) PutF64(&out, t);
  return out;
}

Result<CorroborateResponse> DecodeCorroborateResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(CheckVersion(reader));
  CorroborateResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.algorithm));
  CORROB_RETURN_NOT_OK(reader.ReadU8(&response.termination));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.iterations));
  CORROB_RETURN_NOT_OK(reader.ReadF64Vector(&response.fact_probability));
  CORROB_RETURN_NOT_OK(reader.ReadF64Vector(&response.source_trust));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeErrorResponse(const ErrorResponse& response) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, response.code);
  PutString(&out, response.message);
  return out;
}

Result<ErrorResponse> DecodeErrorResponse(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(CheckVersion(reader));
  ErrorResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&response.code));
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.message));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeOverloadedResponse(const OverloadedResponse& response) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU32(&out, response.retry_after_ms);
  PutU32(&out, response.queue_depth);
  PutString(&out, response.message);
  return out;
}

Result<OverloadedResponse> DecodeOverloadedResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(CheckVersion(reader));
  OverloadedResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.retry_after_ms));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.queue_depth));
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.message));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

}  // namespace server
}  // namespace corrob
