#include "server/protocol.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/string_util.h"

namespace corrob {
namespace server {

namespace {

// ---------------------------------------------------------------
// Little-endian payload writer/reader with bounds-checked reads.
// ---------------------------------------------------------------

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void PutF64(std::string* out, double value) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
}

void PutString(std::string* out, std::string_view text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

void PutOptions(std::string* out, const OptionList& options) {
  // Encode in canonical (sorted) order regardless of the order the
  // caller assembled the list in: permuted but semantically identical
  // option maps must be byte-identical on the wire.
  OptionList sorted = options;
  std::sort(sorted.begin(), sorted.end());
  PutU32(out, static_cast<uint32_t>(sorted.size()));
  for (const auto& [key, value] : sorted) {
    PutString(out, key);
    PutString(out, value);
  }
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : rest_(payload) {}

  [[nodiscard]] Status ReadU8(uint8_t* out) {
    CORROB_RETURN_NOT_OK(Need(1, "u8"));
    *out = static_cast<uint8_t>(rest_[0]);
    rest_.remove_prefix(1);
    return Status::OK();
  }

  [[nodiscard]] Status ReadU32(uint32_t* out) {
    CORROB_RETURN_NOT_OK(Need(4, "u32"));
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<uint8_t>(rest_[i]))
               << (8 * i);
    }
    rest_.remove_prefix(4);
    *out = value;
    return Status::OK();
  }

  [[nodiscard]] Status ReadU64(uint64_t* out) {
    CORROB_RETURN_NOT_OK(Need(8, "u64"));
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<uint8_t>(rest_[i]))
               << (8 * i);
    }
    rest_.remove_prefix(8);
    *out = value;
    return Status::OK();
  }

  [[nodiscard]] Status ReadF64(double* out) {
    CORROB_RETURN_NOT_OK(Need(8, "f64"));
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(rest_[i]))
              << (8 * i);
    }
    rest_.remove_prefix(8);
    *out = std::bit_cast<double>(bits);
    return Status::OK();
  }

  [[nodiscard]] Status ReadString(std::string* out) {
    uint32_t length = 0;
    CORROB_RETURN_NOT_OK(ReadU32(&length));
    CORROB_RETURN_NOT_OK(Need(length, "string body"));
    out->assign(rest_.substr(0, length));
    rest_.remove_prefix(length);
    return Status::OK();
  }

  [[nodiscard]] Status ReadF64Vector(std::vector<double>* out) {
    uint32_t count = 0;
    CORROB_RETURN_NOT_OK(ReadU32(&count));
    CORROB_RETURN_NOT_OK(Need(static_cast<size_t>(count) * 8, "f64 array"));
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      CORROB_RETURN_NOT_OK(ReadF64(&(*out)[i]));
    }
    return Status::OK();
  }

  [[nodiscard]] Status ReadOptions(OptionList* out) {
    uint32_t count = 0;
    CORROB_RETURN_NOT_OK(ReadU32(&count));
    // Each entry needs at least its two length prefixes.
    CORROB_RETURN_NOT_OK(Need(static_cast<size_t>(count) * 8, "options"));
    out->clear();
    out->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string key;
      std::string value;
      CORROB_RETURN_NOT_OK(ReadString(&key));
      CORROB_RETURN_NOT_OK(ReadString(&value));
      out->emplace_back(std::move(key), std::move(value));
    }
    // Canonicalize here too: a hand-rolled client that encoded in a
    // different order still produces one cache key server-side.
    return NormalizeOptions(out);
  }

  /// Every decoder's final check: trailing bytes mean a version skew
  /// or a corrupted payload, both worth rejecting loudly.
  [[nodiscard]] Status ExpectEnd() const {
    if (!rest_.empty()) {
      return Status::ParseError("payload has " +
                                std::to_string(rest_.size()) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  [[nodiscard]] Status Need(size_t bytes, const char* what) const {
    if (rest_.size() < bytes) {
      return Status::ParseError("payload truncated reading " +
                                std::string(what) + ": need " +
                                std::to_string(bytes) + " bytes, have " +
                                std::to_string(rest_.size()));
    }
    return Status::OK();
  }

  std::string_view rest_;
};

/// Reads the payload version byte and rejects anything outside the
/// supported window. Most payloads accept [1, current]; v2-only
/// payloads pass 2 as the floor.
[[nodiscard]] Result<uint8_t> ReadVersionInRange(PayloadReader& reader,
                                                 uint8_t min_version,
                                                 uint8_t max_version) {
  uint8_t version = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&version));
  if (version < min_version || version > max_version) {
    return Status::FailedPrecondition(
        "payload codec version " + std::to_string(version) +
        " is outside the supported range [" + std::to_string(min_version) +
        ", " + std::to_string(max_version) + "]");
  }
  return version;
}

}  // namespace

std::string_view PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

Result<Priority> ParsePriority(std::string_view text) {
  const std::string lowered = ToLower(Trim(text));
  if (lowered == "interactive") return Priority::kInteractive;
  if (lowered == "batch") return Priority::kBatch;
  if (lowered == "best_effort" || lowered == "besteffort" ||
      lowered == "best-effort") {
    return Priority::kBestEffort;
  }
  return Status::InvalidArgument(
      "unknown priority '" + std::string(text) +
      "' (expected interactive|batch|best_effort)");
}

Status NormalizeOptions(OptionList* options) {
  std::sort(options->begin(), options->end());
  for (size_t i = 1; i < options->size(); ++i) {
    if ((*options)[i].first == (*options)[i - 1].first) {
      return Status::InvalidArgument("duplicate option key '" +
                                     (*options)[i].first + "'");
    }
  }
  return Status::OK();
}

std::string EncodeCorroborateRequest(const CorroborateRequest& request) {
  return EncodeCorroborateRequest(request, kProtocolVersion);
}

std::string EncodeCorroborateRequest(const CorroborateRequest& request,
                                     uint8_t version) {
  std::string out;
  PutU8(&out, version);
  PutU8(&out, static_cast<uint8_t>(request.priority));
  PutU32(&out, request.timeout_ms);
  PutU32(&out, request.max_rounds);
  PutString(&out, request.dataset);
  PutString(&out, request.algorithm);
  if (version >= 2) {
    PutString(&out, request.tenant);
    PutOptions(&out, request.options);
  }
  if (version >= 3) {
    PutString(&out, request.request_id);
  }
  return out;
}

Result<CorroborateRequest> DecodeCorroborateRequest(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_ASSIGN_OR_RETURN(
      uint8_t version,
      ReadVersionInRange(reader, kMinCorroborateRequestVersion,
                         kProtocolVersion));
  CorroborateRequest request;
  uint8_t priority = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&priority));
  if (priority >= kNumPriorities) {
    return Status::InvalidArgument("unknown priority class " +
                                   std::to_string(priority));
  }
  request.priority = static_cast<Priority>(priority);
  CORROB_RETURN_NOT_OK(reader.ReadU32(&request.timeout_ms));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&request.max_rounds));
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.dataset));
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.algorithm));
  if (version >= 2) {
    CORROB_RETURN_NOT_OK(reader.ReadString(&request.tenant));
    CORROB_RETURN_NOT_OK(reader.ReadOptions(&request.options));
  }
  if (version >= 3) {
    CORROB_RETURN_NOT_OK(reader.ReadString(&request.request_id));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

std::string EncodeCorroborateResponse(
    const CorroborateResponse& response) {
  std::string out;
  out.reserve(32 + 8 * (response.fact_probability.size() +
                        response.source_trust.size()));
  // The response payload is deliberately still version 1: it carries
  // no v2 field and staying put keeps cached/coalesced/batch replies
  // byte-identical to any response a v1 peer recorded.
  PutU8(&out, 1);
  PutString(&out, response.algorithm);
  PutU8(&out, response.termination);
  PutU32(&out, response.iterations);
  PutU32(&out, static_cast<uint32_t>(response.fact_probability.size()));
  for (const double p : response.fact_probability) PutF64(&out, p);
  PutU32(&out, static_cast<uint32_t>(response.source_trust.size()));
  for (const double t : response.source_trust) PutF64(&out, t);
  return out;
}

Result<CorroborateResponse> DecodeCorroborateResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_ASSIGN_OR_RETURN(
      uint8_t version, ReadVersionInRange(reader, 1, kProtocolVersion));
  CorroborateResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.algorithm));
  CORROB_RETURN_NOT_OK(reader.ReadU8(&response.termination));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.iterations));
  CORROB_RETURN_NOT_OK(reader.ReadF64Vector(&response.fact_probability));
  CORROB_RETURN_NOT_OK(reader.ReadF64Vector(&response.source_trust));
  if (version >= 3) {
    CORROB_RETURN_NOT_OK(reader.ReadString(&response.request_id));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeErrorResponse(const ErrorResponse& response) {
  std::string out;
  PutU8(&out, 1);
  PutU8(&out, response.code);
  PutString(&out, response.message);
  return out;
}

Result<ErrorResponse> DecodeErrorResponse(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_ASSIGN_OR_RETURN(
      uint8_t version, ReadVersionInRange(reader, 1, kProtocolVersion));
  ErrorResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&response.code));
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.message));
  if (version >= 3) {
    CORROB_RETURN_NOT_OK(reader.ReadString(&response.request_id));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeOverloadedResponse(const OverloadedResponse& response) {
  std::string out;
  PutU8(&out, 1);
  PutU32(&out, response.retry_after_ms);
  PutU32(&out, response.queue_depth);
  PutString(&out, response.message);
  return out;
}

Result<OverloadedResponse> DecodeOverloadedResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_ASSIGN_OR_RETURN(
      uint8_t version, ReadVersionInRange(reader, 1, kProtocolVersion));
  OverloadedResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.retry_after_ms));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.queue_depth));
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.message));
  if (version >= 3) {
    CORROB_RETURN_NOT_OK(reader.ReadString(&response.request_id));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeQuotaExceededResponse(
    const QuotaExceededResponse& response) {
  std::string out;
  // Pinned at version 2: version 3 means "plus a trailing request id",
  // which only AttachRequestId produces.
  PutU8(&out, 2);
  PutU32(&out, response.retry_after_ms);
  PutString(&out, response.tenant);
  PutString(&out, response.message);
  return out;
}

Result<QuotaExceededResponse> DecodeQuotaExceededResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_ASSIGN_OR_RETURN(
      uint8_t version, ReadVersionInRange(reader, 2, kProtocolVersion));
  QuotaExceededResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.retry_after_ms));
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.tenant));
  CORROB_RETURN_NOT_OK(reader.ReadString(&response.message));
  if (version >= 3) {
    CORROB_RETURN_NOT_OK(reader.ReadString(&response.request_id));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

void AttachRequestId(std::string* payload, const std::string& request_id) {
  if (request_id.empty() || payload->empty()) return;
  (*payload)[0] = static_cast<char>(kProtocolVersion);
  PutString(payload, request_id);
}

std::string EncodeBatchRequest(const BatchRequest& request) {
  std::string out;
  // Batch payloads carry no v3 field; pinned at 2 (see version history).
  PutU8(&out, 2);
  PutU8(&out, static_cast<uint8_t>(request.priority));
  PutString(&out, request.tenant);
  PutU32(&out, static_cast<uint32_t>(request.items.size()));
  for (const BatchItem& item : request.items) {
    PutU32(&out, item.timeout_ms);
    PutU32(&out, item.max_rounds);
    PutString(&out, item.dataset);
    PutString(&out, item.algorithm);
    PutOptions(&out, item.options);
  }
  return out;
}

Result<BatchRequest> DecodeBatchRequest(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, 2, kProtocolVersion).status());
  BatchRequest request;
  uint8_t priority = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU8(&priority));
  if (priority >= kNumPriorities) {
    return Status::InvalidArgument("unknown priority class " +
                                   std::to_string(priority));
  }
  request.priority = static_cast<Priority>(priority);
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.tenant));
  uint32_t count = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&count));
  if (count == 0) {
    return Status::InvalidArgument("batch request has no items");
  }
  if (count > kMaxBatchItems) {
    return Status::InvalidArgument(
        "batch request has " + std::to_string(count) +
        " items; the cap is " + std::to_string(kMaxBatchItems));
  }
  request.items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BatchItem item;
    CORROB_RETURN_NOT_OK(reader.ReadU32(&item.timeout_ms));
    CORROB_RETURN_NOT_OK(reader.ReadU32(&item.max_rounds));
    CORROB_RETURN_NOT_OK(reader.ReadString(&item.dataset));
    CORROB_RETURN_NOT_OK(reader.ReadString(&item.algorithm));
    CORROB_RETURN_NOT_OK(reader.ReadOptions(&item.options));
    request.items.push_back(std::move(item));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

std::string EncodeBatchResponse(const BatchResponse& response) {
  std::string out;
  PutU8(&out, 2);
  PutU32(&out, static_cast<uint32_t>(response.items.size()));
  for (const BatchItemResponse& item : response.items) {
    PutU8(&out, item.type);
    PutString(&out, item.payload);
  }
  return out;
}

Result<BatchResponse> DecodeBatchResponse(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, 2, kProtocolVersion).status());
  BatchResponse response;
  uint32_t count = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&count));
  if (count > kMaxBatchItems) {
    return Status::InvalidArgument(
        "batch response has " + std::to_string(count) +
        " items; the cap is " + std::to_string(kMaxBatchItems));
  }
  response.items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BatchItemResponse item;
    CORROB_RETURN_NOT_OK(reader.ReadU8(&item.type));
    CORROB_RETURN_NOT_OK(reader.ReadString(&item.payload));
    response.items.push_back(std::move(item));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeReloadRequest(const ReloadRequest& request) {
  std::string out;
  // Reload payloads carry no v3 field; pinned at 2 (see version history).
  PutU8(&out, 2);
  PutString(&out, request.dataset);
  return out;
}

Result<ReloadRequest> DecodeReloadRequest(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, 2, kProtocolVersion).status());
  ReloadRequest request;
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.dataset));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

std::string EncodeReloadResponse(const ReloadResponse& response) {
  std::string out;
  PutU8(&out, 2);
  PutU32(&out, response.datasets_reloaded);
  PutU64(&out, response.generation);
  return out;
}

Result<ReloadResponse> DecodeReloadResponse(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, 2, kProtocolVersion).status());
  ReloadResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.datasets_reloaded));
  CORROB_RETURN_NOT_OK(reader.ReadU64(&response.generation));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeApplyDeltaRequest(const ApplyDeltaRequest& request) {
  std::string out;
  PutU8(&out, kApplyDeltaVersion);
  PutString(&out, request.dataset);
  PutU32(&out, static_cast<uint32_t>(request.deltas.size()));
  for (const WalRecord& record : request.deltas) {
    PutU8(&out, static_cast<uint8_t>(record.type));
    PutString(&out, record.source);
    PutString(&out, record.fact);
    // The vote byte travels for every record type so the layout stays
    // fixed-shape; it is only meaningful for add-vote.
    PutU8(&out, static_cast<uint8_t>(VoteToChar(record.vote)));
  }
  return out;
}

Result<ApplyDeltaRequest> DecodeApplyDeltaRequest(std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, kApplyDeltaVersion, kApplyDeltaVersion)
          .status());
  ApplyDeltaRequest request;
  CORROB_RETURN_NOT_OK(reader.ReadString(&request.dataset));
  uint32_t count = 0;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&count));
  if (count == 0) {
    return Status::InvalidArgument("apply-delta request has no deltas");
  }
  if (count > kMaxDeltaItems) {
    return Status::InvalidArgument(
        "apply-delta request has " + std::to_string(count) +
        " deltas; the cap is " + std::to_string(kMaxDeltaItems));
  }
  request.deltas.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WalRecord record;
    uint8_t type = 0;
    uint8_t vote_char = 0;
    CORROB_RETURN_NOT_OK(reader.ReadU8(&type));
    CORROB_RETURN_NOT_OK(reader.ReadString(&record.source));
    CORROB_RETURN_NOT_OK(reader.ReadString(&record.fact));
    CORROB_RETURN_NOT_OK(reader.ReadU8(&vote_char));
    switch (static_cast<WalRecordType>(type)) {
      case WalRecordType::kAddSource:
      case WalRecordType::kAddVote:
      case WalRecordType::kRetractVote:
        record.type = static_cast<WalRecordType>(type);
        break;
      case WalRecordType::kSnapshotMarker:
        return Status::InvalidArgument(
            "delta " + std::to_string(i) +
            ": snapshot markers are log metadata, not mutations");
      default:
        return Status::InvalidArgument("delta " + std::to_string(i) +
                                       ": unknown record type " +
                                       std::to_string(type));
    }
    if (record.type == WalRecordType::kAddVote) {
      CORROB_ASSIGN_OR_RETURN(record.vote,
                              VoteFromChar(static_cast<char>(vote_char)));
      if (record.vote == Vote::kNone) {
        return Status::InvalidArgument(
            "delta " + std::to_string(i) +
            ": add-vote carries '-'; use retract-vote to erase");
      }
    }
    request.deltas.push_back(std::move(record));
  }
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

std::string EncodeApplyDeltaResponse(const ApplyDeltaResponse& response) {
  std::string out;
  PutU8(&out, kApplyDeltaVersion);
  PutU32(&out, response.applied);
  PutU64(&out, response.generation);
  return out;
}

Result<ApplyDeltaResponse> DecodeApplyDeltaResponse(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, kApplyDeltaVersion, kApplyDeltaVersion)
          .status());
  ApplyDeltaResponse response;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&response.applied));
  CORROB_RETURN_NOT_OK(reader.ReadU64(&response.generation));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

std::string EncodeIntrospectRequest(const IntrospectRequest& request) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU32(&out, request.top_k);
  PutU32(&out, request.max_recent);
  return out;
}

Result<IntrospectRequest> DecodeIntrospectRequest(
    std::string_view payload) {
  PayloadReader reader(payload);
  CORROB_RETURN_NOT_OK(
      ReadVersionInRange(reader, 3, kProtocolVersion).status());
  IntrospectRequest request;
  CORROB_RETURN_NOT_OK(reader.ReadU32(&request.top_k));
  CORROB_RETURN_NOT_OK(reader.ReadU32(&request.max_recent));
  CORROB_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

}  // namespace server
}  // namespace corrob
