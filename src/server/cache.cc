#include "server/cache.h"

#include <algorithm>
#include <cctype>
#include <functional>

#include "obs/metrics.h"

namespace corrob {
namespace server {

namespace {

constexpr int kMaxShards = 64;

/// Folds an algorithm name the same way the registry's matcher does
/// (lowercase, '_' and '-' stripped), so every spelling that resolves
/// to one corroborator also resolves to one cache entry.
std::string FoldAlgorithmName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (c == '_' || c == '-') continue;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

/// Appends one netstring-style field ("<len>:<bytes>;"), so no field
/// content can collide with the separators of another.
void PutField(std::string* out, std::string_view field) {
  out->append(std::to_string(field.size()));
  out->push_back(':');
  out->append(field);
  out->push_back(';');
}

struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* insertions;
  obs::Counter* evictions;
  obs::Counter* invalidations;

  static CacheMetrics& Get() {
    static CacheMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      CacheMetrics m;
      m.hits = registry.GetCounter("corrob.server.cache.hits");
      m.misses = registry.GetCounter("corrob.server.cache.misses");
      m.insertions = registry.GetCounter("corrob.server.cache.insertions");
      m.evictions = registry.GetCounter("corrob.server.cache.evictions");
      m.invalidations =
          registry.GetCounter("corrob.server.cache.invalidations");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

std::string CacheKey(const std::string& dataset, uint64_t generation,
                     const std::string& algorithm,
                     int64_t effective_max_rounds,
                     const OptionList& options) {
  std::string key;
  key.reserve(dataset.size() + algorithm.size() + 48);
  PutField(&key, dataset);
  PutField(&key, std::to_string(generation));
  PutField(&key, FoldAlgorithmName(algorithm));
  PutField(&key, std::to_string(effective_max_rounds));
  for (const auto& [name, value] : options) {
    PutField(&key, name);
    PutField(&key, value);
  }
  return key;
}

ResultCache::ResultCache(const CacheOptions& options) : options_(options) {
  int shards = std::clamp(options.shards, 1, kMaxShards);
  if (options.capacity_entries <= 0) {
    per_shard_capacity_ = 0;
    shards = 1;
  } else {
    // Every shard holds at least one entry; extra shards beyond the
    // capacity would silently inflate it.
    shards = std::min(shards, options.capacity_entries);
    per_shard_capacity_ =
        (options.capacity_entries + shards - 1) / shards;
  }
  options_.shards = shards;
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  const size_t index =
      std::hash<std::string>{}(key) % shards_.size();
  return *shards_[index];
}

std::optional<std::string> ResultCache::Lookup(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().hits->Add(1);
      return it->second->payload;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().misses->Add(1);
  return std::nullopt;
}

void ResultCache::Insert(const std::string& key,
                         const std::string& dataset,
                         std::string payload) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Concurrent cold runs of the same request race to insert; the
      // payloads are bit-identical, so refreshing recency is enough.
      it->second->payload = std::move(payload);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    while (static_cast<int>(shard.lru.size()) >= per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++evicted;
    }
    shard.lru.push_front(Entry{key, dataset, std::move(payload)});
    shard.index.emplace(key, shard.lru.begin());
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().insertions->Add(1);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    CacheMetrics::Get().evictions->Add(evicted);
  }
}

void ResultCache::InvalidateDataset(const std::string& dataset) {
  if (!enabled()) return;
  int64_t dropped = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->dataset == dataset) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) {
    invalidations_.fetch_add(dropped, std::memory_order_relaxed);
    CacheMetrics::Get().invalidations->Add(dropped);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    out.entries += static_cast<int64_t>(shard_ptr->lru.size());
  }
  return out;
}

}  // namespace server
}  // namespace corrob
