#ifndef CORROB_SERVER_QUOTA_H_
#define CORROB_SERVER_QUOTA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_annotations.h"
#include "obs/clock.h"

// Per-tenant quotas for corrobd. Each tenant id (the `tenant` field
// of a v2 request; "" is the anonymous tenant) owns a token-bucket
// rate limit and a concurrent-run slot cap. A request that exceeds
// either gets a typed kQuotaExceededResponse frame carrying a
// retry-after hint computed from the bucket's actual deficit — this
// is about one tenant's allowance, where kOverloadedResponse is about
// the daemon's total capacity.
//
// Limits of 0 mean "unlimited", so a daemon configured with the
// defaults behaves exactly as before quotas existed (back-compat is
// opt-in per deployment). Time comes from an injected obs::Clock so
// the quota tests hand-crank refills with ManualClock.

namespace corrob {
namespace server {

/// One tenant's limits.
struct TenantLimits {
  /// Sustained request rate; each admitted request (each batch item)
  /// costs one token. 0 = unlimited.
  double qps = 0.0;
  /// Bucket capacity (burst allowance). Clamped up to at least 1
  /// token when qps > 0; ignored when qps == 0.
  double burst = 0.0;
  /// Max corroborations running at once for the tenant. 0 = unlimited.
  int concurrent_slots = 0;
};

/// Outcome of a quota check.
struct QuotaDecision {
  bool allowed = true;
  /// When not allowed: the server's estimate of when retrying can
  /// succeed (>= 1 for rate rejections; slot rejections use the
  /// configured slot_retry_ms since run length is unknowable).
  uint32_t retry_after_ms = 0;
  std::string reason;
};

struct QuotaOptions {
  /// Limits for tenants without an explicit override.
  TenantLimits default_limits;
  /// Retry hint attached to concurrent-slot rejections.
  uint32_t slot_retry_ms = 100;
};

/// Thread-safe registry of per-tenant token buckets and slot counts.
/// Tenants materialize lazily on first use; explicit overrides via
/// SetLimits survive idle periods.
class TenantQuotas {
 public:
  /// `clock` must outlive the registry (pass MonotonicClock::Get()'s
  /// instance in production, a ManualClock in tests).
  TenantQuotas(const QuotaOptions& options, const obs::Clock* clock);

  TenantQuotas(const TenantQuotas&) = delete;
  TenantQuotas& operator=(const TenantQuotas&) = delete;

  /// Installs per-tenant limits overriding the defaults.
  void SetLimits(const std::string& tenant, const TenantLimits& limits);

  /// Charges `units` tokens from the tenant's rate bucket (a batch of
  /// N items charges N). Either all units are taken or none.
  [[nodiscard]] QuotaDecision ChargeRate(const std::string& tenant,
                                         int units);

  /// Claims one concurrent-run slot; pair every success with
  /// ExitRun(). Cache hits and coalesced followers do not hold slots
  /// (they cost the daemon no work).
  [[nodiscard]] QuotaDecision TryEnterRun(const std::string& tenant);
  void ExitRun(const std::string& tenant);

  /// Monotonic counters across all tenants.
  struct Stats {
    int64_t rate_rejections = 0;
    int64_t slot_rejections = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Current effective limits (override or default) for `tenant`.
  [[nodiscard]] TenantLimits LimitsFor(const std::string& tenant) const;

 private:
  struct Bucket {
    TenantLimits limits;
    bool has_override = false;
    double tokens = 0.0;
    int64_t last_refill_nanos = 0;
    int running = 0;
  };

  /// Caller holds mutex_.
  Bucket& BucketFor(const std::string& tenant) CORROB_REQUIRES(mutex_);

  QuotaOptions options_;
  const obs::Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::string, Bucket> tenants_ CORROB_GUARDED_BY(mutex_);
  Stats stats_ CORROB_GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_QUOTA_H_
