#ifndef CORROB_SERVER_CLIENT_H_
#define CORROB_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "server/frame.h"
#include "server/protocol.h"

// Client side of the corrobd protocol: one connection, synchronous
// request/response. Used by the corrob CLI, tools/loadgen, and the
// serving tests; anything corrobd can answer is representable here
// without an error path that loses the typed response.

namespace corrob {
namespace server {

/// Every way a corroborate request can come back. A transport-level
/// failure (socket died → kConnectionLost mid-message / kIoError on a
/// boundary, cancelled) is a Status error instead; a daemon that
/// answered — even with an error — always produces an outcome.
struct CorroborateOutcome {
  enum class Kind {
    kResult,         ///< A corroboration result (possibly an early stop).
    kError,          ///< Typed per-request failure; the daemon is fine.
    kOverloaded,     ///< Shed by admission control; retry after the hint.
    kQuotaExceeded,  ///< This tenant's own quota; retry after the hint.
  };
  Kind kind = Kind::kError;
  CorroborateResponse result;      // valid when kind == kResult
  ErrorResponse error;             // valid when kind == kError
  OverloadedResponse overloaded;   // valid when kind == kOverloaded
  QuotaExceededResponse quota;     // valid when kind == kQuotaExceeded
  /// The response frame exactly as it crossed the wire (header +
  /// payload + checksum). The drain parity and serving-equivalence
  /// tests compare these bytes across daemons and serving paths (for
  /// batch items: the frame the item would have produced standalone).
  std::string raw_frame;
};

class CorrobClient {
 public:
  /// Connects to a corrobd at `socket_path`.
  [[nodiscard]] static Result<CorrobClient> Connect(
      const std::string& socket_path);

  CorrobClient() = default;
  CorrobClient(CorrobClient&&) noexcept = default;
  CorrobClient& operator=(CorrobClient&&) noexcept = default;

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  /// Raw descriptor (tests use it to fault the transport mid-call).
  [[nodiscard]] int fd() const { return fd_.get(); }
  /// Hard-closes the connection; a request in flight on the server is
  /// cancelled by its disconnect watcher.
  void Close() { fd_.Reset(); }

  /// Sends one corroborate request and reads its response frame.
  [[nodiscard]] Result<CorroborateOutcome> Corroborate(
      const CorroborateRequest& request, const StopSignal& stop);

  /// Sends one batch frame and reads its response. Outcomes line up
  /// with request.items; each outcome's raw_frame is the frame that
  /// item would have produced as a standalone request.
  [[nodiscard]] Result<std::vector<CorroborateOutcome>> BatchCorroborate(
      const BatchRequest& request, const StopSignal& stop);

  /// Asks the daemon to re-read a dataset (or all of them, for an
  /// empty name) from disk. A typed error frame becomes a Status with
  /// the daemon's code.
  [[nodiscard]] Result<ReloadResponse> Reload(const ReloadRequest& request,
                                              const StopSignal& stop);

  /// Round-trips a ping; the response echoes `payload`.
  [[nodiscard]] Result<std::string> Ping(const std::string& payload,
                                         const StopSignal& stop);

  /// Fetches the daemon's stats JSON (schema corrob.serving_stats/3).
  [[nodiscard]] Result<std::string> Stats(const StopSignal& stop);

  /// Fetches the daemon's live-introspection JSON (schema
  /// corrob.introspect/1): active requests, the flight-recorder ring,
  /// per-tenant aggregates, latency histograms, watchdog counters and
  /// the full metrics dump. A typed error frame (e.g. a daemon too
  /// old for the v3 introspect codec) becomes a Status with the
  /// daemon's code.
  [[nodiscard]] Result<std::string> Introspect(
      const IntrospectRequest& request, const StopSignal& stop);

 private:
  explicit CorrobClient(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Writes `request` and reads one response frame.
  [[nodiscard]] Result<Frame> RoundTrip(const Frame& request,
                                        const StopSignal& stop);

  UniqueFd fd_;
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_CLIENT_H_
