#ifndef CORROB_SERVER_CLIENT_H_
#define CORROB_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/socket.h"
#include "common/status.h"
#include "server/frame.h"
#include "server/protocol.h"

// Client side of the corrobd protocol: one connection, synchronous
// request/response. Used by the corrob CLI, tools/loadgen, and the
// serving tests; anything corrobd can answer is representable here
// without an error path that loses the typed response.

namespace corrob {
namespace server {

/// Every way a corroborate request can come back. A transport-level
/// failure (socket died → kConnectionLost mid-message / kIoError on a
/// boundary, cancelled) is a Status error instead; a daemon that
/// answered — even with an error — always produces an outcome.
struct CorroborateOutcome {
  enum class Kind {
    kResult,         ///< A corroboration result (possibly an early stop).
    kError,          ///< Typed per-request failure; the daemon is fine.
    kOverloaded,     ///< Shed by admission control; retry after the hint.
    kQuotaExceeded,  ///< This tenant's own quota; retry after the hint.
  };
  Kind kind = Kind::kError;
  CorroborateResponse result;      // valid when kind == kResult
  ErrorResponse error;             // valid when kind == kError
  OverloadedResponse overloaded;   // valid when kind == kOverloaded
  QuotaExceededResponse quota;     // valid when kind == kQuotaExceeded
  /// The response frame exactly as it crossed the wire (header +
  /// payload + checksum). The drain parity and serving-equivalence
  /// tests compare these bytes across daemons and serving paths (for
  /// batch items: the frame the item would have produced standalone).
  std::string raw_frame;
};

class CorrobClient {
 public:
  /// Connects to a corrobd at `socket_path`.
  [[nodiscard]] static Result<CorrobClient> Connect(
      const std::string& socket_path);

  CorrobClient() = default;
  CorrobClient(CorrobClient&&) noexcept = default;
  CorrobClient& operator=(CorrobClient&&) noexcept = default;

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  /// Raw descriptor (tests use it to fault the transport mid-call).
  [[nodiscard]] int fd() const { return fd_.get(); }
  /// Hard-closes the connection; a request in flight on the server is
  /// cancelled by its disconnect watcher.
  void Close() { fd_.Reset(); }

  /// Opt-in bounded reconnect-and-retry for the idempotent read paths
  /// (Corroborate, Introspect, Stats): when one of them fails with a
  /// transient transport code (kConnectionLost, kIoError — a daemon
  /// that restarted under the client), the connection is redialed and
  /// the request resent, up to policy.max_attempts with the policy's
  /// jittered backoff. Mutating paths (ApplyDelta, Reload, Batch)
  /// never auto-retry: a request the daemon may have executed before
  /// dying must not be silently repeated.
  void EnableReconnect(const RetryPolicy& policy) {
    reconnect_policy_ = policy;
    reconnect_enabled_ = true;
  }
  [[nodiscard]] bool reconnect_enabled() const { return reconnect_enabled_; }

  /// Sends one corroborate request and reads its response frame.
  [[nodiscard]] Result<CorroborateOutcome> Corroborate(
      const CorroborateRequest& request, const StopSignal& stop);

  /// Sends one batch frame and reads its response. Outcomes line up
  /// with request.items; each outcome's raw_frame is the frame that
  /// item would have produced as a standalone request.
  [[nodiscard]] Result<std::vector<CorroborateOutcome>> BatchCorroborate(
      const BatchRequest& request, const StopSignal& stop);

  /// Asks the daemon to re-read a dataset (or all of them, for an
  /// empty name) from disk. A typed error frame becomes a Status with
  /// the daemon's code.
  [[nodiscard]] Result<ReloadResponse> Reload(const ReloadRequest& request,
                                              const StopSignal& stop);

  /// Sends vote deltas for durable application. The response arrives
  /// only after every delta is on the daemon's write-ahead log, so a
  /// successful return means the mutation survives kill -9. A typed
  /// error frame becomes a Status with the daemon's code — notably
  /// kWalUnavailable when the dataset has degraded to read-only
  /// serving. Never auto-retried, even with reconnect enabled.
  [[nodiscard]] Result<ApplyDeltaResponse> ApplyDelta(
      const ApplyDeltaRequest& request, const StopSignal& stop);

  /// Round-trips a ping; the response echoes `payload`.
  [[nodiscard]] Result<std::string> Ping(const std::string& payload,
                                         const StopSignal& stop);

  /// Fetches the daemon's stats JSON (schema corrob.serving_stats/4).
  [[nodiscard]] Result<std::string> Stats(const StopSignal& stop);

  /// Fetches the daemon's live-introspection JSON (schema
  /// corrob.introspect/1): active requests, the flight-recorder ring,
  /// per-tenant aggregates, latency histograms, watchdog counters and
  /// the full metrics dump. A typed error frame (e.g. a daemon too
  /// old for the v3 introspect codec) becomes a Status with the
  /// daemon's code.
  [[nodiscard]] Result<std::string> Introspect(
      const IntrospectRequest& request, const StopSignal& stop);

 private:
  CorrobClient(UniqueFd fd, std::string socket_path)
      : fd_(std::move(fd)), socket_path_(std::move(socket_path)) {}

  /// Writes `request` and reads one response frame.
  [[nodiscard]] Result<Frame> RoundTrip(const Frame& request,
                                        const StopSignal& stop);

  /// RoundTrip for the idempotent read paths: with reconnect enabled,
  /// transient transport failures redial socket_path_ and resend
  /// under reconnect_policy_; otherwise identical to RoundTrip.
  [[nodiscard]] Result<Frame> RoundTripWithReconnect(
      const Frame& request, const StopSignal& stop);

  UniqueFd fd_;
  std::string socket_path_;
  bool reconnect_enabled_ = false;
  RetryPolicy reconnect_policy_;
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_CLIENT_H_
