#ifndef CORROB_SERVER_CACHE_H_
#define CORROB_SERVER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "server/protocol.h"

// Bounded, sharded LRU result cache for corrobd. Keys are the
// canonical digest of (dataset name, dataset generation, algorithm,
// effective round budget, normalized options); values are fully
// encoded kResultResponse payloads, so a cache hit replays the exact
// bytes a cold run produced — bit-identity is the contract the
// serving-equivalence suite pins. Dataset reloads invalidate by
// generation bump: stale keys can never match again, and
// InvalidateDataset() reclaims their memory eagerly.
//
// Only deterministic full outcomes are cacheable (termination
// converged / iteration_cap / budget_exhausted — the round budget is
// part of the key). Deadline- or cancellation-truncated runs depend
// on wall-clock timing and never enter the cache.

namespace corrob {
namespace server {

struct CacheOptions {
  /// Total cached responses across all shards; 0 disables the cache.
  /// Capacity is split evenly over the shards (at least one entry
  /// each), so per-shard LRU order is exact.
  int capacity_entries = 256;
  /// Shard count, clamped to [1, 64]. More shards cut mutex
  /// contention; capacity_entries <= shards degenerates to one-entry
  /// shards. Tests wanting exact global LRU order use shards = 1.
  int shards = 8;
};

/// Point-in-time counters (monotonic except `entries`).
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;
  int64_t entries = 0;
};

/// Builds the canonical cache key. `options` must already be
/// normalized (DecodeCorroborateRequest guarantees it); the algorithm
/// name is canonicalized the same way the registry matches it, so
/// "IncEstHeu" and "inc_est_heu" share an entry.
[[nodiscard]] std::string CacheKey(const std::string& dataset,
                                   uint64_t generation,
                                   const std::string& algorithm,
                                   int64_t effective_max_rounds,
                                   const OptionList& options);

/// Thread-safe sharded LRU map from canonical key to encoded
/// response payload. All methods may be called from any connection
/// thread; eviction order is exact LRU within each shard.
class ResultCache {
 public:
  explicit ResultCache(const CacheOptions& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  [[nodiscard]] bool enabled() const { return per_shard_capacity_ > 0; }

  /// Returns the cached payload and refreshes its recency, or nullopt
  /// (also counting the miss).
  [[nodiscard]] std::optional<std::string> Lookup(const std::string& key);

  /// Inserts (or refreshes) `key`. `dataset` tags the entry for
  /// InvalidateDataset. Evicts the shard's least-recently-used entry
  /// when full. No-op when the cache is disabled.
  void Insert(const std::string& key, const std::string& dataset,
              std::string payload);

  /// Drops every entry tagged with `dataset` (all generations). Used
  /// on reload so stale generations free their memory immediately
  /// rather than aging out.
  void InvalidateDataset(const std::string& dataset);

  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] const CacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    std::string dataset;
    std::string payload;
  };
  /// One LRU shard: list front = most recent; map points into the list.
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru CORROB_GUARDED_BY(mutex);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        CORROB_GUARDED_BY(mutex);
  };

  Shard& ShardFor(const std::string& key);

  CacheOptions options_;
  int per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_CACHE_H_
