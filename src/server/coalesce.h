#ifndef CORROB_SERVER_COALESCE_H_
#define CORROB_SERVER_COALESCE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/budget.h"
#include "common/thread_annotations.h"

// Request coalescing (single-flight) for corrobd. When several
// connections ask for the same canonical cache key at once, exactly
// one of them (the leader) runs the corroboration; the rest
// (followers) block on the flight and receive a byte-identical copy
// of the leader's encoded response. Invariants the race tests pin:
//
//   * A follower abandoning its wait (its own cancel/disconnect)
//     never disturbs the leader or the other followers.
//   * A leader that stops without a shareable result (cancelled,
//     deadline, non-cacheable outcome) hands leadership to exactly
//     one waiting follower, which re-runs; with no waiters the
//     flight simply dissolves.
//   * Results are only ever shared whole: a truncated or failed run
//     is never published.

namespace corrob {
namespace server {

class RunCoalescer {
 public:
  enum class Role : uint8_t { kLeader, kFollower };

  /// How a follower's Wait ended.
  enum class WaitOutcome : uint8_t {
    /// The leader published; `payload` is the shared response bytes.
    kGotResult,
    /// The leader abandoned and this follower inherited leadership;
    /// the caller must run the request itself and then Publish or
    /// Abandon the same ticket.
    kPromoted,
    /// This follower's own stop signal fired; it is detached and the
    /// flight continues without it.
    kCancelled,
  };

  struct WaitResult {
    WaitOutcome outcome = WaitOutcome::kCancelled;
    std::string payload;
  };

  /// Monotonic counters for stats frames and tests.
  struct Stats {
    int64_t leaders = 0;      // flights started (incl. promotions)
    int64_t followers = 0;    // attaches that joined an existing flight
    int64_t shared = 0;       // follower waits resolved by a publish
    int64_t promotions = 0;   // followers that inherited leadership
    int64_t abandoned = 0;    // leader exits without a shareable result
  };

  /// Opaque handle tying a caller to its flight. Obtain from
  /// Attach(); pass back to Wait/Publish/Abandon.
  class Ticket {
   public:
    [[nodiscard]] Role role() const { return role_; }

   private:
    friend class RunCoalescer;
    struct Flight;
    Role role_ = Role::kLeader;
    std::shared_ptr<Flight> flight_;
  };

  RunCoalescer() = default;
  RunCoalescer(const RunCoalescer&) = delete;
  RunCoalescer& operator=(const RunCoalescer&) = delete;

  /// Joins (or starts) the flight for `key`. Leader tickets MUST be
  /// settled with exactly one Publish or Abandon; follower tickets
  /// MUST be settled with one Wait.
  [[nodiscard]] Ticket Attach(const std::string& key);

  /// Leader only: shares the complete encoded response with every
  /// waiting follower and retires the flight. Later Attach(key) calls
  /// start a fresh flight (the result cache, not the coalescer, is
  /// the layer that remembers).
  void Publish(const Ticket& ticket, const std::string& payload);

  /// Leader only: exits without a shareable result. One waiting
  /// follower (if any) is promoted to leader and the flight stays
  /// open for it; with no waiters the flight is retired.
  void Abandon(const Ticket& ticket);

  /// Follower only: blocks until the leader publishes, this follower
  /// is promoted, or `stop` fires. On kPromoted the ticket's role
  /// becomes kLeader and the settle obligation switches accordingly.
  [[nodiscard]] WaitResult Wait(Ticket* ticket, const StopSignal& stop);

  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Ticket::Flight>>
      flights_ CORROB_GUARDED_BY(mutex_);
  Stats stats_ CORROB_GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_COALESCE_H_
