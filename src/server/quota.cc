#include "server/quota.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace corrob {
namespace server {

namespace {

constexpr double kNanosPerSecond = 1e9;

struct QuotaMetrics {
  obs::Counter* rate_rejections;
  obs::Counter* slot_rejections;
  obs::Gauge* tenants;

  static QuotaMetrics& Get() {
    static QuotaMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      QuotaMetrics m;
      m.rate_rejections =
          registry.GetCounter("corrob.server.quota.rate_rejections");
      m.slot_rejections =
          registry.GetCounter("corrob.server.quota.slot_rejections");
      m.tenants = registry.GetGauge("corrob.server.quota.tenants");
      return m;
    }();
    return metrics;
  }
};

/// Bucket capacity: at least one token so a tenant with a tiny qps
/// can ever send anything.
double EffectiveBurst(const TenantLimits& limits) {
  return std::max(limits.burst, 1.0);
}

std::string TenantLabel(const std::string& tenant) {
  return tenant.empty() ? "(anonymous)" : tenant;
}

}  // namespace

TenantQuotas::TenantQuotas(const QuotaOptions& options,
                           const obs::Clock* clock)
    : options_(options), clock_(clock) {}

void TenantQuotas::SetLimits(const std::string& tenant,
                             const TenantLimits& limits) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = BucketFor(tenant);
  bucket.limits = limits;
  bucket.has_override = true;
  // Start the new allowance full rather than inheriting a drained
  // bucket from the old limits.
  bucket.tokens = EffectiveBurst(limits);
  bucket.last_refill_nanos = clock_->NowNanos();
}

TenantQuotas::Bucket& TenantQuotas::BucketFor(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    Bucket bucket;
    bucket.limits = options_.default_limits;
    bucket.tokens = EffectiveBurst(bucket.limits);
    bucket.last_refill_nanos = clock_->NowNanos();
    it = tenants_.emplace(tenant, std::move(bucket)).first;
    QuotaMetrics::Get().tenants->Set(
        static_cast<int64_t>(tenants_.size()));
  }
  return it->second;
}

QuotaDecision TenantQuotas::ChargeRate(const std::string& tenant,
                                       int units) {
  QuotaDecision decision;
  if (units <= 0) return decision;
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = BucketFor(tenant);
  if (bucket.limits.qps <= 0.0) return decision;  // unlimited

  const double burst = EffectiveBurst(bucket.limits);
  const int64_t now = clock_->NowNanos();
  const int64_t elapsed = std::max<int64_t>(0, now - bucket.last_refill_nanos);
  bucket.tokens = std::min(
      burst, bucket.tokens + bucket.limits.qps *
                                 (static_cast<double>(elapsed) /
                                  kNanosPerSecond));
  bucket.last_refill_nanos = now;

  const double cost = static_cast<double>(units);
  if (bucket.tokens + 1e-9 >= cost) {
    bucket.tokens -= cost;
    return decision;
  }
  // All-or-nothing: leave the bucket untouched and tell the tenant
  // how long the deficit takes to refill.
  const double deficit = cost - bucket.tokens;
  const double wait_ms =
      std::ceil(deficit / bucket.limits.qps * 1000.0);
  decision.allowed = false;
  decision.retry_after_ms =
      static_cast<uint32_t>(std::max(1.0, wait_ms));
  decision.reason = "tenant " + TenantLabel(tenant) +
                    " exceeded its rate limit of " +
                    std::to_string(bucket.limits.qps) + " qps";
  ++stats_.rate_rejections;
  QuotaMetrics::Get().rate_rejections->Add(1);
  return decision;
}

QuotaDecision TenantQuotas::TryEnterRun(const std::string& tenant) {
  QuotaDecision decision;
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = BucketFor(tenant);
  if (bucket.limits.concurrent_slots > 0 &&
      bucket.running >= bucket.limits.concurrent_slots) {
    decision.allowed = false;
    decision.retry_after_ms = options_.slot_retry_ms;
    decision.reason =
        "tenant " + TenantLabel(tenant) + " is already running " +
        std::to_string(bucket.running) + " of " +
        std::to_string(bucket.limits.concurrent_slots) +
        " concurrent corroborations";
    ++stats_.slot_rejections;
    QuotaMetrics::Get().slot_rejections->Add(1);
    return decision;
  }
  ++bucket.running;
  return decision;
}

void TenantQuotas::ExitRun(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = BucketFor(tenant);
  if (bucket.running > 0) --bucket.running;
}

TenantQuotas::Stats TenantQuotas::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

TenantLimits TenantQuotas::LimitsFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.has_override) {
    return it->second.limits;
  }
  return options_.default_limits;
}

}  // namespace server
}  // namespace corrob
