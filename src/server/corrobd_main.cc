#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "server/server.h"

// Entry point of the corrobd daemon. Flag parsing is deliberately
// minimal (no dependency on the corrob CLI); everything interesting
// lives in CorrobdServer. Lifecycle:
//
//   corrobd --socket /tmp/corrobd.sock --dataset flights=data/flights.csv
//
//   SIGTERM/SIGINT  -> drain: stop accepting, finish in-flight
//                      requests, exit 0
//   second signal   -> immediate _exit(130)
//
// docs/SERVING.md documents the flags and the drain contract.

namespace corrob {
namespace server {
namespace {

struct DaemonFlags {
  ServerOptions server;
  std::string failpoints;
};

/// Parses "a,b,c" into exactly kNumPriorities non-negative integers.
[[nodiscard]] Status ParsePerClassInts(const std::string& flag,
                                       const std::string& text,
                                       std::array<int64_t, kNumPriorities>* out) {
  std::array<int64_t, kNumPriorities> values = {};
  size_t begin = 0;
  for (int cls = 0; cls < kNumPriorities; ++cls) {
    const size_t comma = text.find(',', begin);
    const bool last = cls == kNumPriorities - 1;
    if (last != (comma == std::string::npos)) {
      return Status::InvalidArgument(
          flag + " needs exactly " + std::to_string(kNumPriorities) +
          " comma-separated values (interactive,batch,best_effort), got '" +
          text + "'");
    }
    const std::string part = text.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    try {
      values[cls] = std::stoll(part);
    } catch (...) {
      return Status::InvalidArgument(flag + ": '" + part +
                                     "' is not an integer");
    }
    if (values[cls] < 0) {
      return Status::InvalidArgument(flag + " values must be >= 0");
    }
    begin = comma + 1;
  }
  *out = values;
  return Status::OK();
}

/// Parses a per-tenant override "name=qps:burst:slots", e.g.
/// "analytics=5:10:2". Any component may be 0 (unlimited).
[[nodiscard]] Status ParseTenantQuotaSpec(
    const std::string& spec, std::pair<std::string, TenantLimits>* out) {
  const Status malformed = Status::InvalidArgument(
      "--tenant-quota needs name=qps:burst:slots, got '" + spec + "'");
  const size_t equals = spec.find('=');
  if (equals == std::string::npos || equals == 0) return malformed;
  const std::string tenant = spec.substr(0, equals);
  const std::string limits_text = spec.substr(equals + 1);
  const size_t first = limits_text.find(':');
  if (first == std::string::npos) return malformed;
  const size_t second = limits_text.find(':', first + 1);
  if (second == std::string::npos) return malformed;
  TenantLimits limits;
  try {
    limits.qps = std::stod(limits_text.substr(0, first));
    limits.burst = std::stod(limits_text.substr(first + 1, second - first - 1));
    limits.concurrent_slots = std::stoi(limits_text.substr(second + 1));
  } catch (...) {
    return malformed;
  }
  if (limits.qps < 0 || limits.burst < 0 || limits.concurrent_slots < 0) {
    return Status::InvalidArgument("--tenant-quota values must be >= 0");
  }
  *out = {tenant, limits};
  return Status::OK();
}

[[nodiscard]] Status ParseFlags(const std::vector<std::string>& args,
                                DaemonFlags* flags) {
  const auto needs_value = [&](size_t i) -> Result<std::string> {
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("flag " + args[i] + " needs a value");
    }
    return args[i + 1];
  };
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--socket") {
      CORROB_ASSIGN_OR_RETURN(flags->server.socket_path, needs_value(i));
      ++i;
    } else if (arg == "--dataset") {
      CORROB_ASSIGN_OR_RETURN(std::string spec, needs_value(i));
      flags->server.dataset_specs.push_back(spec);
      ++i;
    } else if (arg == "--max-concurrency") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.admission.max_concurrency = std::stoi(value);
      ++i;
    } else if (arg == "--queue-capacity") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      std::array<int64_t, kNumPriorities> capacities = {};
      CORROB_RETURN_NOT_OK(
          ParsePerClassInts("--queue-capacity", value, &capacities));
      for (int cls = 0; cls < kNumPriorities; ++cls) {
        flags->server.admission.queue_capacity[cls] =
            static_cast<int>(capacities[cls]);
      }
      ++i;
    } else if (arg == "--default-timeout-ms") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      CORROB_RETURN_NOT_OK(ParsePerClassInts(
          "--default-timeout-ms", value,
          &flags->server.admission.default_timeout_ms));
      ++i;
    } else if (arg == "--default-max-rounds") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      CORROB_RETURN_NOT_OK(ParsePerClassInts(
          "--default-max-rounds", value,
          &flags->server.admission.default_max_rounds));
      ++i;
    } else if (arg == "--threads") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.run_threads = std::stoi(value);
      ++i;
    } else if (arg == "--drain-timeout-ms") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.drain_timeout_ms = std::stoll(value);
      ++i;
    } else if (arg == "--cache-entries") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.cache.capacity_entries = std::stoi(value);
      ++i;
    } else if (arg == "--cache-shards") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.cache.shards = std::stoi(value);
      ++i;
    } else if (arg == "--tenant-qps") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.quota.default_limits.qps = std::stod(value);
      ++i;
    } else if (arg == "--tenant-burst") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.quota.default_limits.burst = std::stod(value);
      ++i;
    } else if (arg == "--tenant-slots") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.quota.default_limits.concurrent_slots =
          std::stoi(value);
      ++i;
    } else if (arg == "--tenant-quota") {
      CORROB_ASSIGN_OR_RETURN(std::string spec, needs_value(i));
      std::pair<std::string, TenantLimits> parsed;
      CORROB_RETURN_NOT_OK(ParseTenantQuotaSpec(spec, &parsed));
      flags->server.tenant_overrides.push_back(std::move(parsed));
      ++i;
    } else if (arg == "--failpoint") {
      CORROB_ASSIGN_OR_RETURN(std::string spec, needs_value(i));
      if (!flags->failpoints.empty()) flags->failpoints += ",";
      flags->failpoints += spec;
      ++i;
    } else if (arg == "--flight-recorder-entries") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.flight_recorder_entries = std::stoi(value);
      ++i;
    } else if (arg == "--slow-request-ms") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.slow_request_ms = std::stoll(value);
      ++i;
    } else if (arg == "--watchdog-interval-ms") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.watchdog_interval_ms = std::stoll(value);
      ++i;
    } else if (arg == "--watchdog-multiplier") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      flags->server.watchdog_deadline_multiplier = std::stod(value);
      ++i;
    } else if (arg == "--wal") {
      CORROB_ASSIGN_OR_RETURN(flags->server.wal_dir, needs_value(i));
      ++i;
    } else if (arg == "--wal-fsync") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      CORROB_ASSIGN_OR_RETURN(flags->server.wal_fsync,
                              ParseWalFsyncPolicy(value));
      ++i;
    } else if (arg == "--wal-fsync-interval") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      const int64_t interval = std::stoll(value);
      if (interval <= 0) {
        return Status::InvalidArgument("--wal-fsync-interval must be > 0");
      }
      flags->server.wal_fsync_interval_records = interval;
      ++i;
    } else if (arg == "--wal-segment-bytes") {
      CORROB_ASSIGN_OR_RETURN(std::string value, needs_value(i));
      const int64_t bytes = std::stoll(value);
      if (bytes <= 0) {
        return Status::InvalidArgument("--wal-segment-bytes must be > 0");
      }
      flags->server.wal_segment_bytes = bytes;
      ++i;
    } else {
      return Status::InvalidArgument(
          "unknown flag '" + arg +
          "' (flags: --socket --dataset --max-concurrency "
          "--queue-capacity --default-timeout-ms --default-max-rounds "
          "--threads --drain-timeout-ms --cache-entries --cache-shards "
          "--tenant-qps --tenant-burst --tenant-slots --tenant-quota "
          "--failpoint --flight-recorder-entries --slow-request-ms "
          "--watchdog-interval-ms --watchdog-multiplier "
          "--wal --wal-fsync --wal-fsync-interval --wal-segment-bytes)");
    }
  }
  return Status::OK();
}

int RunDaemon(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  DaemonFlags flags;
  if (const Status parsed = ParseFlags(args, &flags); !parsed.ok()) {
    err << "corrobd: " << parsed.ToString() << "\n";
    return 2;
  }
  if (!flags.failpoints.empty()) {
    if (const Status armed = Failpoints::ArmFromSpecList(flags.failpoints);
        !armed.ok()) {
      err << "corrobd: " << armed.ToString() << "\n";
      return 2;
    }
  }

  CorrobdServer daemon(flags.server);
  if (const Status started = daemon.Start(); !started.ok()) {
    err << "corrobd: " << started.ToString() << "\n";
    return 1;
  }
  out << "corrobd: serving " << daemon.dataset_names().size()
      << " dataset(s) on " << flags.server.socket_path << "\n";
  out.flush();

  // First SIGTERM/SIGINT cancels the drain token (graceful drain,
  // exit 0); a second hard-exits 130 for a daemon too wedged to
  // finish draining.
  CancellationToken drain_token;
  ScopedShutdownHandlers signals(
      ScopedShutdownHandlers::Options{.token = &drain_token});

  if (const Status served = daemon.Serve(&drain_token); !served.ok()) {
    err << "corrobd: " << served.ToString() << "\n";
    return 1;
  }
  out << "corrobd: drained cleanly, " << daemon.responses_sent()
      << " response(s) served\n";
  return 0;
}

}  // namespace
}  // namespace server
}  // namespace corrob

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return corrob::server::RunDaemon(
      args, std::cout, std::cerr);  // lint: io-ok: binary entry point
}
