#ifndef CORROB_SERVER_PROTOCOL_H_
#define CORROB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

// Payload encodings of the corrobd frames (docs/SERVING.md). Each
// payload starts with a u8 codec version so the format can evolve
// without changing the frame layer. Integers are little-endian;
// doubles travel as their IEEE-754 bit pattern, so a response is
// byte-identical whenever the underlying corroboration result is —
// the property the drain parity test asserts end to end.

namespace corrob {
namespace server {

inline constexpr uint8_t kProtocolVersion = 1;

/// Admission priority class of a request. Lower values are served
/// first; each class maps onto a default Deadline + ResourceBudget
/// and a bounded admission queue (docs/SERVING.md, "Priority classes").
enum class Priority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBestEffort = 2,
};
inline constexpr int kNumPriorities = 3;

/// Stable lowercase name, e.g. "interactive".
std::string_view PriorityName(Priority priority);

/// Parses "interactive" | "batch" | "best_effort" (and "besteffort").
[[nodiscard]] Result<Priority> ParsePriority(std::string_view text);

/// Client request: corroborate `dataset` (a name the daemon loaded at
/// startup) with `algorithm`, under the priority class's admission
/// queue and budget. timeout_ms/max_rounds of 0 inherit the class
/// defaults configured on the server.
struct CorroborateRequest {
  Priority priority = Priority::kBatch;
  std::string dataset;
  std::string algorithm = "IncEstHeu";
  uint32_t timeout_ms = 0;
  uint32_t max_rounds = 0;
};

std::string EncodeCorroborateRequest(const CorroborateRequest& request);
[[nodiscard]] Result<CorroborateRequest> DecodeCorroborateRequest(
    std::string_view payload);

/// Successful corroboration: the full per-fact probability and
/// per-source trust vectors, bit-exact.
struct CorroborateResponse {
  std::string algorithm;
  /// core Termination enum value; kConverged and kIterationCap are
  /// full runs, everything else is a graceful early stop with
  /// best-so-far scores.
  uint8_t termination = 0;
  uint32_t iterations = 0;
  std::vector<double> fact_probability;
  std::vector<double> source_trust;
};

std::string EncodeCorroborateResponse(const CorroborateResponse& response);
[[nodiscard]] Result<CorroborateResponse> DecodeCorroborateResponse(
    std::string_view payload);

/// Typed failure of one request (the daemon stays up): a StatusCode
/// value plus the human-readable message.
struct ErrorResponse {
  uint8_t code = 0;
  std::string message;
};

std::string EncodeErrorResponse(const ErrorResponse& response);
[[nodiscard]] Result<ErrorResponse> DecodeErrorResponse(
    std::string_view payload);

/// Structured shed: the admission queue for the request's class is
/// full. retry_after_ms is the server's backlog-based estimate of
/// when capacity frees up.
struct OverloadedResponse {
  uint32_t retry_after_ms = 0;
  uint32_t queue_depth = 0;
  std::string message;
};

std::string EncodeOverloadedResponse(const OverloadedResponse& response);
[[nodiscard]] Result<OverloadedResponse> DecodeOverloadedResponse(
    std::string_view payload);

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_PROTOCOL_H_
