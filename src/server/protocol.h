#ifndef CORROB_SERVER_PROTOCOL_H_
#define CORROB_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/wal.h"

// Payload encodings of the corrobd frames (docs/SERVING.md). Each
// payload starts with a u8 codec version so the format can evolve
// without changing the frame layer. Integers are little-endian;
// doubles travel as their IEEE-754 bit pattern, so a response is
// byte-identical whenever the underlying corroboration result is —
// the property the drain parity and serving-equivalence tests assert
// end to end.
//
// Version history:
//   1  PR 6: corroborate request/response, error, overloaded.
//   2  serving-efficiency layer: requests carry a tenant id and a
//      canonically ordered option list; batch, quota-exceeded and
//      reload frames. Version-1 corroborate requests are still
//      decoded (empty tenant, no options).
//   3  live introspection: corroborate requests may carry a client-
//      supplied request id, echoed back as a trailing string on the
//      per-request response payloads (result, error, overloaded,
//      quota-exceeded) via AttachRequestId; introspect frames. A
//      version byte of 3 on a response payload means exactly "the
//      version-1/2 fields plus a trailing request id", so the batch
//      and reload payloads — which never carry an id — stay pinned
//      at version 2 on the wire.
//   4  durable delta ingestion: apply-delta frames carrying WAL vote
//      deltas (data/wal.h record types). Both apply-delta payloads
//      are pinned at version 4; every other payload keeps its pinned
//      version, so responses recorded by a v3 peer stay byte-valid.

namespace corrob {
namespace server {

inline constexpr uint8_t kProtocolVersion = 3;
/// Oldest corroborate-request version the daemon still accepts.
inline constexpr uint8_t kMinCorroborateRequestVersion = 1;

/// Admission priority class of a request. Lower values are served
/// first; each class maps onto a default Deadline + ResourceBudget
/// and a bounded admission queue (docs/SERVING.md, "Priority classes").
enum class Priority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBestEffort = 2,
};
inline constexpr int kNumPriorities = 3;

/// Stable lowercase name, e.g. "interactive".
[[nodiscard]] std::string_view PriorityName(Priority priority);

/// Parses "interactive" | "batch" | "best_effort" (and "besteffort").
[[nodiscard]] Result<Priority> ParsePriority(std::string_view text);

/// Key=value request options. Semantically a map: the codec
/// canonicalizes the order (sorted by key) on encode AND decode, so
/// two requests that differ only in option ordering are
/// byte-identical on the wire and produce one cache key.
using OptionList = std::vector<std::pair<std::string, std::string>>;

/// Sorts `options` by key (values break ties) and rejects duplicate
/// keys. Both codec directions and the result cache key go through
/// this, so there is exactly one canonical form per option map.
[[nodiscard]] Status NormalizeOptions(OptionList* options);

/// Client request: corroborate `dataset` (a name the daemon loaded at
/// startup) with `algorithm`, under the priority class's admission
/// queue and budget. timeout_ms/max_rounds of 0 inherit the class
/// defaults configured on the server. `tenant` selects the quota
/// buckets ("" = the anonymous tenant); `options` are opaque
/// key=value pairs folded into the result-cache key.
struct CorroborateRequest {
  Priority priority = Priority::kBatch;
  std::string dataset;
  std::string algorithm = "IncEstHeu";
  uint32_t timeout_ms = 0;
  uint32_t max_rounds = 0;
  std::string tenant;
  OptionList options;
  /// Optional client-chosen correlation id (v3). The daemon echoes it
  /// on the response payload and records it in the flight recorder,
  /// so a client-observed latency can be matched to the server-side
  /// record. Never part of the cache key.
  std::string request_id;
};

/// Encodes at the current version. The overload taking `version`
/// exists for compatibility tests; version 1 drops tenant/options,
/// versions below 3 drop request_id.
[[nodiscard]] std::string EncodeCorroborateRequest(
    const CorroborateRequest& request);
[[nodiscard]] std::string EncodeCorroborateRequest(
    const CorroborateRequest& request, uint8_t version);
[[nodiscard]] Result<CorroborateRequest> DecodeCorroborateRequest(
    std::string_view payload);

/// Successful corroboration: the full per-fact probability and
/// per-source trust vectors, bit-exact.
struct CorroborateResponse {
  std::string algorithm;
  /// core Termination enum value; kConverged and kIterationCap are
  /// full runs, everything else is a graceful early stop with
  /// best-so-far scores.
  uint8_t termination = 0;
  uint32_t iterations = 0;
  std::vector<double> fact_probability;
  std::vector<double> source_trust;
  /// Echo of the request's id (v3); empty when the client sent none.
  /// Attached after encoding via AttachRequestId, never by the
  /// encoder itself — the canonical cached payload stays id-free.
  std::string request_id;
};

[[nodiscard]] std::string EncodeCorroborateResponse(
    const CorroborateResponse& response);
[[nodiscard]] Result<CorroborateResponse> DecodeCorroborateResponse(
    std::string_view payload);

/// Typed failure of one request (the daemon stays up): a StatusCode
/// value plus the human-readable message.
struct ErrorResponse {
  uint8_t code = 0;
  std::string message;
  /// Echo of the request's id (v3); empty when the client sent none.
  std::string request_id;
};

[[nodiscard]] std::string EncodeErrorResponse(const ErrorResponse& response);
[[nodiscard]] Result<ErrorResponse> DecodeErrorResponse(
    std::string_view payload);

/// Structured shed: the admission queue for the request's class is
/// full. retry_after_ms is the server's backlog-based estimate of
/// when capacity frees up.
struct OverloadedResponse {
  uint32_t retry_after_ms = 0;
  uint32_t queue_depth = 0;
  std::string message;
  /// Echo of the request's id (v3); empty when the client sent none.
  std::string request_id;
};

[[nodiscard]] std::string EncodeOverloadedResponse(
    const OverloadedResponse& response);
[[nodiscard]] Result<OverloadedResponse> DecodeOverloadedResponse(
    std::string_view payload);

/// Structured per-tenant quota rejection (StatusCode::kQuotaExceeded
/// on the wire-independent side): the tenant's token bucket ran dry
/// or its concurrent-run slots are all taken. Unlike kOverloaded this
/// is about one tenant's allowance, not the daemon's total capacity.
struct QuotaExceededResponse {
  uint32_t retry_after_ms = 0;
  std::string tenant;
  std::string message;
  /// Echo of the request's id (v3); empty when the client sent none.
  std::string request_id;
};

[[nodiscard]] std::string EncodeQuotaExceededResponse(
    const QuotaExceededResponse& response);
[[nodiscard]] Result<QuotaExceededResponse> DecodeQuotaExceededResponse(
    std::string_view payload);

/// Splices a client request id onto an already-encoded per-request
/// response payload: rewrites the leading version byte to 3 and
/// appends the id as a length-prefixed string. With an empty id the
/// payload is untouched, byte for byte — the property that keeps
/// cached, coalesced and batch replies identical to what a v2 peer
/// recorded. The daemon calls this after the cache/coalescer, so the
/// shared canonical payload never carries any one client's id.
void AttachRequestId(std::string* payload, const std::string& request_id);

/// Upper bound on sub-requests in one batch frame; a decoder seeing
/// more rejects before allocating.
inline constexpr uint32_t kMaxBatchItems = 1024;

/// One sub-request of a batch. Priority and tenant are batch-wide;
/// everything else matches CorroborateRequest.
struct BatchItem {
  std::string dataset;
  std::string algorithm = "IncEstHeu";
  uint32_t timeout_ms = 0;
  uint32_t max_rounds = 0;
  OptionList options;
};

/// Many corroborations in one frame. Admission accounts the batch as
/// items.size() units (each item takes and releases its own slot);
/// the tenant's QPS bucket is charged items.size() tokens up front.
struct BatchRequest {
  Priority priority = Priority::kBatch;
  std::string tenant;
  std::vector<BatchItem> items;
};

[[nodiscard]] std::string EncodeBatchRequest(const BatchRequest& request);
[[nodiscard]] Result<BatchRequest> DecodeBatchRequest(
    std::string_view payload);

/// Outcome of one batch item: `type` is the response frame type this
/// item would have produced as a standalone request, and `payload` is
/// that response's encoded payload — byte-identical to the standalone
/// frame's payload (the serving-equivalence suite pins this).
struct BatchItemResponse {
  uint8_t type = 0;  // a response FrameType value
  std::string payload;
};

struct BatchResponse {
  std::vector<BatchItemResponse> items;
};

[[nodiscard]] std::string EncodeBatchResponse(const BatchResponse& response);
[[nodiscard]] Result<BatchResponse> DecodeBatchResponse(
    std::string_view payload);

/// Administrative reload: re-read the named dataset (or every dataset
/// when `dataset` is empty) from its startup path and bump its
/// generation, invalidating cached results keyed on the old one.
struct ReloadRequest {
  std::string dataset;
};

[[nodiscard]] std::string EncodeReloadRequest(const ReloadRequest& request);
[[nodiscard]] Result<ReloadRequest> DecodeReloadRequest(
    std::string_view payload);

struct ReloadResponse {
  uint32_t datasets_reloaded = 0;
  /// Highest generation among the reloaded datasets.
  uint64_t generation = 0;
};

[[nodiscard]] std::string EncodeReloadResponse(const ReloadResponse& response);
[[nodiscard]] Result<ReloadResponse> DecodeReloadResponse(
    std::string_view payload);

/// Codec version of the apply-delta payloads (v4); they are pinned
/// here rather than at kProtocolVersion because no other payload
/// gained a field in v4.
inline constexpr uint8_t kApplyDeltaVersion = 4;

/// Upper bound on deltas in one apply-delta frame; a decoder seeing
/// more rejects before allocating.
inline constexpr uint32_t kMaxDeltaItems = 4096;

/// Durable mutation of a served dataset (v4): append `deltas` to the
/// dataset's write-ahead log, then apply them to the resident
/// Dataset. The daemon acks only after the WAL append (and fsync,
/// under the always policy) succeeded — an acked delta survives
/// kill -9. Deltas are data/wal.h records; snapshot markers are log
/// metadata and are rejected by the codec.
struct ApplyDeltaRequest {
  std::string dataset;
  std::vector<WalRecord> deltas;
};

[[nodiscard]] std::string EncodeApplyDeltaRequest(
    const ApplyDeltaRequest& request);
[[nodiscard]] Result<ApplyDeltaRequest> DecodeApplyDeltaRequest(
    std::string_view payload);

/// Ack of an apply-delta request: every delta is on the log and the
/// resident dataset now serves `generation`.
struct ApplyDeltaResponse {
  uint32_t applied = 0;
  uint64_t generation = 0;
};

[[nodiscard]] std::string EncodeApplyDeltaResponse(
    const ApplyDeltaResponse& response);
[[nodiscard]] Result<ApplyDeltaResponse> DecodeApplyDeltaResponse(
    std::string_view payload);

/// Live-introspection query (v3): how much of each introspection
/// table to return. The response frame's payload is the raw
/// corrob.introspect/1 JSON document (no version byte), mirroring the
/// stats frame.
struct IntrospectRequest {
  /// Per-tenant aggregate rows to include (by request count).
  uint32_t top_k = 10;
  /// Completed records from the flight-recorder ring to include;
  /// capped server-side by the ring capacity.
  uint32_t max_recent = 100;
};

[[nodiscard]] std::string EncodeIntrospectRequest(
    const IntrospectRequest& request);
[[nodiscard]] Result<IntrospectRequest> DecodeIntrospectRequest(
    std::string_view payload);

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_PROTOCOL_H_
