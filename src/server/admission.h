#ifndef CORROB_SERVER_ADMISSION_H_
#define CORROB_SERVER_ADMISSION_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/budget.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "server/protocol.h"

// Admission control for corrobd: a bounded wait queue per priority
// class in front of a fixed pool of execution slots. A request either
// gets a slot (possibly after queueing), is shed immediately with a
// structured kOverloaded decision carrying a backlog-derived
// retry-after hint, or observes its own deadline/cancellation while
// queued. Nothing here queues unboundedly: the queue capacities are
// the whole backpressure story, and the saturation benchmark
// (tools/loadgen) measures the resulting shed curve.

namespace corrob {
namespace server {

struct AdmissionOptions {
  /// Requests executing at once (the slot pool). Queued requests wait;
  /// values < 1 are clamped to 1.
  int max_concurrency = 4;
  /// Bounded wait-queue depth per priority class (index = Priority).
  /// A request arriving with its class queue full is shed.
  std::array<int, kNumPriorities> queue_capacity = {8, 16, 32};
  /// Per-class default request deadline, applied when a request does
  /// not carry its own timeout_ms. 0 = no deadline.
  std::array<int64_t, kNumPriorities> default_timeout_ms = {2000, 30000,
                                                            120000};
  /// Per-class default ResourceBudget::max_rounds when the request
  /// does not set one. 0 = unlimited.
  std::array<int64_t, kNumPriorities> default_max_rounds = {0, 0, 0};
};

/// What happened to one admission attempt.
struct AdmissionDecision {
  enum class Outcome {
    /// A slot is held; the caller must Release() when done.
    kAdmitted,
    /// Shed: class queue full. Carries the retry-after hint.
    kShed,
    /// The request's own StopSignal fired while queued.
    kCancelled,
  };
  Outcome outcome = Outcome::kShed;
  /// Backlog-derived hint for kShed (clamped to [25ms, 60s]).
  uint32_t retry_after_ms = 0;
  /// Waiters in the request's class queue when the decision was made.
  uint32_t queue_depth = 0;
  /// Time spent queued before the decision.
  int64_t queue_wait_nanos = 0;
};

/// Thread-safe slot pool + bounded priority queues. One instance per
/// server; all methods may be called from any connection thread.
class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options,
                      const obs::Clock* clock);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Tries to take an execution slot for a request of class
  /// `priority`, waiting in the class's bounded queue when the pool
  /// is busy. Lower-numbered classes are granted slots first;
  /// within a class, grants follow arrival order. `stop` is the
  /// request's own deadline/cancellation and bounds the queue wait.
  [[nodiscard]] AdmissionDecision Admit(Priority priority,
                                        const StopSignal& stop);

  /// Returns the slot taken by an admitted request. `service_nanos`
  /// (the request's execution time) feeds the retry-after estimate.
  void Release(Priority priority, int64_t service_nanos);

  /// Executing requests (slots in use).
  [[nodiscard]] int running() const;
  /// Current wait-queue depth of one class.
  [[nodiscard]] int queued(Priority priority) const;

  [[nodiscard]] const AdmissionOptions& options() const { return options_; }

 private:
  /// Millisecond retry-after estimate from the current backlog:
  /// (work ahead of a new arrival) x (EWMA service time) spread over
  /// the slot pool. Callers hold `mutex_`.
  uint32_t RetryAfterMsLocked(Priority priority) const
      CORROB_REQUIRES(mutex_);

  AdmissionOptions options_;
  const obs::Clock* clock_;

  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  int running_ CORROB_GUARDED_BY(mutex_) = 0;
  /// Tickets of queued requests, in arrival order, one deque per
  /// class; a waiter whose StopSignal fires removes its own ticket,
  /// so a dead waiter can never block the ones behind it. Bounded by
  /// options_.queue_capacity.
  std::array<std::deque<uint64_t>, kNumPriorities> queue_
      CORROB_GUARDED_BY(mutex_);
  uint64_t next_ticket_ CORROB_GUARDED_BY(mutex_) = 0;
  /// EWMA of request service time (nanos), the retry-after basis.
  double ewma_service_nanos_ CORROB_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_ADMISSION_H_
