#ifndef CORROB_SERVER_FRAME_H_
#define CORROB_SERVER_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/budget.h"
#include "common/result.h"
#include "common/status.h"

// Wire framing of the corrobd protocol (docs/SERVING.md). Every
// message is one length-prefixed, checksummed frame:
//
//   [u32 magic "CRB1"][u8 type][u32 payload length][payload]
//   [u32 CRC-32 of type byte + payload]
//
// all integers little-endian. The codec never trusts the peer: a bad
// magic, an oversized length, an unknown type or a checksum mismatch
// each produce a distinct typed error (and the fault-injection tests
// in tests/server/frame_test.cc pin that none of them can crash or
// wedge the daemon).

namespace corrob {
namespace server {

/// Message kind carried by a frame. Requests have the high bit clear,
/// responses have it set.
enum class FrameType : uint8_t {
  kCorroborateRequest = 0x01,
  kPingRequest = 0x02,
  kStatsRequest = 0x03,
  kBatchRequest = 0x04,
  kReloadRequest = 0x05,
  kIntrospectRequest = 0x06,
  kApplyDeltaRequest = 0x07,
  kResultResponse = 0x81,
  kErrorResponse = 0x82,
  kOverloadedResponse = 0x83,
  kPongResponse = 0x84,
  kStatsResponse = 0x85,
  kBatchResponse = 0x86,
  kQuotaExceededResponse = 0x87,
  kReloadResponse = 0x88,
  kIntrospectResponse = 0x89,
  kApplyDeltaResponse = 0x8A,
};

/// Stable lowercase name, e.g. "corroborate_request".
[[nodiscard]] std::string_view FrameTypeName(FrameType type);

/// True when `raw` is one of the FrameType values.
[[nodiscard]] bool IsKnownFrameType(uint8_t raw);

inline constexpr uint32_t kFrameMagic = 0x31425243;  // "CRB1"
/// Frame header: magic + type + payload length.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;
/// CRC-32 trailer.
inline constexpr size_t kFrameTrailerBytes = 4;
/// Hard cap on one frame's payload; a header claiming more is
/// rejected before any allocation (64 MiB holds the response for an
/// ~4M-fact corroboration).
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kPingRequest;
  std::string payload;
};

/// Serializes `frame` (header + payload + checksum).
[[nodiscard]] std::string EncodeFrame(const Frame& frame);

/// Decodes one complete frame from the front of `wire`. Typed errors:
///   ParseError       - bad magic, checksum mismatch, or `wire` is
///                      shorter than the frame it announces;
///   InvalidArgument  - unknown frame type or payload length above
///                      kMaxFramePayload.
/// On success `*consumed` (when non-null) is the encoded size.
[[nodiscard]] Result<Frame> DecodeFrame(std::string_view wire,
                                        size_t* consumed = nullptr);

/// Reads one frame from `fd`, polling `stop`. Error taxonomy of
/// DecodeFrame plus:
///   ConnectionLost - the peer closed mid-frame (bytes of the frame
///                    were already on the wire);
///   IoError        - the peer closed on a frame boundary when a
///                    frame was expected, or the socket died;
///   Cancelled      - `stop` fired.
/// The "server.frame.read" failpoint is checked before the read.
[[nodiscard]] Result<Frame> ReadFrame(int fd, const StopSignal& stop);

/// Like ReadFrame, but a clean close on a frame boundary returns
/// nullopt instead of an error (how connection loops see goodbye).
[[nodiscard]] Result<std::optional<Frame>> ReadFrameOrEof(
    int fd, const StopSignal& stop);

/// Writes one frame to `fd`, polling `stop`. The "server.frame.write"
/// failpoint is checked before the write.
[[nodiscard]] Status WriteFrame(int fd, const Frame& frame,
                                const StopSignal& stop);

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_FRAME_H_
