#include "server/client.h"

#include <utility>

namespace corrob {
namespace server {

namespace {

/// Decodes one response (frame type + payload) into an outcome. Used
/// for standalone response frames and for each item of a batch
/// response; `raw_frame` is always the standalone framing of the
/// bytes, so equivalence tests compare like with like.
Result<CorroborateOutcome> DecodeOutcome(FrameType type,
                                         const std::string& payload) {
  CorroborateOutcome outcome;
  Frame framed;
  framed.type = type;
  framed.payload = payload;
  outcome.raw_frame = EncodeFrame(framed);
  switch (type) {
    case FrameType::kResultResponse: {
      outcome.kind = CorroborateOutcome::Kind::kResult;
      CORROB_ASSIGN_OR_RETURN(outcome.result,
                              DecodeCorroborateResponse(payload));
      return outcome;
    }
    case FrameType::kErrorResponse: {
      outcome.kind = CorroborateOutcome::Kind::kError;
      CORROB_ASSIGN_OR_RETURN(outcome.error, DecodeErrorResponse(payload));
      return outcome;
    }
    case FrameType::kOverloadedResponse: {
      outcome.kind = CorroborateOutcome::Kind::kOverloaded;
      CORROB_ASSIGN_OR_RETURN(outcome.overloaded,
                              DecodeOverloadedResponse(payload));
      return outcome;
    }
    case FrameType::kQuotaExceededResponse: {
      outcome.kind = CorroborateOutcome::Kind::kQuotaExceeded;
      CORROB_ASSIGN_OR_RETURN(outcome.quota,
                              DecodeQuotaExceededResponse(payload));
      return outcome;
    }
    default: {
      return Status::ParseError(
          "unexpected response frame '" +
          std::string(FrameTypeName(type)) +
          "' to a corroborate request");
    }
  }
}

}  // namespace

Result<CorrobClient> CorrobClient::Connect(const std::string& socket_path) {
  CORROB_ASSIGN_OR_RETURN(UniqueFd fd, ConnectUnixSocket(socket_path));
  return CorrobClient(std::move(fd), socket_path);
}

Result<Frame> CorrobClient::RoundTrip(const Frame& request,
                                      const StopSignal& stop) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  CORROB_RETURN_NOT_OK(WriteFrame(fd_.get(), request, stop));
  // ReadFrame's taxonomy flows through untouched: a daemon that died
  // mid-response surfaces as kConnectionLost, a close on the frame
  // boundary (it never answered) as kIoError.
  return ReadFrame(fd_.get(), stop);
}

Result<Frame> CorrobClient::RoundTripWithReconnect(const Frame& request,
                                                   const StopSignal& stop) {
  if (!reconnect_enabled_) return RoundTrip(request, stop);
  return Retry(reconnect_policy_, [&]() -> Result<Frame> {
    if (!fd_.valid()) {
      Result<UniqueFd> redial = ConnectUnixSocket(socket_path_);
      if (!redial.ok()) {
        // A refused dial while the daemon restarts is the same
        // transient condition as the lost connection that got us
        // here; keep the retry loop alive with the transient code.
        return Status::ConnectionLost("reconnect to '" + socket_path_ +
                                      "' failed: " +
                                      redial.status().message());
      }
      fd_ = std::move(redial).ValueOrDie();
    }
    Result<Frame> response = RoundTrip(request, stop);
    if (!response.ok() && IsTransientCode(response.status().code())) {
      // The stream may no longer be frame-aligned; the next attempt
      // dials fresh.
      Close();
    }
    return response;
  });
}

Result<CorroborateOutcome> CorrobClient::Corroborate(
    const CorroborateRequest& request, const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kCorroborateRequest;
  wire.payload = EncodeCorroborateRequest(request);
  CORROB_ASSIGN_OR_RETURN(Frame response,
                          RoundTripWithReconnect(wire, stop));
  return DecodeOutcome(response.type, response.payload);
}

Result<std::vector<CorroborateOutcome>> CorrobClient::BatchCorroborate(
    const BatchRequest& request, const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kBatchRequest;
  wire.payload = EncodeBatchRequest(request);
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));

  std::vector<CorroborateOutcome> outcomes;
  if (response.type == FrameType::kBatchResponse) {
    CORROB_ASSIGN_OR_RETURN(BatchResponse batch,
                            DecodeBatchResponse(response.payload));
    if (batch.items.size() != request.items.size()) {
      return Status::ParseError(
          "batch response has " + std::to_string(batch.items.size()) +
          " items for " + std::to_string(request.items.size()) +
          " requests");
    }
    outcomes.reserve(batch.items.size());
    for (const BatchItemResponse& item : batch.items) {
      CORROB_ASSIGN_OR_RETURN(
          CorroborateOutcome outcome,
          DecodeOutcome(static_cast<FrameType>(item.type), item.payload));
      outcomes.push_back(std::move(outcome));
    }
    return outcomes;
  }
  // A whole-batch rejection (quota, malformed frame): one outcome per
  // requested item would be a lie — surface the single response as
  // one outcome so the caller sees exactly what the daemon said.
  CORROB_ASSIGN_OR_RETURN(CorroborateOutcome outcome,
                          DecodeOutcome(response.type, response.payload));
  outcomes.push_back(std::move(outcome));
  return outcomes;
}

Result<ReloadResponse> CorrobClient::Reload(const ReloadRequest& request,
                                            const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kReloadRequest;
  wire.payload = EncodeReloadRequest(request);
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));
  if (response.type == FrameType::kErrorResponse) {
    CORROB_ASSIGN_OR_RETURN(ErrorResponse error,
                            DecodeErrorResponse(response.payload));
    return Status(static_cast<StatusCode>(error.code), error.message);
  }
  if (response.type != FrameType::kReloadResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to a reload request");
  }
  return DecodeReloadResponse(response.payload);
}

Result<ApplyDeltaResponse> CorrobClient::ApplyDelta(
    const ApplyDeltaRequest& request, const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kApplyDeltaRequest;
  wire.payload = EncodeApplyDeltaRequest(request);
  // Deliberately the plain RoundTrip: a delta batch the daemon may
  // have logged before dying must not be silently resent.
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));
  if (response.type == FrameType::kErrorResponse) {
    CORROB_ASSIGN_OR_RETURN(ErrorResponse error,
                            DecodeErrorResponse(response.payload));
    return Status(static_cast<StatusCode>(error.code), error.message);
  }
  if (response.type != FrameType::kApplyDeltaResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to an apply-delta request");
  }
  return DecodeApplyDeltaResponse(response.payload);
}

Result<std::string> CorrobClient::Ping(const std::string& payload,
                                       const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kPingRequest;
  wire.payload = payload;
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));
  if (response.type != FrameType::kPongResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to a ping");
  }
  return response.payload;
}

Result<std::string> CorrobClient::Stats(const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kStatsRequest;
  CORROB_ASSIGN_OR_RETURN(Frame response,
                          RoundTripWithReconnect(wire, stop));
  if (response.type != FrameType::kStatsResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to a stats request");
  }
  return response.payload;
}

Result<std::string> CorrobClient::Introspect(const IntrospectRequest& request,
                                             const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kIntrospectRequest;
  wire.payload = EncodeIntrospectRequest(request);
  CORROB_ASSIGN_OR_RETURN(Frame response,
                          RoundTripWithReconnect(wire, stop));
  if (response.type == FrameType::kErrorResponse) {
    CORROB_ASSIGN_OR_RETURN(ErrorResponse error,
                            DecodeErrorResponse(response.payload));
    return Status(static_cast<StatusCode>(error.code), error.message);
  }
  if (response.type != FrameType::kIntrospectResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to an introspect request");
  }
  return response.payload;
}

}  // namespace server
}  // namespace corrob
