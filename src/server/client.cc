#include "server/client.h"

#include <utility>

namespace corrob {
namespace server {

Result<CorrobClient> CorrobClient::Connect(const std::string& socket_path) {
  CORROB_ASSIGN_OR_RETURN(UniqueFd fd, ConnectUnixSocket(socket_path));
  return CorrobClient(std::move(fd));
}

Result<Frame> CorrobClient::RoundTrip(const Frame& request,
                                      const StopSignal& stop) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("client is not connected");
  }
  CORROB_RETURN_NOT_OK(WriteFrame(fd_.get(), request, stop));
  return ReadFrame(fd_.get(), stop);
}

Result<CorroborateOutcome> CorrobClient::Corroborate(
    const CorroborateRequest& request, const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kCorroborateRequest;
  wire.payload = EncodeCorroborateRequest(request);
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));

  CorroborateOutcome outcome;
  outcome.raw_frame = EncodeFrame(response);
  switch (response.type) {
    case FrameType::kResultResponse: {
      outcome.kind = CorroborateOutcome::Kind::kResult;
      CORROB_ASSIGN_OR_RETURN(outcome.result,
                              DecodeCorroborateResponse(response.payload));
      return outcome;
    }
    case FrameType::kErrorResponse: {
      outcome.kind = CorroborateOutcome::Kind::kError;
      CORROB_ASSIGN_OR_RETURN(outcome.error,
                              DecodeErrorResponse(response.payload));
      return outcome;
    }
    case FrameType::kOverloadedResponse: {
      outcome.kind = CorroborateOutcome::Kind::kOverloaded;
      CORROB_ASSIGN_OR_RETURN(outcome.overloaded,
                              DecodeOverloadedResponse(response.payload));
      return outcome;
    }
    default: {
      return Status::ParseError(
          "unexpected response frame '" +
          std::string(FrameTypeName(response.type)) +
          "' to a corroborate request");
    }
  }
}

Result<std::string> CorrobClient::Ping(const std::string& payload,
                                       const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kPingRequest;
  wire.payload = payload;
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));
  if (response.type != FrameType::kPongResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to a ping");
  }
  return response.payload;
}

Result<std::string> CorrobClient::Stats(const StopSignal& stop) {
  Frame wire;
  wire.type = FrameType::kStatsRequest;
  CORROB_ASSIGN_OR_RETURN(Frame response, RoundTrip(wire, stop));
  if (response.type != FrameType::kStatsResponse) {
    return Status::ParseError("unexpected response frame '" +
                              std::string(FrameTypeName(response.type)) +
                              "' to a stats request");
  }
  return response.payload;
}

}  // namespace server
}  // namespace corrob
