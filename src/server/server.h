#ifndef CORROB_SERVER_SERVER_H_
#define CORROB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "data/dataset.h"
#include "obs/clock.h"
#include "server/admission.h"
#include "server/frame.h"
#include "server/protocol.h"

// corrobd: the corroboration daemon. Datasets are loaded once at
// startup into shared read-only state; each connection gets a thread
// whose requests run under their own child CancellationToken,
// Deadline and ResourceBudget, behind the AdmissionController's
// bounded queues. One request's failure (failpoint, bad payload,
// budget exhaustion, client disconnect) produces a typed response
// frame and never takes the daemon down. SIGTERM drains: accepting
// stops, in-flight requests finish (bit-identical to a fresh daemon)
// under a drain deadline, and the process exits 0. docs/SERVING.md
// is the operator-facing description of all of this.

namespace corrob {
namespace server {

struct ServerOptions {
  /// Unix-domain socket path the daemon listens on.
  std::string socket_path;
  /// Datasets served, each "name=path/to.csv" or a bare path (the
  /// name is then the file stem, e.g. "flights" for flights.csv).
  std::vector<std::string> dataset_specs;
  /// Admission control: slot pool + bounded per-class queues.
  AdmissionOptions admission;
  /// Worker threads each corroboration run may use (results are
  /// bit-identical at any value).
  int run_threads = 1;
  /// After a drain request, how long in-flight requests may keep
  /// running before the abort token cuts them short. They still
  /// respond (termination=cancelled) — polling runs are never left
  /// without an answer.
  int64_t drain_timeout_ms = 10000;
  /// Time source for deadlines and latency metrics.
  const obs::Clock* clock = nullptr;  // null → MonotonicClock::Get()
};

/// One dataset resident in the daemon, shared read-only by every
/// request that names it.
struct ServedDataset {
  std::string name;
  Dataset dataset;
};

class CorrobdServer {
 public:
  explicit CorrobdServer(ServerOptions options);
  ~CorrobdServer();

  CorrobdServer(const CorrobdServer&) = delete;
  CorrobdServer& operator=(const CorrobdServer&) = delete;

  /// Loads every dataset and binds the listening socket. Must succeed
  /// before Serve(); fails on unloadable datasets, duplicate names,
  /// or an unbindable socket path.
  [[nodiscard]] Status Start();

  /// Accept loop: serves connections until `drain` fires, then drains
  /// — stops accepting, lets in-flight requests finish (up to
  /// drain_timeout_ms, then cancels them via the abort token), joins
  /// every thread. Returns OK after a clean or drained exit. Blocks
  /// the calling thread for the daemon's whole life.
  [[nodiscard]] Status Serve(const CancellationToken* drain);

  /// Datasets resident after Start(), sorted by name (for startup
  /// logs and tests).
  std::vector<std::string> dataset_names() const;

  const ServerOptions& options() const { return options_; }
  const AdmissionController& admission() const { return *admission_; }

  /// Requests fully served (any response frame written).
  int64_t responses_sent() const {
    return responses_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  /// Runs one connection: frame loop until EOF, drain, or a framing
  /// error. Never throws; never exits the process.
  void RunConnection(Connection* connection);

  /// Handles one decoded frame; writes exactly one response frame.
  /// The Status reports connection-fatal conditions (write failed,
  /// stream desynced); request-level failures are reported to the
  /// client in-band and return OK here.
  [[nodiscard]] Status HandleFrame(Connection* connection,
                                   FrameType type,
                                   const std::string& payload);

  /// The corroborate path: admission, RunContext assembly, the run
  /// itself, and the response/error/overloaded frame.
  [[nodiscard]] Status HandleCorroborate(Connection* connection,
                                         const std::string& payload);

  /// Serves the stats frame: a JSON snapshot of queues, slots and
  /// request counters.
  [[nodiscard]] Status HandleStats(Connection* connection);

  /// Background loop that cancels the request token of any executing
  /// request whose client closed its end of the socket.
  void WatchDisconnects();

  const ServedDataset* FindDataset(const std::string& name) const;

  /// Stop signal for response writes: a bounded write deadline and
  /// nothing else, so a request cut short by its own deadline — or by
  /// the drain deadline's abort — still reports its graceful
  /// termination to the client.
  StopSignal WriteStop() const;

  ServerOptions options_;
  const obs::Clock* clock_ = nullptr;

  std::vector<ServedDataset> datasets_;
  UniqueFd listener_;
  std::unique_ptr<AdmissionController> admission_;

  /// Fires only when drain patience runs out (or at shutdown): the
  /// parent of every request token. Deliberately NOT the drain token,
  /// so draining lets in-flight work finish.
  CancellationToken abort_token_;
  /// Child of abort_token_, cancelled the moment draining begins:
  /// unblocks connection threads idling in a next-frame read without
  /// disturbing request execution.
  CancellationToken read_interrupt_{&abort_token_};

  /// Flips when Serve() begins draining; connection threads stop
  /// reading new requests once set.
  std::atomic<bool> draining_{false};
  /// Flips when Serve() tears down; stops the disconnect watcher.
  std::atomic<bool> stopping_{false};

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<int64_t> responses_sent_{0};
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_SERVER_H_
