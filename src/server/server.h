#ifndef CORROB_SERVER_SERVER_H_
#define CORROB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/socket.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "data/wal.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "server/admission.h"
#include "server/cache.h"
#include "server/coalesce.h"
#include "server/frame.h"
#include "server/protocol.h"
#include "server/quota.h"

// corrobd: the corroboration daemon. Datasets are loaded once at
// startup into shared read-only state (reloadable in place, bumping a
// generation that invalidates cached results); each connection gets a
// thread whose requests run under their own child CancellationToken,
// Deadline and ResourceBudget, behind the AdmissionController's
// bounded queues. The serving-efficiency layer sits in front of the
// run: a sharded LRU result cache replays bit-identical responses,
// a coalescer lets concurrent identical requests share one run, and
// per-tenant quotas shed with typed retry-after frames. One request's
// failure (failpoint, bad payload, budget exhaustion, client
// disconnect) produces a typed response frame and never takes the
// daemon down. SIGTERM drains: accepting stops, in-flight requests
// finish (bit-identical to a fresh daemon) under a drain deadline,
// and the process exits 0. docs/SERVING.md is the operator-facing
// description of all of this.

namespace corrob {
namespace server {

struct ServerOptions {
  /// Unix-domain socket path the daemon listens on.
  std::string socket_path;
  /// Datasets served, each "name=path/to.csv" or a bare path (the
  /// name is then the file stem, e.g. "flights" for flights.csv).
  std::vector<std::string> dataset_specs;
  /// Admission control: slot pool + bounded per-class queues.
  AdmissionOptions admission;
  /// Result cache sizing; capacity_entries = 0 disables caching.
  CacheOptions cache;
  /// Default per-tenant limits (0 = unlimited = pre-quota behavior).
  QuotaOptions quota;
  /// Per-tenant overrides of quota.default_limits, keyed by tenant id.
  std::vector<std::pair<std::string, TenantLimits>> tenant_overrides;
  /// Worker threads each corroboration run may use (results are
  /// bit-identical at any value).
  int run_threads = 1;
  /// After a drain request, how long in-flight requests may keep
  /// running before the abort token cuts them short. They still
  /// respond (termination=cancelled) — polling runs are never left
  /// without an answer.
  int64_t drain_timeout_ms = 10000;
  /// Completed-request ring capacity of the flight recorder; 0
  /// disarms it (Begin/End become no-ops, introspection returns
  /// empty tables).
  int flight_recorder_entries = 1024;
  /// Requests whose total time reaches this threshold keep their span
  /// timeline in the flight recorder and emit a structured warning;
  /// 0 disables the slow-request log.
  int64_t slow_request_ms = 0;
  /// Cadence of the stuck-request watchdog; 0 disables the watchdog
  /// thread entirely.
  int64_t watchdog_interval_ms = 1000;
  /// An in-flight request is flagged as stuck once its age exceeds
  /// this multiple of its effective deadline allowance.
  double watchdog_deadline_multiplier = 4.0;
  /// Root directory of the per-dataset write-ahead vote-delta logs
  /// (each dataset logs under <wal_dir>/<name>). Empty disables delta
  /// ingestion: apply-delta frames are answered with
  /// FailedPrecondition and the daemon never touches the disk after
  /// startup. When set, Start() replays any surviving log onto the
  /// CSV load, so acked deltas outlive kill -9.
  std::string wal_dir;
  /// Durability/throughput trade of the logs (docs/ROBUSTNESS.md).
  WalFsyncPolicy wal_fsync = WalFsyncPolicy::kAlways;
  /// Records between fsyncs under the interval policy.
  int64_t wal_fsync_interval_records = 64;
  /// Segment rotation threshold in bytes.
  int64_t wal_segment_bytes = 4 * 1024 * 1024;
  /// Time source for deadlines and latency metrics.
  const obs::Clock* clock = nullptr;  // null → MonotonicClock::Get()
};

/// One dataset resident in the daemon, shared read-only by every
/// request that names it. Requests snapshot the shared_ptr under the
/// mutex; HandleReload swaps in a fresh load and bumps `generation`,
/// so in-flight runs keep their snapshot while new cache keys see the
/// new generation.
struct ServedDataset {
  std::string name;
  std::string path;
  mutable std::mutex mutex;
  std::shared_ptr<const Dataset> dataset CORROB_GUARDED_BY(mutex);
  std::atomic<uint64_t> generation{1};
  /// Serializes mutators (apply-delta requests). Separate from
  /// `mutex` so a long delta rebuild never blocks readers, which only
  /// take `mutex` for the shared_ptr snapshot; the swap at the end of
  /// an apply briefly takes both (wal_mutex before mutex, always).
  mutable std::mutex wal_mutex;
  /// Durable vote-delta log, present only when the daemon runs with a
  /// --wal directory. Appends happen under wal_mutex (one writer at a
  /// time; the log is strictly ordered), so the WAL order always
  /// matches the order deltas were applied to `dataset`.
  std::unique_ptr<WalWriter> wal CORROB_GUARDED_BY(wal_mutex);
  /// Cleared when a WAL append or fsync fails. From then on the
  /// dataset serves read-only: reads keep working from the resident
  /// snapshot, apply-delta requests get a typed kWalUnavailable
  /// error, and the daemon stays up.
  bool wal_healthy CORROB_GUARDED_BY(wal_mutex) = true;
  /// Mutations appended since startup (markers excluded); reported in
  /// the stats document so operators can size compaction.
  std::atomic<uint64_t> deltas_applied{0};
};

class CorrobdServer {
 public:
  explicit CorrobdServer(ServerOptions options);
  ~CorrobdServer();

  CorrobdServer(const CorrobdServer&) = delete;
  CorrobdServer& operator=(const CorrobdServer&) = delete;

  /// Loads every dataset and binds the listening socket. Must succeed
  /// before Serve(); fails on unloadable datasets, duplicate names,
  /// or an unbindable socket path.
  [[nodiscard]] Status Start();

  /// Accept loop: serves connections until `drain` fires, then drains
  /// — stops accepting, lets in-flight requests finish (up to
  /// drain_timeout_ms, then cancels them via the abort token), joins
  /// every thread. Returns OK after a clean or drained exit. Blocks
  /// the calling thread for the daemon's whole life.
  [[nodiscard]] Status Serve(const CancellationToken* drain);

  /// Datasets resident after Start(), sorted by name (for startup
  /// logs and tests).
  [[nodiscard]] std::vector<std::string> dataset_names() const;

  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] const AdmissionController& admission() const {
    return *admission_;
  }
  [[nodiscard]] const ResultCache& cache() const { return *cache_; }
  [[nodiscard]] const RunCoalescer& coalescer() const { return coalescer_; }
  [[nodiscard]] const TenantQuotas& quotas() const { return *quotas_; }

  /// Requests fully served (any response frame written).
  [[nodiscard]] int64_t responses_sent() const {
    return responses_sent_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  /// The request-shaped core shared by the standalone corroborate
  /// path and each batch item: everything but the frame write.
  struct SubRequest {
    Priority priority = Priority::kBatch;
    std::string tenant;
    std::string dataset;
    std::string algorithm;
    uint32_t timeout_ms = 0;
    uint32_t max_rounds = 0;
    OptionList options;  // already normalized by the codec
    /// Client correlation id (v3); recorded in the flight recorder.
    /// Batch items never carry one.
    std::string request_id;
  };

  /// What ExecuteOne produced: the response frame type and its
  /// payload, byte-identical whether it is written standalone or
  /// embedded as a batch item.
  struct SubResponse {
    FrameType type = FrameType::kErrorResponse;
    std::string payload;
  };

  /// Runs one connection: frame loop until EOF, drain, or a framing
  /// error. Never throws; never exits the process.
  void RunConnection(Connection* connection);

  /// Handles one decoded frame; writes exactly one response frame.
  /// The Status reports connection-fatal conditions (write failed,
  /// stream desynced); request-level failures are reported to the
  /// client in-band and return OK here.
  [[nodiscard]] Status HandleFrame(Connection* connection,
                                   FrameType type,
                                   const std::string& payload);

  /// The corroborate path: decode, then ExecuteOne, then the frame.
  [[nodiscard]] Status HandleCorroborate(Connection* connection,
                                         const std::string& payload);

  /// The batch path: one rate charge of items.size() units, then each
  /// item through ExecuteOne sequentially (per-item admission — a
  /// batch takes N units of daemon capacity, not one).
  [[nodiscard]] Status HandleBatch(Connection* connection,
                                   const std::string& payload);

  /// Administrative dataset reload: swap in a fresh load, bump the
  /// generation, invalidate the cache. Rejected with
  /// FailedPrecondition for WAL-backed datasets — a raw CSV swap
  /// would diverge from the log's replay.
  [[nodiscard]] Status HandleReload(Connection* connection,
                                    const std::string& payload);

  /// Durable mutation path: append the decoded deltas to the
  /// dataset's WAL as one atomic batch frame (ack only after the
  /// append — and fsync, under the always policy — succeeded; a
  /// NACKed batch never leaves a durable prefix of itself behind),
  /// then rebuild the resident dataset
  /// through core delta-apply, bump the generation and invalidate
  /// cached results. A WAL failure flips the dataset to read-only
  /// serving with a typed kWalUnavailable error; it never takes the
  /// daemon down.
  [[nodiscard]] Status HandleApplyDelta(Connection* connection,
                                        const std::string& payload);

  /// Serves the stats frame: a JSON snapshot of queues, slots, cache,
  /// coalescer, quota and request counters.
  [[nodiscard]] Status HandleStats(Connection* connection);

  /// Serves the introspect frame: the corrob.introspect/1 JSON
  /// document (active requests, flight-recorder ring, per-tenant
  /// aggregates, latency histograms, watchdog counters, full metrics
  /// dump).
  [[nodiscard]] Status HandleIntrospect(Connection* connection,
                                        const std::string& payload);

  /// Cache lookup → quota → admission → coalesce → run. When
  /// `charge_rate` (standalone requests), the tenant's rate bucket is
  /// charged one token up front; batch items are pre-charged by
  /// HandleBatch.
  [[nodiscard]] SubResponse ExecuteOne(Connection* connection,
                                       const SubRequest& request,
                                       bool charge_rate);

  /// Re-reads `served` from its startup path. On success the new data
  /// is swapped in, the generation bumps, and cached results for the
  /// dataset are invalidated; on failure the old data stays live.
  /// FailedPrecondition when the dataset has a WAL: its resident
  /// state is CSV + replayed log, and swapping in the raw CSV would
  /// make live serving diverge from what the next restart replays.
  [[nodiscard]] Status ReloadDataset(ServedDataset* served);

  /// Background loop that cancels the request token of any executing
  /// request whose client closed its end of the socket.
  void WatchDisconnects();

  /// Watchdog loop: every watchdog_interval_ms, flags in-flight
  /// requests whose age exceeds watchdog_deadline_multiplier times
  /// their deadline allowance, logging each once and keeping the
  /// corrob.server.watchdog.* metrics current.
  void WatchStuckRequests();

  [[nodiscard]] ServedDataset* FindDataset(const std::string& name) const;

  /// Stop signal for response writes: a bounded write deadline and
  /// nothing else, so a request cut short by its own deadline — or by
  /// the drain deadline's abort — still reports its graceful
  /// termination to the client.
  StopSignal WriteStop() const;

  ServerOptions options_;
  const obs::Clock* clock_ = nullptr;

  std::vector<std::unique_ptr<ServedDataset>> datasets_;
  UniqueFd listener_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ResultCache> cache_;
  RunCoalescer coalescer_;
  std::unique_ptr<TenantQuotas> quotas_;
  std::unique_ptr<obs::FlightRecorder> recorder_;

  /// Watchdog tallies mirrored into the introspection document (the
  /// metrics registry is process-global; these are this daemon's own).
  std::atomic<int64_t> watchdog_scans_{0};
  std::atomic<int64_t> watchdog_flagged_{0};

  /// Fires only when drain patience runs out (or at shutdown): the
  /// parent of every request token. Deliberately NOT the drain token,
  /// so draining lets in-flight work finish.
  CancellationToken abort_token_;
  /// Child of abort_token_, cancelled the moment draining begins:
  /// unblocks connection threads idling in a next-frame read without
  /// disturbing request execution.
  CancellationToken read_interrupt_{&abort_token_};

  /// Flips when Serve() begins draining; connection threads stop
  /// reading new requests once set.
  std::atomic<bool> draining_{false};
  /// Flips when Serve() tears down; stops the disconnect watcher.
  std::atomic<bool> stopping_{false};

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      CORROB_GUARDED_BY(connections_mutex_);

  std::atomic<int64_t> responses_sent_{0};
};

}  // namespace server
}  // namespace corrob

#endif  // CORROB_SERVER_SERVER_H_
