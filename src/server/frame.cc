#include "server/frame.h"

#include <cstdio>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/socket.h"

namespace corrob {
namespace server {

namespace {

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t GetU32(const char* bytes) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[3])) << 24;
}

uint32_t FrameChecksum(uint8_t type, std::string_view payload) {
  Crc32 crc;
  const char type_byte = static_cast<char>(type);
  crc.Update(std::string_view(&type_byte, 1));
  crc.Update(payload);
  return crc.Digest();
}

/// Validates the decoded header fields shared by the buffer and
/// socket decode paths.
Status CheckHeader(uint32_t magic, uint8_t raw_type,
                   uint32_t payload_length) {
  if (magic != kFrameMagic) {
    return Status::ParseError("bad frame magic 0x" + [&] {
      char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%08x", magic);
      return std::string(buffer);
    }());
  }
  if (payload_length > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_length) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte cap");
  }
  if (!IsKnownFrameType(raw_type)) {
    return Status::InvalidArgument("unknown frame type 0x" + [&] {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "%02x", raw_type);
      return std::string(buffer);
    }());
  }
  return Status::OK();
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kCorroborateRequest:
      return "corroborate_request";
    case FrameType::kPingRequest:
      return "ping_request";
    case FrameType::kStatsRequest:
      return "stats_request";
    case FrameType::kBatchRequest:
      return "batch_request";
    case FrameType::kReloadRequest:
      return "reload_request";
    case FrameType::kIntrospectRequest:
      return "introspect_request";
    case FrameType::kApplyDeltaRequest:
      return "apply_delta_request";
    case FrameType::kResultResponse:
      return "result_response";
    case FrameType::kErrorResponse:
      return "error_response";
    case FrameType::kOverloadedResponse:
      return "overloaded_response";
    case FrameType::kPongResponse:
      return "pong_response";
    case FrameType::kStatsResponse:
      return "stats_response";
    case FrameType::kBatchResponse:
      return "batch_response";
    case FrameType::kQuotaExceededResponse:
      return "quota_exceeded_response";
    case FrameType::kReloadResponse:
      return "reload_response";
    case FrameType::kIntrospectResponse:
      return "introspect_response";
    case FrameType::kApplyDeltaResponse:
      return "apply_delta_response";
  }
  return "unknown";
}

bool IsKnownFrameType(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kCorroborateRequest:
    case FrameType::kPingRequest:
    case FrameType::kStatsRequest:
    case FrameType::kBatchRequest:
    case FrameType::kReloadRequest:
    case FrameType::kResultResponse:
    case FrameType::kErrorResponse:
    case FrameType::kOverloadedResponse:
    case FrameType::kPongResponse:
    case FrameType::kStatsResponse:
    case FrameType::kBatchResponse:
    case FrameType::kIntrospectRequest:
    case FrameType::kQuotaExceededResponse:
    case FrameType::kReloadResponse:
    case FrameType::kIntrospectResponse:
    case FrameType::kApplyDeltaRequest:
    case FrameType::kApplyDeltaResponse:
      return true;
  }
  return false;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() +
              kFrameTrailerBytes);
  PutU32(&out, kFrameMagic);
  out.push_back(static_cast<char>(frame.type));
  PutU32(&out, static_cast<uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  PutU32(&out, FrameChecksum(static_cast<uint8_t>(frame.type),
                             frame.payload));
  return out;
}

Result<Frame> DecodeFrame(std::string_view wire, size_t* consumed) {
  if (wire.size() < kFrameHeaderBytes) {
    return Status::ParseError("truncated frame: " +
                              std::to_string(wire.size()) +
                              " bytes is shorter than the " +
                              std::to_string(kFrameHeaderBytes) +
                              "-byte header");
  }
  const uint32_t magic = GetU32(wire.data());
  const uint8_t raw_type = static_cast<uint8_t>(wire[4]);
  const uint32_t payload_length = GetU32(wire.data() + 5);
  CORROB_RETURN_NOT_OK(CheckHeader(magic, raw_type, payload_length));
  const size_t total =
      kFrameHeaderBytes + payload_length + kFrameTrailerBytes;
  if (wire.size() < total) {
    return Status::ParseError(
        "truncated frame: header announces " + std::to_string(total) +
        " bytes, got " + std::to_string(wire.size()));
  }
  const std::string_view payload =
      wire.substr(kFrameHeaderBytes, payload_length);
  const uint32_t stored =
      GetU32(wire.data() + kFrameHeaderBytes + payload_length);
  const uint32_t computed = FrameChecksum(raw_type, payload);
  if (stored != computed) {
    return Status::ParseError("frame checksum mismatch: stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(computed));
  }
  if (consumed != nullptr) *consumed = total;
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(payload);
  return frame;
}

Result<std::optional<Frame>> ReadFrameOrEof(int fd,
                                            const StopSignal& stop) {
  CORROB_FAILPOINT("server.frame.read");
  char header[kFrameHeaderBytes];
  CORROB_ASSIGN_OR_RETURN(
      bool got_header, ReadExactOrEof(fd, header, sizeof(header), stop));
  if (!got_header) return std::optional<Frame>();
  const uint32_t magic = GetU32(header);
  const uint8_t raw_type = static_cast<uint8_t>(header[4]);
  const uint32_t payload_length = GetU32(header + 5);
  CORROB_RETURN_NOT_OK(CheckHeader(magic, raw_type, payload_length));
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.resize(payload_length);
  // Once the header has arrived the frame is in flight: a close on any
  // later read boundary is still a mid-frame death, so promote the
  // clean-close IoError to ConnectionLost (the mid-read case already
  // carries it from the socket layer).
  const auto read_rest = [&](void* buffer, size_t length) -> Status {
    CORROB_ASSIGN_OR_RETURN(bool complete,
                            ReadExactOrEof(fd, buffer, length, stop));
    if (!complete) {
      return Status::ConnectionLost(
          "connection closed mid-frame (header received, " +
          std::to_string(length) + "-byte continuation missing)");
    }
    return Status::OK();
  };
  if (payload_length > 0) {
    CORROB_RETURN_NOT_OK(read_rest(frame.payload.data(), payload_length));
  }
  char trailer[kFrameTrailerBytes];
  CORROB_RETURN_NOT_OK(read_rest(trailer, sizeof(trailer)));
  const uint32_t stored = GetU32(trailer);
  const uint32_t computed = FrameChecksum(raw_type, frame.payload);
  if (stored != computed) {
    return Status::ParseError("frame checksum mismatch: stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(computed));
  }
  return std::optional<Frame>(std::move(frame));
}

Result<Frame> ReadFrame(int fd, const StopSignal& stop) {
  CORROB_ASSIGN_OR_RETURN(std::optional<Frame> frame,
                          ReadFrameOrEof(fd, stop));
  if (!frame.has_value()) {
    return Status::IoError("connection closed while waiting for a frame");
  }
  return std::move(*frame);
}

Status WriteFrame(int fd, const Frame& frame, const StopSignal& stop) {
  CORROB_FAILPOINT("server.frame.write");
  const std::string wire = EncodeFrame(frame);
  return WriteAll(fd, wire.data(), wire.size(), stop);
}

}  // namespace server
}  // namespace corrob
