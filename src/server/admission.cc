#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace corrob {
namespace server {

namespace {

/// Slice of one condition wait. Short enough that a queued request
/// notices its deadline or cancellation promptly, long enough that an
/// idle queue costs nothing measurable.
constexpr int64_t kWaitSliceMs = 20;

/// Smoothing factor of the service-time EWMA: ~86% of the weight sits
/// in the last 10 observations, so the retry-after hint tracks load
/// shifts within a dozen requests.
constexpr double kEwmaAlpha = 0.2;

/// When no request has completed yet, assume a modest service time so
/// the very first shed still carries a usable hint.
constexpr double kDefaultServiceNanos = 50.0 * 1000 * 1000;  // 50ms

constexpr uint32_t kMinRetryAfterMs = 25;
constexpr uint32_t kMaxRetryAfterMs = 60 * 1000;

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const obs::Clock* clock)
    : options_(options), clock_(clock) {
  options_.max_concurrency = std::max(1, options_.max_concurrency);
  for (int& capacity : options_.queue_capacity) {
    capacity = std::max(0, capacity);
  }
}

uint32_t AdmissionController::RetryAfterMsLocked(Priority priority) const {
  // Work a new arrival of this class would wait behind: everything
  // running, plus every queued request of its class or better.
  int64_t ahead = running_;
  for (int cls = 0; cls <= static_cast<int>(priority); ++cls) {
    ahead += static_cast<int64_t>(queue_[cls].size());
  }
  const double service =
      ewma_service_nanos_ > 0.0 ? ewma_service_nanos_ : kDefaultServiceNanos;
  const double estimate_ms = static_cast<double>(ahead) * service /
                             options_.max_concurrency / 1e6;
  const double clamped =
      std::clamp(estimate_ms, static_cast<double>(kMinRetryAfterMs),
                 static_cast<double>(kMaxRetryAfterMs));
  return static_cast<uint32_t>(clamped);
}

// Justified: the bounded-slice cv wait needs std::unique_lock, which
// carries no capability annotations, so the analysis would flag every
// queue_/running_ access in the wait loop as unlocked. The discipline
// is pinned dynamically by the TSan job and the admission race tests.
AdmissionDecision AdmissionController::Admit(Priority priority,
                                             const StopSignal& stop)
    CORROB_NO_THREAD_SAFETY_ANALYSIS {
  const int cls = static_cast<int>(priority);
  const int64_t entered_nanos = clock_ != nullptr ? clock_->NowNanos() : 0;
  std::unique_lock<std::mutex> lock(mutex_);

  AdmissionDecision decision;

  // Fast path: a slot is free and nobody this class must yield to is
  // waiting — take the slot without ever occupying a queue position.
  // This is what lets queue_capacity = 0 mean "run or shed, never
  // wait" instead of "shed everything".
  const auto immediately_eligible = [&] {
    if (running_ >= options_.max_concurrency) return false;
    for (int other = 0; other <= cls; ++other) {
      if (!queue_[other].empty()) return false;
    }
    return true;
  };
  if (immediately_eligible()) {
    ++running_;
    decision.outcome = AdmissionDecision::Outcome::kAdmitted;
    if (clock_ != nullptr) {
      decision.queue_wait_nanos = clock_->NowNanos() - entered_nanos;
    }
    return decision;
  }

  if (static_cast<int>(queue_[cls].size()) >= options_.queue_capacity[cls]) {
    decision.outcome = AdmissionDecision::Outcome::kShed;
    decision.retry_after_ms = RetryAfterMsLocked(priority);
    decision.queue_depth = static_cast<uint32_t>(queue_[cls].size());
    return decision;
  }

  const uint64_t ticket = next_ticket_++;
  queue_[cls].push_back(ticket);

  // Eligible when a slot is free, this ticket heads its class queue,
  // and no better class has anyone waiting.
  const auto eligible = [&] {
    if (running_ >= options_.max_concurrency) return false;
    if (queue_[cls].front() != ticket) return false;
    for (int better = 0; better < cls; ++better) {
      if (!queue_[better].empty()) return false;
    }
    return true;
  };

  while (!eligible()) {
    if (stop.ShouldStop()) {
      auto& queue = queue_[cls];
      queue.erase(std::find(queue.begin(), queue.end(), ticket));
      decision.outcome = AdmissionDecision::Outcome::kCancelled;
      decision.queue_depth = static_cast<uint32_t>(queue.size());
      if (clock_ != nullptr) {
        decision.queue_wait_nanos = clock_->NowNanos() - entered_nanos;
      }
      // Our departure may unblock the ticket behind us.
      lock.unlock();
      slot_freed_.notify_all();
      return decision;
    }
    // lint: cvwait-ok: bounded poll slice; the loop re-checks eligible() and stop.ShouldStop(), which no cv predicate can observe (StopSignal has no wakeup channel)
    slot_freed_.wait_for(lock, std::chrono::milliseconds(kWaitSliceMs));
  }

  queue_[cls].pop_front();
  ++running_;
  decision.outcome = AdmissionDecision::Outcome::kAdmitted;
  decision.queue_depth = static_cast<uint32_t>(queue_[cls].size());
  if (clock_ != nullptr) {
    decision.queue_wait_nanos = clock_->NowNanos() - entered_nanos;
  }
  // The freed queue position may make the next ticket of this class
  // eligible once another slot opens; no immediate wake needed (only
  // Release frees slots), but waking is harmless and keeps the
  // eligibility re-check conservative.
  lock.unlock();
  slot_freed_.notify_all();
  return decision;
}

void AdmissionController::Release(Priority priority, int64_t service_nanos) {
  (void)priority;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    if (service_nanos > 0) {
      const double observed = static_cast<double>(service_nanos);
      ewma_service_nanos_ =
          ewma_service_nanos_ <= 0.0
              ? observed
              : kEwmaAlpha * observed +
                    (1.0 - kEwmaAlpha) * ewma_service_nanos_;
    }
  }
  slot_freed_.notify_all();
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int AdmissionController::queued(Priority priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_[static_cast<int>(priority)].size());
}

}  // namespace server
}  // namespace corrob
