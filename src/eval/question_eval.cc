#include "eval/question_eval.h"

#include "eval/metrics.h"

namespace corrob {

Result<QuestionEvalReport> EvaluateQuestions(
    const CorroborationResult& result, const QuestionDataset& questions) {
  const int32_t facts = questions.dataset().num_facts();
  if (static_cast<int32_t>(result.fact_probability.size()) != facts) {
    return Status::InvalidArgument(
        "result covers " + std::to_string(result.fact_probability.size()) +
        " facts; dataset has " + std::to_string(facts));
  }

  QuestionEvalReport report;
  report.questions_total = questions.num_questions();
  report.winners.resize(static_cast<size_t>(questions.num_questions()), -1);

  int64_t correct_answers = 0;
  for (FactId f = 0; f < facts; ++f) {
    bool predicted = result.Decide(f);
    bool actual = questions.truth().IsTrue(f);
    if (predicted == actual) {
      ++correct_answers;
    } else if (predicted) {
      ++report.false_positives;
    } else {
      ++report.false_negatives;
    }
  }
  report.answer_errors = report.false_positives + report.false_negatives;
  report.answer_accuracy =
      facts > 0 ? static_cast<double>(correct_answers) / facts : 0.0;

  for (QuestionId q = 0; q < questions.num_questions(); ++q) {
    FactId best = -1;
    double best_p = -1.0;
    for (FactId f : questions.answers(q)) {
      double p = result.fact_probability[static_cast<size_t>(f)];
      if (p > best_p) {
        best_p = p;
        best = f;
      }
    }
    report.winners[static_cast<size_t>(q)] = best;
    if (best >= 0 && questions.truth().IsTrue(best)) {
      ++report.questions_correct;
    }
  }
  report.question_accuracy =
      report.questions_total > 0
          ? static_cast<double>(report.questions_correct) /
                static_cast<double>(report.questions_total)
          : 0.0;
  return report;
}

}  // namespace corrob
