#ifndef CORROB_EVAL_CALIBRATION_H_
#define CORROB_EVAL_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/corroborator.h"
#include "data/truth.h"

namespace corrob {

/// One reliability-diagram bin.
struct CalibrationBin {
  double lower = 0.0;           ///< bin interval [lower, upper)
  double upper = 0.0;
  int64_t count = 0;            ///< facts whose σ(f) falls in the bin
  double mean_predicted = 0.0;  ///< mean σ(f) within the bin
  double fraction_true = 0.0;   ///< empirical truth rate within the bin
};

/// How well σ(f) behaves as a probability (paper §3.2 treats it as
/// one; most corroborators emit it as a score).
struct CalibrationReport {
  std::vector<CalibrationBin> bins;
  /// Expected calibration error: count-weighted mean of
  /// |mean_predicted - fraction_true| over non-empty bins.
  double expected_calibration_error = 0.0;
  /// Brier score: mean squared error of σ(f) against the 0/1 truth.
  double brier_score = 0.0;
  int64_t total = 0;
};

/// Bins `probability` against `truth` labels into `num_bins` equal
/// intervals of [0, 1] (the last bin is closed). Sizes must match and
/// num_bins must be >= 1.
[[nodiscard]] Result<CalibrationReport> ComputeCalibration(
    const std::vector<double>& probability, const std::vector<bool>& truth,
    int num_bins = 10);

/// Calibration of a corroboration result against a golden subset.
[[nodiscard]] Result<CalibrationReport> CalibrationOnGolden(
    const CorroborationResult& result, const GoldenSet& golden,
    int num_bins = 10);

}  // namespace corrob

#endif  // CORROB_EVAL_CALIBRATION_H_
