#include "eval/runner.h"

#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "core/registry.h"
#include "ml/logistic_regression.h"
#include "ml/svm.h"

namespace corrob {

namespace {

std::vector<bool> GoldenCorrectness(const std::vector<bool>& predicted,
                                    const GoldenSet& golden) {
  std::vector<bool> correct(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    correct[i] = predicted[i] == golden.label(i);
  }
  return correct;
}

}  // namespace

Result<MethodReport> RunCorroborationMethod(const std::string& name,
                                            const Dataset& dataset,
                                            const GoldenSet& golden,
                                            const CorroboratorOptions& shared,
                                            const RunContext& context) {
  CORROB_ASSIGN_OR_RETURN(std::unique_ptr<Corroborator> algorithm,
                          MakeCorroborator(name, shared));
  StopwatchNs watch;
  CORROB_ASSIGN_OR_RETURN(CorroborationResult result,
                          algorithm->Run(dataset, context));
  double seconds = watch.ElapsedSeconds();

  MethodReport report;
  report.name = name;
  report.metrics = EvaluateOnGolden(result, golden);
  report.source_trust = result.source_trust;
  report.seconds = seconds;
  std::vector<bool> predicted(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    predicted[i] = result.Decide(golden.fact(i));
  }
  report.golden_correct = GoldenCorrectness(predicted, golden);
  return report;
}

Result<MethodReport> RunMlMethod(const std::string& name,
                                 const Dataset& dataset,
                                 const GoldenSet& golden,
                                 const CrossValidationOptions& options) {
  std::function<std::unique_ptr<BinaryClassifier>()> factory;
  if (name == "ML-Logistic") {
    factory = []() -> std::unique_ptr<BinaryClassifier> {
      return std::make_unique<LogisticRegression>();
    };
  } else if (name == "ML-SVM") {
    factory = []() -> std::unique_ptr<BinaryClassifier> {
      return std::make_unique<LinearSvm>();
    };
  } else {
    return Status::NotFound("unknown ML method: '" + name + "'");
  }

  StopwatchNs watch;
  MlDataset data =
      ExtractGoldenFeatures(dataset, golden, VoteEncoding::kSigned);
  CORROB_ASSIGN_OR_RETURN(std::vector<bool> predictions,
                          CrossValidatePredictions(data, factory, options));
  double seconds = watch.ElapsedSeconds();

  MethodReport report;
  report.name = name;
  report.metrics = EvaluatePredictionsOnGolden(predictions, golden);
  report.source_trust = MlSourceTrust(dataset, golden, predictions);
  report.seconds = seconds;
  report.golden_correct = GoldenCorrectness(predictions, golden);
  return report;
}

std::vector<double> MlSourceTrust(const Dataset& dataset,
                                  const GoldenSet& golden,
                                  const std::vector<bool>& predictions) {
  CORROB_CHECK(predictions.size() == golden.size());
  std::vector<double> correct(static_cast<size_t>(dataset.num_sources()), 0.0);
  std::vector<double> total(static_cast<size_t>(dataset.num_sources()), 0.0);
  for (size_t i = 0; i < golden.size(); ++i) {
    for (const SourceVote& sv : dataset.VotesOnFact(golden.fact(i))) {
      bool voted_true = sv.vote == Vote::kTrue;
      total[static_cast<size_t>(sv.source)] += 1.0;
      if (voted_true == predictions[i]) {
        correct[static_cast<size_t>(sv.source)] += 1.0;
      }
    }
  }
  std::vector<double> trust(static_cast<size_t>(dataset.num_sources()), 0.0);
  for (size_t s = 0; s < trust.size(); ++s) {
    if (total[s] > 0.0) trust[s] = correct[s] / total[s];
  }
  return trust;
}

}  // namespace corrob
