#include "eval/calibration.h"

#include <algorithm>
#include <cmath>

namespace corrob {

Result<CalibrationReport> ComputeCalibration(
    const std::vector<double>& probability, const std::vector<bool>& truth,
    int num_bins) {
  if (probability.size() != truth.size()) {
    return Status::InvalidArgument("probability/truth size mismatch");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("num_bins must be >= 1");
  }

  CalibrationReport report;
  report.total = static_cast<int64_t>(probability.size());
  report.bins.resize(static_cast<size_t>(num_bins));
  for (int b = 0; b < num_bins; ++b) {
    report.bins[static_cast<size_t>(b)].lower =
        static_cast<double>(b) / num_bins;
    report.bins[static_cast<size_t>(b)].upper =
        static_cast<double>(b + 1) / num_bins;
  }

  std::vector<double> sum_predicted(static_cast<size_t>(num_bins), 0.0);
  std::vector<int64_t> sum_true(static_cast<size_t>(num_bins), 0);
  double brier = 0.0;
  for (size_t i = 0; i < probability.size(); ++i) {
    double p = probability[i];
    if (!(p >= 0.0 && p <= 1.0)) {
      return Status::InvalidArgument("probability out of [0,1] at index " +
                                     std::to_string(i));
    }
    int bin = std::min(num_bins - 1,
                       static_cast<int>(p * static_cast<double>(num_bins)));
    CalibrationBin& cell = report.bins[static_cast<size_t>(bin)];
    ++cell.count;
    sum_predicted[static_cast<size_t>(bin)] += p;
    sum_true[static_cast<size_t>(bin)] += truth[i] ? 1 : 0;
    double target = truth[i] ? 1.0 : 0.0;
    brier += (p - target) * (p - target);
  }
  if (report.total > 0) {
    report.brier_score = brier / static_cast<double>(report.total);
  }

  double weighted_error = 0.0;
  for (int b = 0; b < num_bins; ++b) {
    CalibrationBin& cell = report.bins[static_cast<size_t>(b)];
    if (cell.count == 0) continue;
    cell.mean_predicted =
        sum_predicted[static_cast<size_t>(b)] / static_cast<double>(cell.count);
    cell.fraction_true = static_cast<double>(sum_true[static_cast<size_t>(b)]) /
                         static_cast<double>(cell.count);
    weighted_error += static_cast<double>(cell.count) *
                      std::fabs(cell.mean_predicted - cell.fraction_true);
  }
  if (report.total > 0) {
    report.expected_calibration_error =
        weighted_error / static_cast<double>(report.total);
  }
  return report;
}

Result<CalibrationReport> CalibrationOnGolden(
    const CorroborationResult& result, const GoldenSet& golden,
    int num_bins) {
  std::vector<double> probability(golden.size());
  std::vector<bool> truth(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    probability[i] =
        result.fact_probability[static_cast<size_t>(golden.fact(i))];
    truth[i] = golden.label(i);
  }
  return ComputeCalibration(probability, truth, num_bins);
}

}  // namespace corrob
