#ifndef CORROB_EVAL_BOOTSTRAP_H_
#define CORROB_EVAL_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace corrob {

/// A two-sided percentile bootstrap confidence interval.
struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.95;
};

/// Percentile-bootstrap CI for an accuracy (the mean of per-item
/// correctness indicators). Deterministic for a fixed seed. Requires
/// non-empty input, resamples >= 100 and confidence in (0, 1).
[[nodiscard]] Result<BootstrapInterval> BootstrapAccuracy(
    const std::vector<bool>& correct, double confidence = 0.95,
    int resamples = 2000, uint64_t seed = 1234);

/// Percentile-bootstrap CI for the accuracy *difference* of two
/// paired methods (mean of correct_a[i] - correct_b[i], resampling
/// items jointly). The interval excluding 0 indicates a significant
/// gap at the chosen confidence.
[[nodiscard]] Result<BootstrapInterval> BootstrapPairedDifference(
    const std::vector<bool>& correct_a, const std::vector<bool>& correct_b,
    double confidence = 0.95, int resamples = 2000, uint64_t seed = 1234);

}  // namespace corrob

#endif  // CORROB_EVAL_BOOTSTRAP_H_
