#ifndef CORROB_EVAL_SIGNIFICANCE_H_
#define CORROB_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace corrob {

/// McNemar's test on paired classifier decisions: given per-item
/// correctness of two methods on the same golden items, tests the
/// null hypothesis that both have the same error rate. Returns the
/// two-sided p-value using the exact binomial distribution on the
/// discordant pairs (suitable for the paper's "p-value < 0.001"
/// claims at golden-set scale).
[[nodiscard]] Result<double> McNemarPValue(const std::vector<bool>& correct_a,
                             const std::vector<bool>& correct_b);

/// Paired randomization (permutation) test on accuracy: swaps the two
/// methods' outcomes per item with probability 1/2 and measures how
/// often the absolute accuracy difference is at least the observed
/// one. Returns the two-sided p-value estimate.
[[nodiscard]] Result<double> PairedPermutationPValue(const std::vector<bool>& correct_a,
                                       const std::vector<bool>& correct_b,
                                       int iterations = 10000,
                                       uint64_t seed = 99);

}  // namespace corrob

#endif  // CORROB_EVAL_SIGNIFICANCE_H_
