#include "eval/metrics.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace corrob {

ConfusionCounts CountConfusion(const std::vector<bool>& predicted,
                               const std::vector<bool>& actual) {
  CORROB_CHECK(predicted.size() == actual.size())
      << "prediction/label size mismatch";
  ConfusionCounts counts;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && actual[i]) {
      ++counts.true_positives;
    } else if (predicted[i] && !actual[i]) {
      ++counts.false_positives;
    } else if (!predicted[i] && actual[i]) {
      ++counts.false_negatives;
    } else {
      ++counts.true_negatives;
    }
  }
  return counts;
}

BinaryMetrics MetricsFromConfusion(const ConfusionCounts& confusion) {
  BinaryMetrics m;
  m.confusion = confusion;
  int64_t predicted_positive =
      confusion.true_positives + confusion.false_positives;
  int64_t actual_positive =
      confusion.true_positives + confusion.false_negatives;
  m.precision = predicted_positive > 0
                    ? static_cast<double>(confusion.true_positives) /
                          static_cast<double>(predicted_positive)
                    : 0.0;
  m.recall = actual_positive > 0
                 ? static_cast<double>(confusion.true_positives) /
                       static_cast<double>(actual_positive)
                 : 0.0;
  m.accuracy = confusion.total() > 0
                   ? static_cast<double>(confusion.true_positives +
                                         confusion.true_negatives) /
                         static_cast<double>(confusion.total())
                   : 0.0;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

BinaryMetrics EvaluateOnGolden(const CorroborationResult& result,
                               const GoldenSet& golden) {
  std::vector<bool> predicted(golden.size());
  std::vector<bool> actual(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    predicted[i] = result.Decide(golden.fact(i));
    actual[i] = golden.label(i);
  }
  return MetricsFromConfusion(CountConfusion(predicted, actual));
}

BinaryMetrics EvaluatePredictionsOnGolden(const std::vector<bool>& predicted,
                                          const GoldenSet& golden) {
  CORROB_CHECK(predicted.size() == golden.size())
      << "prediction count must match golden size";
  std::vector<bool> actual(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) actual[i] = golden.label(i);
  return MetricsFromConfusion(CountConfusion(predicted, actual));
}

BinaryMetrics EvaluateOnTruth(const CorroborationResult& result,
                              const GroundTruth& truth) {
  std::vector<bool> predicted(static_cast<size_t>(truth.num_facts()));
  for (FactId f = 0; f < truth.num_facts(); ++f) {
    predicted[static_cast<size_t>(f)] = result.Decide(f);
  }
  return MetricsFromConfusion(CountConfusion(predicted, truth.labels()));
}

double TrustMse(const std::vector<double>& reference,
                const std::vector<double>& computed) {
  return MeanSquaredError(reference, computed);
}

}  // namespace corrob
