#ifndef CORROB_EVAL_REPORT_IO_H_
#define CORROB_EVAL_REPORT_IO_H_

#include <string>

#include "common/status.h"
#include "core/corroborator.h"
#include "data/dataset.h"

namespace corrob {

/// Serializes a trust trajectory (Figure 2's data) as CSV with one
/// row per time point:
///   t,facts_committed,<source1>,...,<sourceN>
/// Fails if the result has no recorded trajectory.
[[nodiscard]] Status SaveTrajectoryCsv(const std::string& path, const Dataset& dataset,
                         const CorroborationResult& result);

/// Same, to a string (used by tests and the Figure 2 bench).
[[nodiscard]] Result<std::string> TrajectoryToCsv(const Dataset& dataset,
                                    const CorroborationResult& result);

/// Serializes per-fact probabilities and decisions:
///   fact,probability,decision
std::string DecisionsToCsv(const Dataset& dataset,
                           const CorroborationResult& result);

}  // namespace corrob

#endif  // CORROB_EVAL_REPORT_IO_H_
