#include "eval/report_io.h"

#include "common/csv.h"
#include "common/retry.h"
#include "common/string_util.h"

namespace corrob {

Result<std::string> TrajectoryToCsv(const Dataset& dataset,
                                    const CorroborationResult& result) {
  if (result.trajectory.empty()) {
    return Status::FailedPrecondition(
        "result has no trajectory; run with record_trajectory = true");
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"t", "facts_committed"};
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    header.push_back(dataset.source_name(s));
  }
  rows.push_back(std::move(header));
  for (size_t point = 0; point < result.trajectory.size(); ++point) {
    std::vector<std::string> row{
        std::to_string(point),
        std::to_string(result.trajectory[point].facts_committed)};
    for (double trust : result.trajectory[point].trust) {
      row.push_back(FormatDouble(trust, 6));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

Status SaveTrajectoryCsv(const std::string& path, const Dataset& dataset,
                         const CorroborationResult& result) {
  CORROB_ASSIGN_OR_RETURN(std::string csv, TrajectoryToCsv(dataset, result));
  return Retry(DefaultIoRetryPolicy(),
               [&] { return WriteFileAtomic(path, csv); });
}

std::string DecisionsToCsv(const Dataset& dataset,
                           const CorroborationResult& result) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"fact", "probability", "decision"});
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    rows.push_back(
        {dataset.fact_name(f),
         FormatDouble(result.fact_probability[static_cast<size_t>(f)], 6),
         result.Decide(f) ? "true" : "false"});
  }
  return WriteCsv(rows);
}

}  // namespace corrob
