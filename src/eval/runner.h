#ifndef CORROB_EVAL_RUNNER_H_
#define CORROB_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/corroborator.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "data/truth.h"
#include "eval/metrics.h"
#include "ml/cross_validation.h"

namespace corrob {

/// Everything the Table 4/5/6 experiments report about one method.
struct MethodReport {
  std::string name;
  BinaryMetrics metrics;
  /// Per-source trust readout (empty for ML methods evaluated purely
  /// out-of-fold — see MlSourceTrust()).
  std::vector<double> source_trust;
  /// Wall-clock seconds of the corroboration/training run.
  double seconds = 0.0;
  /// Per-golden-entry correctness, for paired significance tests.
  std::vector<bool> golden_correct;
};

/// Runs a registered corroborator on `dataset` and scores it on
/// `golden`; wall time covers only Corroborator::Run. `shared`
/// carries cross-cutting knobs (thread count) into the construction;
/// `context` bounds the run (deadline, cancellation, budgets — see
/// core/run_context.h) and defaults to unbounded. An interrupted run
/// is still scored: the method's graceful-degradation answer is what
/// a deadline-bound deployment would have served.
[[nodiscard]] Result<MethodReport> RunCorroborationMethod(
    const std::string& name, const Dataset& dataset, const GoldenSet& golden,
    const CorroboratorOptions& shared = {},
    const RunContext& context = RunContext::Unbounded());

/// Cross-validates an ML baseline ("ML-Logistic" or "ML-SVM") on the
/// golden set with the paper's 10-fold protocol and scores the
/// out-of-fold predictions. Wall time covers feature extraction,
/// training and prediction (the paper's ML timings likewise run over
/// the golden set only).
[[nodiscard]] Result<MethodReport> RunMlMethod(const std::string& name,
                                 const Dataset& dataset,
                                 const GoldenSet& golden,
                                 const CrossValidationOptions& options = {});

/// Source trust induced by a set of fact decisions on golden facts:
/// each source's vote accuracy against the predictions — the Table 5
/// readout for ML-Logistic.
std::vector<double> MlSourceTrust(const Dataset& dataset,
                                  const GoldenSet& golden,
                                  const std::vector<bool>& predictions);

}  // namespace corrob

#endif  // CORROB_EVAL_RUNNER_H_
