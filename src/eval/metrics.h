#ifndef CORROB_EVAL_METRICS_H_
#define CORROB_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/corroborator.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// Binary confusion counts with "fact is true" as the positive class.
struct ConfusionCounts {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t true_negatives = 0;
  int64_t false_negatives = 0;

  int64_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }
  /// FP + FN — the Hubdub "number of errors" metric (Table 7).
  int64_t errors() const { return false_positives + false_negatives; }
};

/// The quality metrics the paper reports (§6.1.2, Table 4).
struct BinaryMetrics {
  ConfusionCounts confusion;
  double precision = 0.0;
  double recall = 0.0;
  double accuracy = 0.0;
  double f1 = 0.0;
};

/// Counts the confusion matrix of `predicted` against `actual`.
/// The vectors must be equally sized.
ConfusionCounts CountConfusion(const std::vector<bool>& predicted,
                               const std::vector<bool>& actual);

/// Derives precision/recall/accuracy/F1 from confusion counts.
/// Degenerate denominators yield 0 (e.g. precision with no positive
/// predictions).
BinaryMetrics MetricsFromConfusion(const ConfusionCounts& confusion);

/// Evaluates corroboration decisions on a golden set.
BinaryMetrics EvaluateOnGolden(const CorroborationResult& result,
                               const GoldenSet& golden);

/// Evaluates per-row predictions aligned with the golden entries
/// (used for the cross-validated ML baselines).
BinaryMetrics EvaluatePredictionsOnGolden(const std::vector<bool>& predicted,
                                          const GoldenSet& golden);

/// Evaluates decisions against full ground truth.
BinaryMetrics EvaluateOnTruth(const CorroborationResult& result,
                              const GroundTruth& truth);

/// Mean squared error between computed source trust and reference
/// source accuracies (paper Eq. 10, Table 5).
double TrustMse(const std::vector<double>& reference,
                const std::vector<double>& computed);

}  // namespace corrob

#endif  // CORROB_EVAL_METRICS_H_
