#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace corrob {

namespace {

Status ValidateParameters(size_t n, double confidence, int resamples) {
  if (n == 0) return Status::InvalidArgument("cannot bootstrap an empty sample");
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  if (resamples < 100) {
    return Status::InvalidArgument("resamples must be >= 100");
  }
  return Status::OK();
}

BootstrapInterval PercentileInterval(std::vector<double> statistics,
                                     double point, double confidence) {
  std::sort(statistics.begin(), statistics.end());
  double alpha = (1.0 - confidence) / 2.0;
  size_t n = statistics.size();
  auto index = [&](double q) {
    double position = q * static_cast<double>(n - 1);
    return statistics[static_cast<size_t>(std::llround(position))];
  };
  BootstrapInterval interval;
  interval.point = point;
  interval.lower = index(alpha);
  interval.upper = index(1.0 - alpha);
  interval.confidence = confidence;
  return interval;
}

}  // namespace

Result<BootstrapInterval> BootstrapAccuracy(const std::vector<bool>& correct,
                                            double confidence, int resamples,
                                            uint64_t seed) {
  CORROB_RETURN_NOT_OK(ValidateParameters(correct.size(), confidence,
                                          resamples));
  const size_t n = correct.size();
  double point = 0.0;
  for (bool b : correct) point += b ? 1.0 : 0.0;
  point /= static_cast<double>(n);

  Rng rng(seed);
  std::vector<double> statistics(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    int64_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      hits += correct[rng.NextBelow(n)] ? 1 : 0;
    }
    statistics[static_cast<size_t>(r)] =
        static_cast<double>(hits) / static_cast<double>(n);
  }
  return PercentileInterval(std::move(statistics), point, confidence);
}

Result<BootstrapInterval> BootstrapPairedDifference(
    const std::vector<bool>& correct_a, const std::vector<bool>& correct_b,
    double confidence, int resamples, uint64_t seed) {
  if (correct_a.size() != correct_b.size()) {
    return Status::InvalidArgument("paired samples must have equal size");
  }
  CORROB_RETURN_NOT_OK(ValidateParameters(correct_a.size(), confidence,
                                          resamples));
  const size_t n = correct_a.size();
  double point = 0.0;
  for (size_t i = 0; i < n; ++i) {
    point += static_cast<double>(correct_a[i]) -
             static_cast<double>(correct_b[i]);
  }
  point /= static_cast<double>(n);

  Rng rng(seed);
  std::vector<double> statistics(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    int64_t diff = 0;
    for (size_t i = 0; i < n; ++i) {
      size_t pick = rng.NextBelow(n);
      diff += static_cast<int>(correct_a[pick]) -
              static_cast<int>(correct_b[pick]);
    }
    statistics[static_cast<size_t>(r)] =
        static_cast<double>(diff) / static_cast<double>(n);
  }
  return PercentileInterval(std::move(statistics), point, confidence);
}

}  // namespace corrob
