#ifndef CORROB_EVAL_QUESTION_EVAL_H_
#define CORROB_EVAL_QUESTION_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/corroborator.h"
#include "data/question_dataset.h"

namespace corrob {

/// Quality of a corroboration result on a multi-answer question
/// dataset (the Hubdub setting of Table 7).
struct QuestionEvalReport {
  /// FP + FN over candidate answers — the paper's Table 7 metric.
  int64_t answer_errors = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  /// Answer-level accuracy.
  double answer_accuracy = 0.0;
  /// Questions whose top-σ answer is the correct one.
  int64_t questions_correct = 0;
  int64_t questions_total = 0;
  /// questions_correct / questions_total.
  double question_accuracy = 0.0;
  /// Per-question winner (fact id of the highest-σ answer; ties break
  /// toward the lower fact id).
  std::vector<FactId> winners;
};

/// Scores `result` (typically produced on the dataset returned by
/// QuestionDataset::WithNegativeClosure) against the question
/// structure and truth. Fails if the result's size does not match
/// the dataset.
[[nodiscard]] Result<QuestionEvalReport> EvaluateQuestions(
    const CorroborationResult& result, const QuestionDataset& questions);

}  // namespace corrob

#endif  // CORROB_EVAL_QUESTION_EVAL_H_
