#include "eval/significance.h"

#include <cmath>
#include <cstdlib>

#include "common/random.h"

namespace corrob {

namespace {

/// log of the binomial coefficient via lgamma.
double LogChoose(int64_t n, int64_t k) {
  return std::lgamma(static_cast<double>(n + 1)) -
         std::lgamma(static_cast<double>(k + 1)) -
         std::lgamma(static_cast<double>(n - k + 1));
}

}  // namespace

Result<double> McNemarPValue(const std::vector<bool>& correct_a,
                             const std::vector<bool>& correct_b) {
  if (correct_a.size() != correct_b.size()) {
    return Status::InvalidArgument("paired vectors must have equal size");
  }
  if (correct_a.empty()) {
    return Status::InvalidArgument("cannot test empty samples");
  }
  int64_t a_only = 0;  // a correct, b wrong
  int64_t b_only = 0;  // b correct, a wrong
  for (size_t i = 0; i < correct_a.size(); ++i) {
    if (correct_a[i] && !correct_b[i]) ++a_only;
    if (!correct_a[i] && correct_b[i]) ++b_only;
  }
  int64_t discordant = a_only + b_only;
  if (discordant == 0) return 1.0;

  // Exact binomial: P(X <= min | n, 1/2), doubled for two sides.
  int64_t k = std::min(a_only, b_only);
  double log_half_n = static_cast<double>(discordant) * std::log(0.5);
  double tail = 0.0;
  for (int64_t i = 0; i <= k; ++i) {
    tail += std::exp(LogChoose(discordant, i) + log_half_n);
  }
  double p = 2.0 * tail;
  // The central term is counted on both sides when a_only == b_only.
  if (a_only == b_only) {
    p -= std::exp(LogChoose(discordant, k) + log_half_n);
  }
  return std::min(1.0, p);
}

Result<double> PairedPermutationPValue(const std::vector<bool>& correct_a,
                                       const std::vector<bool>& correct_b,
                                       int iterations, uint64_t seed) {
  if (correct_a.size() != correct_b.size()) {
    return Status::InvalidArgument("paired vectors must have equal size");
  }
  if (correct_a.empty()) {
    return Status::InvalidArgument("cannot test empty samples");
  }
  if (iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }

  const size_t n = correct_a.size();
  int64_t observed_diff = 0;
  for (size_t i = 0; i < n; ++i) {
    observed_diff += static_cast<int>(correct_a[i]) -
                     static_cast<int>(correct_b[i]);
  }
  int64_t observed_abs = std::llabs(observed_diff);

  Rng rng(seed);
  int64_t at_least_as_extreme = 0;
  for (int it = 0; it < iterations; ++it) {
    int64_t diff = 0;
    for (size_t i = 0; i < n; ++i) {
      int d = static_cast<int>(correct_a[i]) - static_cast<int>(correct_b[i]);
      if (d == 0) continue;
      diff += rng.Bernoulli(0.5) ? d : -d;
    }
    if (std::llabs(diff) >= observed_abs) ++at_least_as_extreme;
  }
  // Add-one smoothing keeps the estimate strictly positive.
  return (static_cast<double>(at_least_as_extreme) + 1.0) /
         (static_cast<double>(iterations) + 1.0);
}

}  // namespace corrob
