#include "synth/hubdub_sim.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"

namespace corrob {

namespace {

/// Crude Beta(a, b) sampler via the ratio of Gamma draws, themselves
/// approximated with the Marsaglia-Tsang method for a >= 1 (our
/// priors are comfortably above 1).
double SampleGamma(double shape, Rng* rng) {
  CORROB_CHECK(shape >= 1.0) << "SampleGamma requires shape >= 1";
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng->Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng->NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

double SampleBeta(double a, double b, Rng* rng) {
  double x = SampleGamma(a, rng);
  double y = SampleGamma(b, rng);
  return x / (x + y);
}

}  // namespace

Result<QuestionDataset> GenerateHubdub(const HubdubSimOptions& options) {
  if (options.num_questions < 1) {
    return Status::InvalidArgument("num_questions must be >= 1");
  }
  if (options.num_answers < 2 * options.num_questions) {
    return Status::InvalidArgument(
        "need at least two candidate answers per question");
  }
  if (options.num_users < 1) {
    return Status::InvalidArgument("num_users must be >= 1");
  }
  if (options.accuracy_alpha < 1.0 || options.accuracy_beta < 1.0) {
    return Status::InvalidArgument("accuracy Beta parameters must be >= 1");
  }

  Rng rng(options.seed);
  QuestionDatasetBuilder builder;

  // Distribute answers: two per question, extras spread at random.
  std::vector<int32_t> answers_per_question(
      static_cast<size_t>(options.num_questions), 2);
  int32_t extras = options.num_answers - 2 * options.num_questions;
  for (int32_t i = 0; i < extras; ++i) {
    ++answers_per_question[static_cast<size_t>(
        rng.NextBelow(static_cast<uint64_t>(options.num_questions)))];
  }

  std::vector<std::vector<FactId>> question_answers(
      static_cast<size_t>(options.num_questions));
  std::vector<FactId> correct_answer(
      static_cast<size_t>(options.num_questions));
  for (int32_t q = 0; q < options.num_questions; ++q) {
    QuestionId qid = builder.AddQuestion("q" + std::to_string(q));
    int32_t count = answers_per_question[static_cast<size_t>(q)];
    int32_t correct_index = static_cast<int32_t>(
        rng.NextBelow(static_cast<uint64_t>(count)));
    for (int32_t a = 0; a < count; ++a) {
      FactId f = builder.AddAnswer(
          qid, "q" + std::to_string(q) + "_a" + std::to_string(a),
          a == correct_index);
      question_answers[static_cast<size_t>(q)].push_back(f);
      if (a == correct_index) correct_answer[static_cast<size_t>(q)] = f;
    }
  }

  // User profiles: latent accuracy and Zipf-ish participation weight.
  std::vector<double> accuracy(static_cast<size_t>(options.num_users));
  std::vector<double> weight(static_cast<size_t>(options.num_users));
  double weight_sum = 0.0;
  for (int32_t u = 0; u < options.num_users; ++u) {
    accuracy[static_cast<size_t>(u)] =
        SampleBeta(options.accuracy_alpha, options.accuracy_beta, &rng);
    weight[static_cast<size_t>(u)] =
        1.0 / std::pow(static_cast<double>(u + 1), options.participation_skew);
    weight_sum += weight[static_cast<size_t>(u)];
    builder.AddSource("user" + std::to_string(u));
  }

  // Votes: for each question draw ~mean_votes_per_question distinct
  // users (weighted without replacement, clamped to the user count).
  int64_t total_votes = 0;
  for (int32_t q = 0; q < options.num_questions; ++q) {
    int32_t votes = static_cast<int32_t>(std::max<int64_t>(
        1, std::llround(options.mean_votes_per_question *
                        (0.5 + rng.NextDouble()))));
    votes = std::min<int32_t>(votes, options.num_users);
    std::vector<bool> used(static_cast<size_t>(options.num_users), false);
    for (int32_t v = 0; v < votes; ++v) {
      // Weighted draw with rejection on reuse.
      int32_t user = -1;
      for (int attempt = 0; attempt < 64; ++attempt) {
        double target = rng.NextDouble() * weight_sum;
        double acc = 0.0;
        int32_t candidate = options.num_users - 1;
        for (int32_t u = 0; u < options.num_users; ++u) {
          acc += weight[static_cast<size_t>(u)];
          if (acc >= target) {
            candidate = u;
            break;
          }
        }
        if (!used[static_cast<size_t>(candidate)]) {
          user = candidate;
          break;
        }
      }
      if (user < 0) continue;  // Heavy contention: skip this vote.
      used[static_cast<size_t>(user)] = true;

      const auto& answers = question_answers[static_cast<size_t>(q)];
      FactId pick;
      if (rng.Bernoulli(accuracy[static_cast<size_t>(user)])) {
        pick = correct_answer[static_cast<size_t>(q)];
      } else {
        // A uniformly random wrong answer.
        for (;;) {
          pick = answers[static_cast<size_t>(rng.NextBelow(answers.size()))];
          if (pick != correct_answer[static_cast<size_t>(q)]) break;
        }
      }
      CORROB_RETURN_NOT_OK(builder.SetVote(user, pick, Vote::kTrue));
      ++total_votes;
    }
  }
  CORROB_CHECK(total_votes > 0);

  return builder.Build();
}

}  // namespace corrob
