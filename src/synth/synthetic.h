#ifndef CORROB_SYNTH_SYNTHETIC_H_
#define CORROB_SYNTH_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// Generated profile of one synthetic source (paper §6.3.1).
struct SyntheticSourceProfile {
  /// σ(s): U[0.7, 1.0] for accurate sources, U[0.5, 0.7] for
  /// inaccurate ones (every synthetic source is a positive source).
  double trust = 0.0;
  /// c(s) = 1 - σ(s) + 0.2·U[0,1]: inaccurate sources cover more.
  double coverage = 0.0;
  /// m(s): probability that an accurate source casts an F vote for a
  /// false fact it detects; U[0, 0.5]. Zero for inaccurate sources,
  /// which never cast F votes.
  double f_vote_prob = 0.0;
  bool accurate = false;
};

/// Parameters of the paper's synthetic data model (§6.3.1).
struct SyntheticOptions {
  int32_t num_sources = 10;
  int32_t num_inaccurate = 2;
  int32_t num_facts = 20000;
  /// η: the fraction of facts that end up with at least one F vote.
  /// Implemented by flagging round(η·|F|) false facts; flagged facts
  /// collect F votes from detecting accurate sources (per m(s)) and
  /// are guaranteed at least one F vote while any accurate source
  /// exists. Must satisfy η <= 1 - true_fraction.
  double eta = 0.02;
  /// Probability a fact's correct value is true ("randomly assigned a
  /// correct value of either true or false").
  double true_fraction = 0.5;
  uint64_t seed = 42;
};

/// A generated synthetic corpus.
struct SyntheticDataset {
  Dataset dataset;
  GroundTruth truth;
  std::vector<SyntheticSourceProfile> profiles;
};

/// Generates votes per §6.3.1. For each (source, fact) pair covered
/// by the source:
///   - true fact: the source lists it (T vote);
///   - false fact: with probability 1-σ(s) the source erroneously
///     lists it (T vote); otherwise it detects the error and either
///     casts an F vote (accurate source, flagged fact, probability
///     m(s)) or omits the listing.
/// Fails if the options are inconsistent (e.g. more inaccurate
/// sources than sources, η > 1 - true_fraction).
[[nodiscard]] Result<SyntheticDataset> GenerateSynthetic(const SyntheticOptions& options);

}  // namespace corrob

#endif  // CORROB_SYNTH_SYNTHETIC_H_
