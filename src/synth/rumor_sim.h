#ifndef CORROB_SYNTH_RUMOR_SIM_H_
#define CORROB_SYNTH_RUMOR_SIM_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// Role of a simulated tech blog.
enum class BlogTier {
  /// Few, careful, low coverage; the only tier that debunks (casts
  /// F votes) — the Menupages/OpenTable analogue.
  kInsider,
  /// Many, medium quality; reblog whatever is circulating, including
  /// false rumors that went viral.
  kAggregator,
  /// Rumor mills: originate most false claims, never retract.
  kTabloid,
};

/// Parameters of the product-rumor domain from the paper's
/// introduction ("technology blogs usually provide claims regarding
/// major product releases, each of which could be viewed as facts
/// with only supportive statements"). Unlike the restaurant corpus,
/// false claims here *propagate*: an invented rumor is reblogged by
/// aggregators, manufacturing the apparent consensus of §1.
struct RumorSimOptions {
  int32_t num_rumors = 5000;
  int32_t num_insiders = 4;
  int32_t num_aggregators = 8;
  int32_t num_tabloids = 5;
  /// Fraction of rumors that are actually true.
  double true_fraction = 0.6;
  /// Per-aggregator probability of repeating a circulating false
  /// rumor (the virality of fabricated claims).
  double virality = 0.18;
  /// Per-insider probability of publishing a debunk (an F vote) for a
  /// false rumor it has investigated.
  double debunk_rate = 0.4;
  uint64_t seed = 404;
};

struct RumorCorpus {
  Dataset dataset;
  GroundTruth truth;
  /// Tier of each source, in source-id order.
  std::vector<BlogTier> tiers;
};

/// Generates the rumor vote matrix. Per rumor:
///  - true claims are covered independently (insiders 0.5,
///    aggregators 0.5, tabloids 0.25), all affirmative;
///  - false claims originate at a tabloid (or, rarely, an
///    aggregator), are reblogged by each aggregator with probability
///    `virality` and by each tabloid with half of it, and are
///    investigated by each insider, which then either debunks
///    (F vote, probability debunk_rate), gets fooled into reblogging
///    (probability 0.1), or stays silent.
/// Every rumor has at least one statement (the originator's).
[[nodiscard]] Result<RumorCorpus> GenerateRumors(const RumorSimOptions& options);

}  // namespace corrob

#endif  // CORROB_SYNTH_RUMOR_SIM_H_
