#ifndef CORROB_SYNTH_RESTAURANT_SIM_H_
#define CORROB_SYNTH_RESTAURANT_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"
#include "text/dedup.h"

namespace corrob {

/// Target marginals for one simulated restaurant source, taken from
/// the paper's Table 3 and §6.2.1.
struct RestaurantSourceSpec {
  std::string name;
  /// Fraction of all listings the source covers (Table 3 coverage).
  double coverage = 0.0;
  /// Fraction of the source's golden votes that are correct (Table 3
  /// source accuracy). For this generator it is the probability that
  /// a listing the source carries is actually open.
  double accuracy = 0.0;
  /// Absolute number of F (CLOSED) votes the source casts over the
  /// whole corpus (paper: Foursquare 10, Menupages 256, Yelp 425).
  int64_t f_votes = 0;
};

/// The six sources of the paper's Feb 2012 crawl.
std::vector<RestaurantSourceSpec> PaperRestaurantSources();

struct RestaurantSimOptions {
  /// Corpus size after dedup (paper: 36,916).
  int32_t num_facts = 36916;
  /// Fraction of listings that are actually defunct. The golden set
  /// of the paper has 261/601 false; we apply the same ratio to the
  /// whole population.
  double false_fraction = 261.0 / 601.0;
  /// Golden-set shape (paper: 601 listings, 340 true / 261 false).
  int32_t golden_true = 340;
  int32_t golden_false = 261;
  /// Strength of the shared popularity factor that correlates source
  /// coverage (0 = independent listings; positive values raise the
  /// pairwise overlap towards the paper's Table 3 values at the cost
  /// of a slight upward drift in the marginal coverages).
  double popularity_weight = 0.5;
  uint64_t seed = 2012;
  std::vector<RestaurantSourceSpec> sources = PaperRestaurantSources();
};

/// A simulated, already-deduplicated restaurant corpus.
struct RestaurantCorpus {
  Dataset dataset;
  GroundTruth truth;
  GoldenSet golden;
};

/// Generates the vote matrix of the paper's restaurant study with the
/// published marginals: per-source coverage and accuracy (via
/// truth-conditioned coverage), F-vote counts, corpus size, and a
/// golden set with the published size and truth split. See DESIGN.md
/// §5 for why matching these marginals preserves the experiment.
[[nodiscard]] Result<RestaurantCorpus> GenerateRestaurantCorpus(
    const RestaurantSimOptions& options);

struct RawCrawlOptions {
  /// Number of distinct restaurants in the simulated city.
  int32_t num_restaurants = 2000;
  double false_fraction = 261.0 / 601.0;
  /// Probability that a source's listing of a restaurant is textually
  /// perturbed (abbreviations, dropped punctuation, typos) relative
  /// to the canonical name/address.
  double perturbation_rate = 0.5;
  /// Probability that a source carries a second, differently
  /// formatted duplicate of a listing it already has (the paper's raw
  /// crawl had 42,969 rows collapsing to 36,916 entities: ~16%).
  double duplicate_rate = 0.16;
  uint64_t seed = 2012;
  std::vector<RestaurantSourceSpec> sources = PaperRestaurantSources();
};

/// A simulated raw crawl, before deduplication.
struct RawCrawl {
  std::vector<RawListing> listings;
  /// Canonical entity key -> is the restaurant actually open.
  /// Keys equal RawListing::entity_hint.
  std::vector<std::string> entity_keys;
  std::vector<bool> entity_truth;
};

/// Generates noisy raw listings (multiple presentations of the same
/// restaurant) to exercise the dedup pipeline end to end.
[[nodiscard]] Result<RawCrawl> GenerateRawCrawl(const RawCrawlOptions& options);

}  // namespace corrob

#endif  // CORROB_SYNTH_RESTAURANT_SIM_H_
