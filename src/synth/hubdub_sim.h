#ifndef CORROB_SYNTH_HUBDUB_SIM_H_
#define CORROB_SYNTH_HUBDUB_SIM_H_

#include <cstdint>

#include "common/result.h"
#include "data/question_dataset.h"

namespace corrob {

/// Shape parameters of the Hubdub-style prediction-market benchmark
/// (Galland et al.; paper Table 7: 830 candidate answers over 357
/// settled questions from 471 users).
struct HubdubSimOptions {
  int32_t num_questions = 357;
  int32_t num_answers = 830;  ///< total candidate answers (>= 2/question)
  int32_t num_users = 471;
  /// Expected number of user votes per question.
  double mean_votes_per_question = 7.0;
  /// Per-user accuracy ~ Beta(a, b): the probability the user backs
  /// the eventually-correct answer. The default mean of ~0.58 models
  /// bettors that beat chance but err often — the conflict-rich
  /// regime in which the Table 7 error counts (~260-330 of 830) live.
  double accuracy_alpha = 7.0;
  double accuracy_beta = 5.0;
  /// Zipf-ish exponent of user participation (a few heavy bettors,
  /// a long tail of one-off users).
  double participation_skew = 1.1;
  uint64_t seed = 830;
};

/// Generates a QuestionDataset with the configured shape: every
/// question carries one correct answer; each participating user backs
/// one answer per question (correct with their latent accuracy,
/// otherwise a uniformly random wrong answer).
[[nodiscard]] Result<QuestionDataset> GenerateHubdub(const HubdubSimOptions& options);

}  // namespace corrob

#endif  // CORROB_SYNTH_HUBDUB_SIM_H_
