#include "synth/rumor_sim.h"

#include <string>

#include "common/logging.h"
#include "common/random.h"

namespace corrob {

Result<RumorCorpus> GenerateRumors(const RumorSimOptions& options) {
  if (options.num_rumors < 1) {
    return Status::InvalidArgument("num_rumors must be >= 1");
  }
  if (options.num_insiders < 0 || options.num_aggregators < 0 ||
      options.num_tabloids < 1) {
    return Status::InvalidArgument(
        "need non-negative insider/aggregator counts and >= 1 tabloid");
  }
  if (options.true_fraction < 0.0 || options.true_fraction > 1.0) {
    return Status::InvalidArgument("true_fraction must be in [0,1]");
  }
  if (options.virality < 0.0 || options.virality > 1.0) {
    return Status::InvalidArgument("virality must be in [0,1]");
  }
  if (options.debunk_rate < 0.0 || options.debunk_rate > 1.0) {
    return Status::InvalidArgument("debunk_rate must be in [0,1]");
  }

  Rng rng(options.seed);
  RumorCorpus corpus;
  DatasetBuilder builder;
  for (int32_t i = 0; i < options.num_insiders; ++i) {
    builder.AddSource("insider_" + std::to_string(i));
    corpus.tiers.push_back(BlogTier::kInsider);
  }
  for (int32_t i = 0; i < options.num_aggregators; ++i) {
    builder.AddSource("aggregator_" + std::to_string(i));
    corpus.tiers.push_back(BlogTier::kAggregator);
  }
  for (int32_t i = 0; i < options.num_tabloids; ++i) {
    builder.AddSource("tabloid_" + std::to_string(i));
    corpus.tiers.push_back(BlogTier::kTabloid);
  }
  const SourceId first_aggregator = options.num_insiders;
  const SourceId first_tabloid =
      options.num_insiders + options.num_aggregators;
  const SourceId num_sources = static_cast<SourceId>(corpus.tiers.size());

  std::vector<bool> truth(static_cast<size_t>(options.num_rumors));
  for (int32_t r = 0; r < options.num_rumors; ++r) {
    FactId f = builder.AddFact("rumor_" + std::to_string(r));
    bool is_true = rng.Bernoulli(options.true_fraction);
    truth[static_cast<size_t>(r)] = is_true;

    if (is_true) {
      // Real product news: covered broadly and independently.
      bool covered = false;
      for (SourceId s = 0; s < num_sources; ++s) {
        double coverage = corpus.tiers[static_cast<size_t>(s)] ==
                                  BlogTier::kTabloid
                              ? 0.25
                              : 0.5;
        if (rng.Bernoulli(coverage)) {
          CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kTrue));
          covered = true;
        }
      }
      if (!covered) {
        // Somebody broke the story; pick a random non-tabloid outlet
        // (or a tabloid when nothing else exists).
        SourceId s = first_tabloid > 0
                         ? static_cast<SourceId>(rng.NextBelow(
                               static_cast<uint64_t>(first_tabloid)))
                         : 0;
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kTrue));
      }
      continue;
    }

    // Fabricated rumor: originates at a tabloid (90%) or a careless
    // aggregator (10%, when any exists).
    SourceId origin;
    if (options.num_aggregators > 0 && rng.Bernoulli(0.1)) {
      origin = first_aggregator + static_cast<SourceId>(rng.NextBelow(
                   static_cast<uint64_t>(options.num_aggregators)));
    } else {
      origin = first_tabloid + static_cast<SourceId>(rng.NextBelow(
                   static_cast<uint64_t>(options.num_tabloids)));
    }
    CORROB_CHECK_OK(builder.SetVote(origin, f, Vote::kTrue));

    // Virality: the cascade of uncritical reblogs.
    for (SourceId s = first_aggregator; s < first_tabloid; ++s) {
      if (s != origin && rng.Bernoulli(options.virality)) {
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kTrue));
      }
    }
    for (SourceId s = first_tabloid; s < num_sources; ++s) {
      if (s != origin && rng.Bernoulli(options.virality / 2.0)) {
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kTrue));
      }
    }
    // Insiders investigate: debunk, get fooled, or stay silent.
    for (SourceId s = 0; s < first_aggregator; ++s) {
      if (rng.Bernoulli(options.debunk_rate)) {
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kFalse));
      } else if (rng.Bernoulli(0.1)) {
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kTrue));
      }
    }
  }

  corpus.dataset = builder.Build();
  corpus.truth = GroundTruth(std::move(truth));
  return corpus;
}

}  // namespace corrob
