#include "synth/restaurant_sim.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/string_util.h"

namespace corrob {

std::vector<RestaurantSourceSpec> PaperRestaurantSources() {
  // Table 3 coverage/accuracy; §6.2.1 F-vote counts.
  return {
      {"YellowPages", 0.59, 0.59, 0},
      {"Foursquare", 0.24, 0.78, 10},
      {"MenuPages", 0.20, 0.93, 256},
      {"OpenTable", 0.07, 0.96, 0},
      {"CitySearch", 0.50, 0.62, 0},
      {"Yelp", 0.35, 0.84, 425},
  };
}

namespace {

/// Truth-conditioned coverage implied by a source's marginal coverage
/// and accuracy: P(listed | open) and P(listed | defunct).
struct ConditionedCoverage {
  double when_true = 0.0;
  double when_false = 0.0;
};

Result<ConditionedCoverage> ConditionCoverage(const RestaurantSourceSpec& spec,
                                              double false_fraction) {
  double p_true = 1.0 - false_fraction;
  if (p_true <= 0.0 || false_fraction <= 0.0) {
    return Status::InvalidArgument("false_fraction must be in (0,1)");
  }
  ConditionedCoverage cc;
  cc.when_true = spec.coverage * spec.accuracy / p_true;
  cc.when_false = spec.coverage * (1.0 - spec.accuracy) / false_fraction;
  if (cc.when_true > 1.0 + 1e-9 || cc.when_false > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "source '" + spec.name +
        "': coverage/accuracy marginals are infeasible for false_fraction " +
        FormatDouble(false_fraction, 3));
  }
  cc.when_true = Clamp(cc.when_true, 0.0, 1.0);
  cc.when_false = Clamp(cc.when_false, 0.0, 1.0);
  return cc;
}

}  // namespace

Result<RestaurantCorpus> GenerateRestaurantCorpus(
    const RestaurantSimOptions& options) {
  if (options.num_facts < 1) {
    return Status::InvalidArgument("num_facts must be >= 1");
  }
  if (options.sources.empty()) {
    return Status::InvalidArgument("at least one source is required");
  }
  if (options.golden_true < 0 || options.golden_false < 0) {
    return Status::InvalidArgument("golden sizes must be non-negative");
  }

  std::vector<ConditionedCoverage> conditioned;
  conditioned.reserve(options.sources.size());
  for (const RestaurantSourceSpec& spec : options.sources) {
    CORROB_ASSIGN_OR_RETURN(ConditionedCoverage cc,
                            ConditionCoverage(spec, options.false_fraction));
    conditioned.push_back(cc);
  }

  Rng rng(options.seed);
  const int32_t facts = options.num_facts;

  // Every fact in the corpus is a *listing* — it exists because at
  // least one source carries it. Generation conditions on visibility
  // (redraw until some source lists the fact), so the raw inclusion
  // probabilities must be deflated to keep the measured (visible)
  // coverage at the Table 3 targets: solve a = c · P(visible) by
  // fixed-point iteration, separately per truth value.
  const size_t num_sources = options.sources.size();
  std::vector<double> adj_true(num_sources);
  std::vector<double> adj_false(num_sources);
  double visible_true = 1.0;
  double visible_false = 1.0;
  for (int truth_side = 0; truth_side < 2; ++truth_side) {
    std::vector<double>& adjusted = truth_side == 0 ? adj_true : adj_false;
    double& visible = truth_side == 0 ? visible_true : visible_false;
    for (int iter = 0; iter < 25; ++iter) {
      double not_listed = 1.0;
      for (size_t s = 0; s < num_sources; ++s) {
        double base = truth_side == 0 ? conditioned[s].when_true
                                      : conditioned[s].when_false;
        adjusted[s] = Clamp(base * visible, 0.0, 1.0);
        not_listed *= 1.0 - adjusted[s];
      }
      visible = 1.0 - not_listed;
      if (visible <= 1e-9) {
        return Status::FailedPrecondition(
            "source coverages are too small to generate visible listings");
      }
    }
  }
  // The published false fraction (261/601) is measured over visible
  // listings; defunct restaurants are less visible, so the raw draw
  // probability must be inflated accordingly.
  const double ff = options.false_fraction;
  const double draw_false =
      ff * visible_true / (visible_false * (1.0 - ff) + ff * visible_true);

  std::vector<bool> truth(static_cast<size_t>(facts));
  std::vector<FactId> true_facts;
  std::vector<FactId> false_facts;

  DatasetBuilder builder;
  for (const RestaurantSourceSpec& spec : options.sources) {
    builder.AddSource(spec.name);
  }
  for (int32_t f = 0; f < facts; ++f) {
    builder.AddFact("listing_" + std::to_string(f));
  }

  std::vector<size_t> listers;
  for (int32_t f = 0; f < facts; ++f) {
    for (int attempt = 0;; ++attempt) {
      if (attempt >= 10000) {
        return Status::FailedPrecondition(
            "source coverages are too small to generate visible listings");
      }
      bool is_true = !rng.Bernoulli(draw_false);
      // Shared popularity factor: popular restaurants are listed by
      // more sources, which raises pairwise overlap (Table 3) above
      // the independent-coverage level.
      double popularity =
          Clamp(1.0 + options.popularity_weight * rng.Gaussian(), 0.25, 2.5);
      listers.clear();
      for (size_t s = 0; s < num_sources; ++s) {
        double p = Clamp((is_true ? adj_true[s] : adj_false[s]) * popularity,
                         0.0, 1.0);
        if (rng.Bernoulli(p)) listers.push_back(s);
      }
      if (listers.empty()) continue;  // Nobody carries it: not a listing.
      truth[static_cast<size_t>(f)] = is_true;
      (is_true ? true_facts : false_facts).push_back(f);
      for (size_t s : listers) {
        CORROB_CHECK_OK(
            builder.SetVote(static_cast<SourceId>(s), f, Vote::kTrue));
      }
      break;
    }
  }
  if (true_facts.empty() || false_facts.empty()) {
    return Status::FailedPrecondition(
        "degenerate corpus: need both open and defunct listings");
  }

  // F (CLOSED) votes: each source marks its specified number of
  // defunct listings. A CLOSED marker replaces any affirmative copy
  // the source carried.
  for (size_t s = 0; s < options.sources.size(); ++s) {
    int64_t target = options.sources[s].f_votes;
    if (target <= 0) continue;
    std::vector<FactId> pool = false_facts;
    rng.Shuffle(&pool);
    int64_t take = std::min<int64_t>(target, static_cast<int64_t>(pool.size()));
    for (int64_t i = 0; i < take; ++i) {
      CORROB_CHECK_OK(builder.SetVote(static_cast<SourceId>(s),
                                      pool[static_cast<size_t>(i)],
                                      Vote::kFalse));
    }
  }

  // Golden set with the published size and split.
  GoldenSet golden;
  std::vector<FactId> true_pool = true_facts;
  std::vector<FactId> false_pool = false_facts;
  rng.Shuffle(&true_pool);
  rng.Shuffle(&false_pool);
  if (static_cast<int64_t>(true_pool.size()) < options.golden_true ||
      static_cast<int64_t>(false_pool.size()) < options.golden_false) {
    return Status::FailedPrecondition(
        "corpus too small for the requested golden set");
  }
  for (int32_t i = 0; i < options.golden_true; ++i) {
    golden.Add(true_pool[static_cast<size_t>(i)], true);
  }
  for (int32_t i = 0; i < options.golden_false; ++i) {
    golden.Add(false_pool[static_cast<size_t>(i)], false);
  }

  RestaurantCorpus corpus;
  corpus.dataset = builder.Build();
  corpus.truth = GroundTruth(std::move(truth));
  corpus.golden = std::move(golden);
  return corpus;
}

namespace {

constexpr std::array<const char*, 18> kNameAdjectives = {
    "Grand",  "Golden", "Little", "Royal",  "Blue",   "Lucky",
    "Silver", "Happy",  "Old",    "New",    "Red",    "Green",
    "Sunny",  "Corner", "Famous", "Village", "Uptown", "Downtown"};

constexpr std::array<const char*, 20> kNameNouns = {
    "Dragon",  "Garden",  "Palace",  "Kitchen", "Table",  "Bistro",
    "Grill",   "Tavern",  "Diner",   "Cantina", "Trattoria", "Brasserie",
    "Noodle",  "Curry",   "Pizzeria", "Deli",   "Cafe",   "Oyster",
    "Harvest", "Lantern"};

constexpr std::array<const char*, 12> kNameSuffixes = {
    "House",      "Bar",   "Room",    "Spot",    "Club", "Express",
    "Restaurant", "Place", "Company", "Corner",  "Co",   "Eatery"};

constexpr std::array<const char*, 16> kStreetNames = {
    "Main",    "Oak",     "Maple",  "Cedar",   "Park",   "Lake",
    "Hill",    "River",   "Spring", "Madison", "Lexington", "Hudson",
    "Mulberry", "Greene", "Bleecker", "Delancey"};

constexpr std::array<const char*, 6> kStreetSuffixFull = {
    "Street", "Avenue", "Boulevard", "Road", "Place", "Lane"};
constexpr std::array<const char*, 6> kStreetSuffixAbbrev = {
    "St", "Ave", "Blvd", "Rd", "Pl", "Ln"};

constexpr std::array<const char*, 4> kDirectionFull = {"West", "East", "North",
                                                       "South"};
constexpr std::array<const char*, 4> kDirectionAbbrev = {"W", "E", "N", "S"};

struct CanonicalRestaurant {
  std::string name;
  // Address pieces kept separate so perturbations can re-render them.
  int number = 0;
  int direction = -1;  // index into kDirection*, -1 = none
  std::string street;
  int suffix = 0;  // index into kStreetSuffix*
  // Whether listings of this restaurant carry a ", New York" suffix.
  // Fixed per restaurant: a city suffix is not erased by address
  // normalization, so varying it per listing would split the entity
  // across dedup blocks.
  bool with_city = false;
};

std::string RenderAddress(const CanonicalRestaurant& r, bool abbrev_direction,
                          bool abbrev_suffix) {
  std::string out = std::to_string(r.number);
  if (r.direction >= 0) {
    out += " ";
    out += abbrev_direction ? kDirectionAbbrev[static_cast<size_t>(r.direction)]
                            : kDirectionFull[static_cast<size_t>(r.direction)];
  }
  out += " " + r.street + " ";
  out += abbrev_suffix ? kStreetSuffixAbbrev[static_cast<size_t>(r.suffix)]
                       : kStreetSuffixFull[static_cast<size_t>(r.suffix)];
  if (r.with_city) out += ", New York";
  return out;
}

std::string PerturbName(const std::string& name, Rng* rng) {
  std::string out = name;
  switch (rng->NextBelow(4)) {
    case 0:  // Drop apostrophes and periods.
      out = ReplaceAll(out, "'", "");
      out = ReplaceAll(out, ".", "");
      break;
    case 1:  // Lowercase rendering.
      out = ToLower(out);
      break;
    case 2: {  // Drop a trailing word if there are several.
      std::vector<std::string> words = SplitWhitespace(out);
      if (words.size() > 2) {
        words.pop_back();
        out = Join(words, " ");
      }
      break;
    }
    case 3: {  // Single-character typo (swap two adjacent letters).
      if (out.size() > 3) {
        size_t i = 1 + rng->NextBelow(out.size() - 2);
        std::swap(out[i], out[i + 1]);
      }
      break;
    }
  }
  return out;
}

}  // namespace

Result<RawCrawl> GenerateRawCrawl(const RawCrawlOptions& options) {
  if (options.num_restaurants < 1) {
    return Status::InvalidArgument("num_restaurants must be >= 1");
  }
  if (options.sources.empty()) {
    return Status::InvalidArgument("at least one source is required");
  }

  std::vector<ConditionedCoverage> conditioned;
  conditioned.reserve(options.sources.size());
  for (const RestaurantSourceSpec& spec : options.sources) {
    CORROB_ASSIGN_OR_RETURN(ConditionedCoverage cc,
                            ConditionCoverage(spec, options.false_fraction));
    conditioned.push_back(cc);
  }

  Rng rng(options.seed);
  RawCrawl crawl;
  std::vector<CanonicalRestaurant> restaurants(
      static_cast<size_t>(options.num_restaurants));
  for (int32_t i = 0; i < options.num_restaurants; ++i) {
    CanonicalRestaurant& r = restaurants[static_cast<size_t>(i)];
    r.name = std::string(kNameAdjectives[rng.NextBelow(kNameAdjectives.size())]) +
             " " + kNameNouns[rng.NextBelow(kNameNouns.size())] + " " +
             kNameSuffixes[rng.NextBelow(kNameSuffixes.size())];
    r.number = static_cast<int>(1 + rng.NextBelow(999));
    r.direction = rng.Bernoulli(0.4)
                      ? static_cast<int>(rng.NextBelow(kDirectionFull.size()))
                      : -1;
    r.street = kStreetNames[rng.NextBelow(kStreetNames.size())];
    r.suffix = static_cast<int>(rng.NextBelow(kStreetSuffixFull.size()));
    r.with_city = rng.Bernoulli(0.3);

    crawl.entity_keys.push_back("R" + std::to_string(i));
    crawl.entity_truth.push_back(!rng.Bernoulli(options.false_fraction));
  }

  auto emit_listing = [&](size_t source_index, int32_t restaurant,
                          bool closed) {
    const CanonicalRestaurant& r =
        restaurants[static_cast<size_t>(restaurant)];
    RawListing listing;
    listing.source = options.sources[source_index].name;
    listing.entity_hint = crawl.entity_keys[static_cast<size_t>(restaurant)];
    listing.closed = closed;
    bool perturb = rng.Bernoulli(options.perturbation_rate);
    listing.name = perturb ? PerturbName(r.name, &rng) : r.name;
    listing.address = RenderAddress(r, /*abbrev_direction=*/rng.Bernoulli(0.5),
                                    /*abbrev_suffix=*/rng.Bernoulli(0.5));
    crawl.listings.push_back(std::move(listing));
  };

  for (size_t s = 0; s < options.sources.size(); ++s) {
    bool casts_f_votes = options.sources[s].f_votes > 0;
    for (int32_t i = 0; i < options.num_restaurants; ++i) {
      bool open = crawl.entity_truth[static_cast<size_t>(i)];
      double coverage =
          open ? conditioned[s].when_true : conditioned[s].when_false;
      // A source that audits its listings may instead carry the
      // restaurant as CLOSED (an F vote) when it is defunct.
      bool closed_marker =
          !open && casts_f_votes && rng.Bernoulli(0.05);
      if (!closed_marker && !rng.Bernoulli(coverage)) continue;
      emit_listing(s, i, closed_marker);
      if (!closed_marker && rng.Bernoulli(options.duplicate_rate)) {
        emit_listing(s, i, false);  // A second, differently formatted copy.
      }
    }
  }
  return crawl;
}

}  // namespace corrob
