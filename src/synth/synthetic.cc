#include "synth/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"

namespace corrob {

Result<SyntheticDataset> GenerateSynthetic(const SyntheticOptions& options) {
  if (options.num_sources < 1) {
    return Status::InvalidArgument("num_sources must be >= 1");
  }
  if (options.num_inaccurate < 0 ||
      options.num_inaccurate > options.num_sources) {
    return Status::InvalidArgument(
        "num_inaccurate must be in [0, num_sources]");
  }
  if (options.num_facts < 1) {
    return Status::InvalidArgument("num_facts must be >= 1");
  }
  if (options.true_fraction < 0.0 || options.true_fraction > 1.0) {
    return Status::InvalidArgument("true_fraction must be in [0,1]");
  }
  if (options.eta < 0.0 || options.eta > 1.0 - options.true_fraction + 1e-12) {
    return Status::InvalidArgument(
        "eta must be in [0, 1 - true_fraction]: flagged facts are false");
  }

  Rng rng(options.seed);

  // Source profiles. The first num_inaccurate ids are the inaccurate
  // sources so sweeps can hold that block fixed while varying totals.
  std::vector<SyntheticSourceProfile> profiles(
      static_cast<size_t>(options.num_sources));
  for (int32_t s = 0; s < options.num_sources; ++s) {
    SyntheticSourceProfile& p = profiles[static_cast<size_t>(s)];
    p.accurate = s >= options.num_inaccurate;
    if (p.accurate) {
      p.trust = rng.Uniform(0.7, 1.0);
      p.f_vote_prob = rng.Uniform(0.0, 0.5);
    } else {
      p.trust = rng.Uniform(0.5, 0.7);
      p.f_vote_prob = 0.0;
    }
    p.coverage = Clamp(1.0 - p.trust + rng.NextDouble() * 0.2, 0.0, 1.0);
  }

  DatasetBuilder builder;
  for (int32_t s = 0; s < options.num_sources; ++s) {
    builder.AddSource((profiles[static_cast<size_t>(s)].accurate
                           ? std::string("acc_")
                           : std::string("inacc_")) +
                      std::to_string(s));
  }
  for (int32_t f = 0; f < options.num_facts; ++f) {
    builder.AddFact("f" + std::to_string(f));
  }

  std::vector<int32_t> accurate_ids;
  for (int32_t s = 0; s < options.num_sources; ++s) {
    if (profiles[static_cast<size_t>(s)].accurate) accurate_ids.push_back(s);
  }

  // A fact only exists in the corpus if at least one source lists it
  // (a restaurant nobody ever listed is not a listing); each fact is
  // redrawn until it receives a vote. η is applied to false facts as
  // the conditional flagging probability eta / (1 - true_fraction) so
  // that the unconditional flagged fraction is ≈ η.
  const double flag_prob =
      options.true_fraction >= 1.0
          ? 0.0
          : Clamp(options.eta / (1.0 - options.true_fraction), 0.0, 1.0);
  std::vector<bool> truth(static_cast<size_t>(options.num_facts));
  std::vector<SourceVote> votes;
  for (int32_t f = 0; f < options.num_facts; ++f) {
    for (int attempt = 0;; ++attempt) {
      if (attempt >= 10000) {
        // Degenerate profiles (all coverages ≈ 0) cannot produce a
        // visible fact in reasonable time.
        return Status::FailedPrecondition(
            "source coverages are too small to generate visible facts");
      }
      votes.clear();
      bool is_true = rng.Bernoulli(options.true_fraction);
      bool flagged = !is_true && rng.Bernoulli(flag_prob);
      bool has_f_vote = false;
      for (int32_t s = 0; s < options.num_sources; ++s) {
        const SyntheticSourceProfile& p = profiles[static_cast<size_t>(s)];
        if (!rng.Bernoulli(p.coverage)) continue;
        if (is_true) {
          votes.push_back(SourceVote{s, Vote::kTrue});
        } else if (rng.Bernoulli(Clamp((1.0 - p.trust) / p.trust, 0.0, 1.0))) {
          // The source errs and keeps the bogus listing. The error
          // rate (1-σ)/σ makes the source's precision equal σ(s),
          // matching the paper's definition of the trust score as
          // the source's precision (§3.1).
          votes.push_back(SourceVote{s, Vote::kTrue});
        } else if (p.accurate && flagged && rng.Bernoulli(p.f_vote_prob)) {
          votes.push_back(SourceVote{s, Vote::kFalse});
          has_f_vote = true;
        }
        // Otherwise the source silently drops the bogus listing.
      }
      // Flagged facts are guaranteed an F vote while any accurate
      // source exists to cast it.
      if (flagged && !has_f_vote && !accurate_ids.empty()) {
        votes.push_back(SourceVote{
            accurate_ids[static_cast<size_t>(
                rng.NextBelow(accurate_ids.size()))],
            Vote::kFalse});
      }
      if (votes.empty()) continue;  // Invisible fact: redraw.
      truth[static_cast<size_t>(f)] = is_true;
      for (const SourceVote& sv : votes) {
        CORROB_CHECK_OK(builder.SetVote(sv.source, f, sv.vote));
      }
      break;
    }
  }

  SyntheticDataset out;
  out.dataset = builder.Build();
  out.truth = GroundTruth(std::move(truth));
  out.profiles = std::move(profiles);
  return out;
}

}  // namespace corrob
