#ifndef CORROB_DATA_TRUTH_H_
#define CORROB_DATA_TRUTH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "data/vote.h"

namespace corrob {

/// Ground-truth label of every fact in a dataset (synthetic data and
/// simulated crawls know the full truth; real deployments only know a
/// golden subset).
class GroundTruth {
 public:
  GroundTruth() = default;
  /// Creates truth labels for `labels.size()` facts; labels[f] is true
  /// iff fact f is factually correct.
  explicit GroundTruth(std::vector<bool> labels)
      : labels_(std::move(labels)) {}

  int32_t num_facts() const { return static_cast<int32_t>(labels_.size()); }
  bool IsTrue(FactId f) const { return labels_[static_cast<size_t>(f)]; }

  const std::vector<bool>& labels() const { return labels_; }

 private:
  std::vector<bool> labels_;
};

/// A labeled subset of facts — the hand-checked "golden set" used for
/// evaluation (paper §6.2.1: 601 listings, 340 true / 261 false).
class GoldenSet {
 public:
  GoldenSet() = default;

  /// Adds a labeled fact. Duplicate fact ids are allowed but
  /// discouraged; evaluation treats each entry independently.
  void Add(FactId fact, bool is_true) {
    facts_.push_back(fact);
    labels_.push_back(is_true);
  }

  size_t size() const { return facts_.size(); }
  bool empty() const { return facts_.empty(); }
  FactId fact(size_t i) const { return facts_[i]; }
  bool label(size_t i) const { return labels_[i]; }

  /// Number of entries labeled true.
  int32_t CountTrue() const {
    int32_t n = 0;
    for (bool b : labels_) n += b ? 1 : 0;
    return n;
  }
  int32_t CountFalse() const {
    return static_cast<int32_t>(size()) - CountTrue();
  }

  /// Builds a golden set covering every fact of `truth`.
  static GoldenSet FromFullTruth(const GroundTruth& truth) {
    GoldenSet golden;
    for (FactId f = 0; f < truth.num_facts(); ++f) {
      golden.Add(f, truth.IsTrue(f));
    }
    return golden;
  }

 private:
  std::vector<FactId> facts_;
  std::vector<bool> labels_;
};

}  // namespace corrob

#endif  // CORROB_DATA_TRUTH_H_
