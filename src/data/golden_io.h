#ifndef CORROB_DATA_GOLDEN_IO_H_
#define CORROB_DATA_GOLDEN_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// Golden-set CSV layout (one hand-checked fact per row):
///   fact,label
///   listing_17,true
///   listing_23,false
/// Labels accept true/false/1/0. Fact names must exist in `dataset`;
/// duplicates are rejected.
[[nodiscard]] Result<GoldenSet> ParseGoldenCsv(const std::string& text,
                                 const Dataset& dataset);

/// Reads ParseGoldenCsv input from a file.
[[nodiscard]] Result<GoldenSet> LoadGoldenCsv(const std::string& path,
                                const Dataset& dataset);

/// Serializes a golden set against its dataset's fact names.
std::string GoldenToCsv(const GoldenSet& golden, const Dataset& dataset);

/// Writes GoldenToCsv output to `path`.
[[nodiscard]] Status SaveGoldenCsv(const std::string& path, const GoldenSet& golden,
                     const Dataset& dataset);

}  // namespace corrob

#endif  // CORROB_DATA_GOLDEN_IO_H_
