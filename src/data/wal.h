#ifndef CORROB_DATA_WAL_H_
#define CORROB_DATA_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/vote.h"

namespace corrob {

/// Durable, append-only write-ahead log of vote deltas — the
/// crash-safe ingestion path between a live stream of mutations and
/// the immutable Dataset the corroborators run on (ROADMAP item 3).
///
/// On-disk layout under a WAL directory:
///
///   wal-000000.log, wal-000001.log, ...   record segments
///   snapshot.snap                          optional compaction snapshot
///
/// Segment format (all integers little-endian):
///
///   [8]  magic "CORROBWL"
///   [4]  u32 format version (currently 2)
///   then zero or more records:
///   [1]  u8 record type
///   [4]  u32 payload length
///   [n]  payload
///   [4]  u32 CRC-32 of the type byte + length bytes + payload
///
/// The CRC covers the length field, so a bit flip in a length can
/// never silently re-frame the rest of the segment — it fails the
/// record's CRC like any other damage.
///
/// Besides the four WalRecordType payloads, a segment may hold a
/// *batch* record (type byte 5, never surfaced as a WalRecord): a
/// count-prefixed sequence of mutation sub-records framed under one
/// CRC. A batch is the durability unit of a multi-delta apply — replay
/// sees all of its mutations or, when the batch is the torn tail, none.
///
/// Snapshot format mirrors the checkpoint framing
/// (core/online_checkpoint):
///
///   [8]  magic "CORROBWS"
///   [4]  u32 format version (currently 2)
///   [8]  u64 compaction sequence number
///   [8]  u64 payload size
///   [n]  payload — dataset CSV text (data/dataset_io layout)
///   [4]  u32 CRC-32 of the payload
///
/// Recovery semantics: a torn tail — a partial or CRC-failing record
/// at the end of the *final* segment, the signature of `kill -9`
/// mid-append — is truncated with a single WARNING and the load
/// succeeds with the surviving prefix. The same damage anywhere else
/// is real corruption and fails with ParseError. "Anywhere else"
/// includes the middle of the final segment: when any intact record
/// decodes past the damage point the damage cannot be a torn tail
/// (a genuine kill -9 leaves at most one partial record, at the very
/// end), so recovery resyncs before classifying and refuses to drop
/// acked records silently.
///
/// Replay is idempotent: records carry names (not dense ids) and votes
/// are last-writer-wins, so re-applying an already-folded prefix after
/// a crash mid-compaction converges to the same dataset. Compactions
/// are numbered by a monotonic sequence carried in both the snapshot
/// and its marker: recovery enforces the marker CRC only for the
/// marker whose sequence matches the resident snapshot, and skips
/// markers with older sequences — the residue of a compaction that
/// crashed (or failed to unlink) before cleaning up its predecessor's
/// segments.

/// Kind of one logged mutation.
enum class WalRecordType : uint8_t {
  /// Registers a source by name (no-op when already known).
  kAddSource = 1,
  /// Sets `source`'s vote on `fact` (last writer wins).
  kAddVote = 2,
  /// Erases `source`'s vote on `fact` (no-op when absent).
  kRetractVote = 3,
  /// Marks that every earlier record is folded into snapshot.snap;
  /// carries the snapshot payload CRC and the compaction sequence
  /// number so replay can detect a mismatched snapshot/log pair while
  /// tolerating markers superseded by a later compaction.
  kSnapshotMarker = 4,
};

/// Stable name for a record type (e.g. "add-vote").
std::string_view WalRecordTypeName(WalRecordType type);

/// One logged mutation. Which fields are meaningful depends on `type`;
/// unused fields stay at their defaults and are not serialized.
struct WalRecord {
  WalRecordType type = WalRecordType::kAddVote;
  std::string source;             // kAddSource, kAddVote, kRetractVote
  std::string fact;               // kAddVote, kRetractVote
  Vote vote = Vote::kNone;        // kAddVote (kTrue or kFalse)
  uint32_t snapshot_crc = 0;      // kSnapshotMarker
  uint64_t records_folded = 0;    // kSnapshotMarker
  uint64_t compaction_seq = 0;    // kSnapshotMarker

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Convenience constructors for the three mutation kinds.
WalRecord MakeAddSource(std::string source);
WalRecord MakeAddVote(std::string source, std::string fact, Vote vote);
WalRecord MakeRetractVote(std::string source, std::string fact);

/// When appends reach the disk.
enum class WalFsyncPolicy {
  /// fsync after every append: a record acked is a record on disk.
  kAlways,
  /// fsync every `fsync_interval_records` appends (and on rotation /
  /// close): bounded loss window, much higher throughput.
  kInterval,
  /// Never fsync from the writer; the OS flushes when it pleases.
  kNever,
};

/// Parses "always" / "interval" / "never" (case-sensitive).
[[nodiscard]] Result<WalFsyncPolicy> ParseWalFsyncPolicy(std::string_view text);

/// Stable name of a policy, inverse of ParseWalFsyncPolicy.
std::string_view WalFsyncPolicyName(WalFsyncPolicy policy);

struct WalOptions {
  WalFsyncPolicy fsync_policy = WalFsyncPolicy::kAlways;
  /// Appends between fsyncs under WalFsyncPolicy::kInterval (>= 1).
  int64_t fsync_interval_records = 64;
  /// Rotate to a fresh segment once the active one exceeds this many
  /// bytes (>= 1); keeps any single replay read bounded.
  int64_t segment_bytes = 4 * 1024 * 1024;
};

/// Validates option ranges; InvalidArgument names the first bad field.
[[nodiscard]] Status ValidateWalOptions(const WalOptions& options);

/// Everything recovery learned from a WAL directory.
struct WalRecovery {
  /// Surviving records across all segments, in append order
  /// (snapshot markers included).
  std::vector<WalRecord> records;
  /// True when snapshot.snap exists and passed its CRC.
  bool has_snapshot = false;
  /// The snapshot's dataset CSV payload when has_snapshot.
  std::string snapshot_csv;
  /// CRC-32 of snapshot_csv when has_snapshot.
  uint32_t snapshot_crc = 0;
  /// Compaction sequence number of the snapshot when has_snapshot.
  uint64_t snapshot_seq = 0;
  /// True when a torn tail was found in the final segment.
  bool tail_truncated = false;
  /// Bytes of torn tail dropped (0 when !tail_truncated).
  uint64_t tail_bytes_dropped = 0;
  /// Segment files scanned, in index order.
  int64_t segments_scanned = 0;
  /// Markers whose compaction sequence predates the resident
  /// snapshot's — the residue of an interrupted compaction. Their CRC
  /// is not enforced; their segments replay idempotently.
  int64_t stale_markers = 0;

  /// Mutation records only (markers filtered out).
  std::vector<WalRecord> Mutations() const;
};

/// Read-only scan of a WAL directory: reports a torn tail via
/// `tail_truncated` but never modifies any file — safe to run against
/// a live writer's directory (`corrob wal-inspect` uses this).
/// NotFound when `dir` does not exist.
[[nodiscard]] Result<WalRecovery> InspectWal(const std::string& dir);

/// Append handle on a WAL directory.
///
/// Open() recovers first — truncating a torn tail so the invariant
/// "only the final segment may end mid-record" is re-established —
/// then appends to the last segment (or creates wal-000000.log).
///
/// Thread-compatible: callers serialize Append/Sync/Compact
/// externally (corrobd holds the ServedDataset mutex).
///
/// Fault-injection sites: "wal.append", "wal.fsync", "wal.rotate",
/// "wal.replay".
class WalWriter {
 public:
  /// Opens (creating `dir` if needed) and recovers. When `recovery`
  /// is non-null it receives the surviving records so the caller can
  /// rebuild its resident state from the same scan.
  [[nodiscard]] static Result<WalWriter> Open(const std::string& dir,
                                              const WalOptions& options,
                                              WalRecovery* recovery = nullptr);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record (rotating first when the active segment is
  /// full) and applies the fsync policy. On failure the writer is
  /// left usable; the record may or may not have reached the disk,
  /// so callers must not ack the mutation. The record is one CRC
  /// frame, so replay after a crash sees it whole or not at all.
  [[nodiscard]] Status Append(const WalRecord& record);

  /// Appends `records` as one durability unit: the whole batch is a
  /// single CRC-covered frame, written and (per policy) fsynced once.
  /// Replay can never surface a strict prefix of the batch — a crash
  /// mid-write leaves a torn tail that recovery truncates wholly. On
  /// failure the partial write is rolled back when the disk still
  /// cooperates; either way the batch is all-or-nothing, so a
  /// negative ack never leaves part of it durable. Markers are
  /// rejected (compaction is the only marker writer).
  [[nodiscard]] Status AppendBatch(std::span<const WalRecord> records);

  /// Forces an fsync of the active segment regardless of policy.
  [[nodiscard]] Status Sync();

  /// Folds the log into a snapshot: durably writes `dataset_csv` to
  /// snapshot.snap under the next compaction sequence number, starts
  /// a fresh segment whose first record is a kSnapshotMarker pinning
  /// that sequence, then deletes the older segments. Crash-safe at
  /// every step: replay after an interrupted compaction re-applies
  /// old records idempotently on top of the snapshot, and markers
  /// from superseded compactions (old segments that survived a crash
  /// or an unlink failure) are recognized by their older sequence and
  /// tolerated.
  [[nodiscard]] Status Compact(std::string_view dataset_csv,
                               uint64_t records_folded);

  /// Directory this writer appends under.
  const std::string& dir() const { return dir_; }

  /// Index of the segment currently accepting appends.
  int64_t active_segment_index() const { return segment_index_; }

  /// Records appended through this handle (not counting recovery).
  int64_t records_appended() const { return records_appended_; }

 private:
  WalWriter(std::string dir, WalOptions options);

  /// Closes the active segment fd (fsyncing under kAlways/kInterval).
  void CloseActive();
  /// Opens segment `index` for append, writing a header when fresh.
  [[nodiscard]] Status OpenSegment(int64_t index, bool truncate);
  /// Rotates to segment `segment_index_ + 1`.
  [[nodiscard]] Status Rotate();
  /// Appends raw bytes to the active segment.
  [[nodiscard]] Status WriteBytes(std::string_view bytes);
  /// Applies the fsync policy after a successful append.
  [[nodiscard]] Status MaybeSync();

  std::string dir_;
  WalOptions options_;
  int fd_ = -1;
  int64_t segment_index_ = 0;
  int64_t segment_bytes_written_ = 0;
  int64_t records_appended_ = 0;
  int64_t records_since_sync_ = 0;
  /// Sequence number of the resident snapshot (0 before the first
  /// compaction); the next Compact publishes under this + 1.
  uint64_t compaction_seq_ = 0;
};

namespace wal_internal {

/// Serializes one record into its on-disk framing (type byte, length,
/// payload, CRC). Exposed for tests that build corrupt frames.
std::string EncodeRecord(const WalRecord& record);

/// Serializes a mutation batch into one framed batch record (type
/// byte 5): the whole batch shares one length and one CRC, so replay
/// is all-or-nothing. Exposed for tests that cut batch frames.
std::string EncodeBatchRecord(std::span<const WalRecord> records);

/// The fixed segment header ("CORROBWL" + version).
std::string SegmentHeader();

/// Name of segment `index`, e.g. "wal-000012.log".
std::string SegmentFileName(int64_t index);

}  // namespace wal_internal

}  // namespace corrob

#endif  // CORROB_DATA_WAL_H_
