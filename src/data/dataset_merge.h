#ifndef CORROB_DATA_DATASET_MERGE_H_
#define CORROB_DATA_DATASET_MERGE_H_

#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace corrob {

/// How conflicting votes for the same (source, fact) pair are
/// resolved when merging datasets.
enum class MergeConflictPolicy {
  /// The later dataset's vote wins (a re-crawl updates a listing).
  kLastWins,
  /// An F vote wins over a T vote (an explicit CLOSED marker beats a
  /// stale affirmative copy, as in the dedup pipeline).
  kFalsePrevails,
  /// Conflicting votes fail the merge.
  kError,
};

/// Merges datasets by source/fact *name*: sources and facts with
/// equal names are identified, ids are reassigned densely in
/// first-appearance order across the inputs. Typical use: combining
/// incremental crawl snapshots before a batch corroboration run.
[[nodiscard]] Result<Dataset> MergeDatasets(
    const std::vector<const Dataset*>& datasets,
    MergeConflictPolicy policy = MergeConflictPolicy::kLastWins);

}  // namespace corrob

#endif  // CORROB_DATA_DATASET_MERGE_H_
