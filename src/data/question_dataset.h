#ifndef CORROB_DATA_QUESTION_DATASET_H_
#define CORROB_DATA_QUESTION_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

using QuestionId = int32_t;

/// A dataset whose facts are candidate answers to questions with
/// exactly one correct answer each — the structure of the Hubdub
/// benchmark (Galland et al., used by the paper for Table 7).
///
/// A source voting T for one answer of a question implicitly votes F
/// on the question's other answers; `WithNegativeClosure()`
/// materializes those implicit votes so that corroborators designed
/// for T/F matrices can consume the data (this is the closure Galland
/// et al. apply).
class QuestionDataset {
 public:
  QuestionDataset() = default;
  QuestionDataset(Dataset dataset, std::vector<QuestionId> question_of_fact,
                  GroundTruth truth);

  const Dataset& dataset() const { return dataset_; }
  const GroundTruth& truth() const { return truth_; }
  int32_t num_questions() const { return num_questions_; }
  QuestionId question_of(FactId f) const {
    return question_of_fact_[static_cast<size_t>(f)];
  }
  /// Facts (candidate answers) belonging to question `q`.
  const std::vector<FactId>& answers(QuestionId q) const {
    return answers_[static_cast<size_t>(q)];
  }

  /// Returns a plain Dataset in which every T vote on an answer is
  /// accompanied by F votes on the question's sibling answers.
  /// Explicit F votes present in the input are preserved.
  Dataset WithNegativeClosure() const;

 private:
  Dataset dataset_;
  std::vector<QuestionId> question_of_fact_;
  std::vector<std::vector<FactId>> answers_;
  GroundTruth truth_;
  int32_t num_questions_ = 0;
};

/// Builder for QuestionDataset: declare questions, attach answers,
/// record votes for answers.
class QuestionDatasetBuilder {
 public:
  /// Declares a question; returns its id.
  QuestionId AddQuestion(const std::string& name);

  /// Adds a candidate answer to a question; `is_correct` marks the
  /// single true answer. Returns the fact id.
  FactId AddAnswer(QuestionId q, const std::string& name, bool is_correct);

  SourceId AddSource(const std::string& name);

  /// Records that `s` voted for answer `f` (an affirmative vote), or
  /// explicitly against it.
  [[nodiscard]] Status SetVote(SourceId s, FactId f, Vote vote);

  /// Validates (every question has exactly one correct answer) and
  /// freezes. The builder is left empty.
  [[nodiscard]] Result<QuestionDataset> Build();

 private:
  DatasetBuilder builder_;
  std::vector<QuestionId> question_of_fact_;
  std::vector<bool> fact_truth_;
  std::vector<int32_t> correct_answers_per_question_;
  std::vector<std::string> question_names_;
};

}  // namespace corrob

#endif  // CORROB_DATA_QUESTION_DATASET_H_
