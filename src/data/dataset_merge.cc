#include "data/dataset_merge.h"

namespace corrob {

Result<Dataset> MergeDatasets(const std::vector<const Dataset*>& datasets,
                              MergeConflictPolicy policy) {
  DatasetBuilder builder;
  for (const Dataset* dataset : datasets) {
    if (dataset == nullptr) {
      return Status::InvalidArgument("null dataset in merge input");
    }
    for (SourceId s = 0; s < dataset->num_sources(); ++s) {
      builder.AddSource(dataset->source_name(s));
    }
    for (FactId f = 0; f < dataset->num_facts(); ++f) {
      FactId merged_fact = builder.AddFact(dataset->fact_name(f));
      for (const SourceVote& sv : dataset->VotesOnFact(f)) {
        SourceId merged_source =
            builder.AddSource(dataset->source_name(sv.source));
        Vote existing = builder.GetVote(merged_source, merged_fact);
        Vote incoming = sv.vote;
        if (existing != Vote::kNone && existing != incoming) {
          switch (policy) {
            case MergeConflictPolicy::kLastWins:
              break;  // Overwrite below.
            case MergeConflictPolicy::kFalsePrevails:
              incoming = Vote::kFalse;
              break;
            case MergeConflictPolicy::kError:
              return Status::AlreadyExists(
                  "conflicting votes for source '" +
                  dataset->source_name(sv.source) + "' on fact '" +
                  dataset->fact_name(f) + "'");
          }
        }
        CORROB_RETURN_NOT_OK(
            builder.SetVote(merged_source, merged_fact, incoming));
      }
    }
  }
  return builder.Build();
}

}  // namespace corrob
