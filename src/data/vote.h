#ifndef CORROB_DATA_VOTE_H_
#define CORROB_DATA_VOTE_H_

#include <cstdint>

#include "common/result.h"

namespace corrob {

/// Identifier types. Ids are dense indices assigned by DatasetBuilder
/// in insertion order.
using SourceId = int32_t;
using FactId = int32_t;

/// A source's statement about a fact (paper Eq. 1):
///   kTrue  (T) — the source affirms the fact,
///   kFalse (F) — the source disputes the fact,
///   kNone  (-) — the source has no knowledge of the fact.
///
/// kNone is never materialized in a Dataset; it exists for parsing
/// and for APIs that probe an arbitrary (source, fact) pair.
enum class Vote : int8_t {
  kTrue = 1,
  kFalse = 0,
  kNone = -1,
};

/// Renders a vote as 'T', 'F' or '-'.
inline char VoteToChar(Vote vote) {
  switch (vote) {
    case Vote::kTrue:
      return 'T';
    case Vote::kFalse:
      return 'F';
    case Vote::kNone:
      return '-';
  }
  return '?';
}

/// Parses 'T'/'t' -> kTrue, 'F'/'f' -> kFalse, '-' -> kNone.
inline Result<Vote> VoteFromChar(char c) {
  switch (c) {
    case 'T':
    case 't':
      return Vote::kTrue;
    case 'F':
    case 'f':
      return Vote::kFalse;
    case '-':
      return Vote::kNone;
    default:
      return Status::ParseError(std::string("invalid vote character: '") + c +
                                "'");
  }
}

/// A materialized statement: which source voted and what it said.
struct SourceVote {
  SourceId source = -1;
  Vote vote = Vote::kNone;

  friend bool operator==(const SourceVote&, const SourceVote&) = default;
};

/// A statement from the per-source view.
struct FactVote {
  FactId fact = -1;
  Vote vote = Vote::kNone;

  friend bool operator==(const FactVote&, const FactVote&) = default;
};

}  // namespace corrob

#endif  // CORROB_DATA_VOTE_H_
