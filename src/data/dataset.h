#ifndef CORROB_DATA_DATASET_H_
#define CORROB_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/vote.h"

namespace corrob {

/// Immutable sparse source × fact vote matrix — the input to every
/// corroboration algorithm. Built via DatasetBuilder; provides both
/// the per-fact view (who voted on f) and the per-source view (what
/// did s vote on), each sorted by id.
class Dataset {
 public:
  Dataset() = default;

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;

  int32_t num_sources() const { return static_cast<int32_t>(source_names_.size()); }
  int32_t num_facts() const { return static_cast<int32_t>(fact_names_.size()); }
  /// Total number of materialized (non '-') votes.
  int64_t num_votes() const { return num_votes_; }

  const std::string& source_name(SourceId s) const { return source_names_[s]; }
  const std::string& fact_name(FactId f) const { return fact_names_[f]; }

  /// Id lookup by name; NotFound if absent.
  [[nodiscard]] Result<SourceId> FindSource(const std::string& name) const;
  [[nodiscard]] Result<FactId> FindFact(const std::string& name) const;

  /// Votes cast on fact `f`, sorted by source id.
  std::span<const SourceVote> VotesOnFact(FactId f) const {
    return {fact_votes_.data() + fact_offsets_[f],
            fact_offsets_[f + 1] - fact_offsets_[f]};
  }

  /// Votes cast by source `s`, sorted by fact id.
  std::span<const FactVote> VotesBySource(SourceId s) const {
    return {source_votes_.data() + source_offsets_[s],
            source_offsets_[s + 1] - source_offsets_[s]};
  }

  /// The vote of `s` on `f`, or kNone when `s` did not vote on `f`.
  Vote GetVote(SourceId s, FactId f) const;

  /// Number of T / F votes on fact `f`.
  int32_t CountVotes(FactId f, Vote vote) const;

  /// True if every vote on `f` is affirmative (f ∈ F*, paper §3.3).
  /// Facts with no votes at all are not affirmative-only.
  bool IsAffirmativeOnly(FactId f) const;

  /// Canonical signature of fact `f`: its (source, vote) list rendered
  /// as e.g. "0T|2F|4T". Facts with equal signatures form one fact
  /// group (paper §5.1).
  std::string SignatureKey(FactId f) const;

 private:
  friend class DatasetBuilder;

  std::vector<std::string> source_names_;
  std::vector<std::string> fact_names_;
  std::unordered_map<std::string, SourceId> source_index_;
  std::unordered_map<std::string, FactId> fact_index_;

  // CSR layouts for both orientations.
  std::vector<size_t> fact_offsets_;     // size num_facts()+1
  std::vector<SourceVote> fact_votes_;   // sorted by (fact, source)
  std::vector<size_t> source_offsets_;   // size num_sources()+1
  std::vector<FactVote> source_votes_;   // sorted by (source, fact)
  int64_t num_votes_ = 0;
};

/// Accumulates sources, facts and votes, then freezes them into a
/// Dataset. Duplicate (source, fact) votes overwrite the earlier vote
/// (last writer wins), mirroring how a re-crawl updates a listing.
class DatasetBuilder {
 public:
  DatasetBuilder() = default;

  /// Registers a source; returns the existing id if the name is known.
  SourceId AddSource(const std::string& name);

  /// Registers a fact; returns the existing id if the name is known.
  FactId AddFact(const std::string& name);

  /// Records a vote. kNone erases any previous vote for the pair.
  /// Fails on out-of-range ids.
  [[nodiscard]] Status SetVote(SourceId s, FactId f, Vote vote);

  /// Convenience: registers names as needed, then records the vote.
  void SetVoteByName(const std::string& source, const std::string& fact,
                     Vote vote);

  /// The vote currently recorded for (s, f); kNone when unset.
  /// Aborts on out-of-range ids.
  Vote GetVote(SourceId s, FactId f) const;

  int32_t num_sources() const { return static_cast<int32_t>(source_names_.size()); }
  int32_t num_facts() const { return static_cast<int32_t>(fact_names_.size()); }

  /// Freezes into an immutable Dataset. The builder is left empty.
  Dataset Build();

 private:
  std::vector<std::string> source_names_;
  std::vector<std::string> fact_names_;
  std::unordered_map<std::string, SourceId> source_index_;
  std::unordered_map<std::string, FactId> fact_index_;
  // Per fact: source -> vote map kept small and flat.
  std::vector<std::vector<SourceVote>> votes_per_fact_;
};

}  // namespace corrob

#endif  // CORROB_DATA_DATASET_H_
