#include "data/dataset_io.h"

#include "common/csv.h"
#include "common/string_util.h"

namespace corrob {

namespace {

constexpr char kTruthColumn[] = "__truth__";

}  // namespace

Result<LabeledDataset> ParseDatasetCsv(const std::string& text) {
  CORROB_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(text));
  if (doc.rows.empty()) {
    return Status::ParseError("dataset CSV has no header row");
  }
  const auto& header = doc.rows[0];
  if (header.empty() || header[0] != "fact") {
    return Status::ParseError("dataset CSV must start with a 'fact' column");
  }
  bool has_truth = !header.empty() && header.back() == kTruthColumn;
  size_t num_sources = header.size() - 1 - (has_truth ? 1 : 0);
  if (num_sources == 0) {
    return Status::ParseError("dataset CSV has no source columns");
  }

  DatasetBuilder builder;
  for (size_t c = 1; c <= num_sources; ++c) {
    builder.AddSource(header[c]);
  }

  std::vector<bool> truth_labels;
  bool truth_complete = has_truth;
  for (size_t r = 1; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // blank line
    if (row.size() != header.size()) {
      return Status::ParseError("row " + std::to_string(r) + " has " +
                                std::to_string(row.size()) + " cells; header has " +
                                std::to_string(header.size()));
    }
    FactId f = builder.AddFact(row[0]);
    for (size_t c = 1; c <= num_sources; ++c) {
      std::string cell(Trim(row[c]));
      if (cell.empty() || cell == "-") continue;
      if (cell.size() != 1) {
        return Status::ParseError("bad vote cell '" + cell + "' at row " +
                                  std::to_string(r));
      }
      CORROB_ASSIGN_OR_RETURN(Vote vote, VoteFromChar(cell[0]));
      if (vote == Vote::kNone) continue;
      CORROB_RETURN_NOT_OK(builder.SetVote(static_cast<SourceId>(c - 1), f, vote));
    }
    if (has_truth) {
      std::string cell = ToLower(Trim(row.back()));
      if (cell == "true" || cell == "1") {
        truth_labels.push_back(true);
      } else if (cell == "false" || cell == "0") {
        truth_labels.push_back(false);
      } else if (cell == "?") {
        truth_complete = false;
        truth_labels.push_back(false);  // placeholder, dropped below
      } else {
        return Status::ParseError("bad truth cell '" + cell + "' at row " +
                                  std::to_string(r));
      }
    }
  }

  LabeledDataset out;
  out.dataset = builder.Build();
  if (has_truth && truth_complete) {
    out.truth = GroundTruth(std::move(truth_labels));
  }
  return out;
}

Result<LabeledDataset> LoadDatasetCsv(const std::string& path) {
  CORROB_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseDatasetCsv(text);
}

std::string DatasetToCsv(const Dataset& dataset, const GroundTruth* truth) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  header.push_back("fact");
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    header.push_back(dataset.source_name(s));
  }
  if (truth != nullptr) header.push_back(kTruthColumn);
  rows.push_back(std::move(header));

  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    std::vector<std::string> row;
    row.push_back(dataset.fact_name(f));
    std::vector<char> cells(static_cast<size_t>(dataset.num_sources()), '-');
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      cells[static_cast<size_t>(sv.source)] = VoteToChar(sv.vote);
    }
    for (char c : cells) row.emplace_back(1, c);
    if (truth != nullptr) {
      row.push_back(truth->IsTrue(f) ? "true" : "false");
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth* truth) {
  return WriteStringToFile(path, DatasetToCsv(dataset, truth));
}

}  // namespace corrob
