#include "data/dataset_io.h"

#include "common/csv.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace corrob {

namespace {

constexpr char kTruthColumn[] = "__truth__";

/// A fully validated data row, ready to commit into the builder. Rows
/// are validated in their entirety before any mutation so that a
/// lenient skip leaves no partial votes or misaligned truth labels.
struct ParsedRow {
  enum class Truth { kAbsent, kTrue, kFalse, kUnknown };
  const std::string* fact = nullptr;
  std::vector<std::pair<SourceId, Vote>> votes;
  Truth truth = Truth::kAbsent;
};

Result<ParsedRow> ValidateRow(const std::vector<std::string>& row, size_t r,
                              size_t header_size, size_t num_sources,
                              bool has_truth) {
  if (row.size() != header_size) {
    return Status::ParseError("row " + std::to_string(r) + " has " +
                              std::to_string(row.size()) +
                              " cells; header has " +
                              std::to_string(header_size));
  }
  ParsedRow parsed;
  parsed.fact = &row[0];
  for (size_t c = 1; c <= num_sources; ++c) {
    std::string cell(Trim(row[c]));
    if (cell.empty() || cell == "-") continue;
    if (cell.size() != 1) {
      return Status::ParseError("bad vote cell '" + cell + "' at row " +
                                std::to_string(r));
    }
    CORROB_ASSIGN_OR_RETURN(Vote vote, VoteFromChar(cell[0]));
    if (vote == Vote::kNone) continue;
    parsed.votes.emplace_back(static_cast<SourceId>(c - 1), vote);
  }
  if (has_truth) {
    std::string cell = ToLower(Trim(row.back()));
    if (cell == "true" || cell == "1") {
      parsed.truth = ParsedRow::Truth::kTrue;
    } else if (cell == "false" || cell == "0") {
      parsed.truth = ParsedRow::Truth::kFalse;
    } else if (cell == "?") {
      parsed.truth = ParsedRow::Truth::kUnknown;
    } else {
      return Status::ParseError("bad truth cell '" + cell + "' at row " +
                                std::to_string(r));
    }
  }
  return parsed;
}

}  // namespace

std::string ParseReport::ToString() const {
  if (skipped.empty()) {
    return "all " + std::to_string(rows_loaded) + " rows loaded";
  }
  std::string out = "skipped " + std::to_string(skipped.size()) + " of " +
                    std::to_string(rows_seen) + " rows:";
  for (const RowDiagnostic& diagnostic : skipped) {
    out += "\n  row " + std::to_string(diagnostic.row) + ": " +
           diagnostic.message;
  }
  return out;
}

Result<LabeledDataset> ParseDatasetCsv(const std::string& text) {
  return ParseDatasetCsv(text, DatasetCsvOptions{}, nullptr);
}

Result<LabeledDataset> ParseDatasetCsv(const std::string& text,
                                       const DatasetCsvOptions& options,
                                       ParseReport* report) {
  CORROB_TRACE_SPAN("ParseDatasetCsv");
  CORROB_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(text));
  if (doc.rows.empty()) {
    return Status::ParseError("dataset CSV has no header row");
  }
  const auto& header = doc.rows[0];
  if (header.empty() || header[0] != "fact") {
    return Status::ParseError("dataset CSV must start with a 'fact' column");
  }
  bool has_truth = !header.empty() && header.back() == kTruthColumn;
  size_t num_sources = header.size() - 1 - (has_truth ? 1 : 0);
  if (num_sources == 0) {
    return Status::ParseError("dataset CSV has no source columns");
  }

  DatasetBuilder builder;
  for (size_t c = 1; c <= num_sources; ++c) {
    builder.AddSource(header[c]);
  }

  ParseReport local_report;
  std::vector<bool> truth_labels;
  bool truth_complete = has_truth;
  // Poll interval for cooperative cancellation: coarse enough that an
  // unarmed load pays one predictable branch per row, fine enough
  // that a Ctrl-C lands within a few thousand rows.
  constexpr size_t kCancelPollRows = 2048;
  for (size_t r = 1; r < doc.rows.size(); ++r) {
    if (options.cancel != nullptr && r % kCancelPollRows == 0 &&
        options.cancel->cancelled()) {
      return Status::Cancelled("dataset CSV load cancelled after " +
                               std::to_string(local_report.rows_seen) +
                               " rows");
    }
    const auto& row = doc.rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // blank line
    ++local_report.rows_seen;
    auto parsed =
        ValidateRow(row, r, header.size(), num_sources, has_truth);
    if (!parsed.ok()) {
      if (!options.lenient) return parsed.status();
      local_report.skipped.push_back({r, parsed.status().message()});
      continue;
    }
    const ParsedRow& valid = parsed.ValueOrDie();
    FactId f = builder.AddFact(*valid.fact);
    for (const auto& [source, vote] : valid.votes) {
      CORROB_RETURN_NOT_OK(builder.SetVote(source, f, vote));
    }
    switch (valid.truth) {
      case ParsedRow::Truth::kAbsent:
        break;
      case ParsedRow::Truth::kTrue:
        truth_labels.push_back(true);
        break;
      case ParsedRow::Truth::kFalse:
        truth_labels.push_back(false);
        break;
      case ParsedRow::Truth::kUnknown:
        truth_complete = false;
        truth_labels.push_back(false);  // placeholder, dropped below
        break;
    }
    ++local_report.rows_loaded;
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("corrob.csv.rows_loaded")
      ->Add(local_report.rows_loaded);
  metrics.GetCounter("corrob.csv.rows_skipped")
      ->Add(static_cast<int64_t>(local_report.skipped.size()));
  if (report != nullptr) *report = std::move(local_report);
  LabeledDataset out;
  out.dataset = builder.Build();
  if (has_truth && truth_complete) {
    out.truth = GroundTruth(std::move(truth_labels));
  }
  return out;
}

Result<LabeledDataset> LoadDatasetCsv(const std::string& path) {
  return LoadDatasetCsv(path, DatasetCsvOptions{}, nullptr);
}

Result<LabeledDataset> LoadDatasetCsv(const std::string& path,
                                      const DatasetCsvOptions& options,
                                      ParseReport* report) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  auto parsed = ParseDatasetCsv(text.ValueOrDie(), options, report);
  if (!parsed.ok()) {
    // Parse messages carry row context; add which file it was.
    return Status(parsed.status().code(),
                  parsed.status().message() + " (in " + path + ")");
  }
  return parsed;
}

std::string DatasetToCsv(const Dataset& dataset, const GroundTruth* truth) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header;
  header.push_back("fact");
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    header.push_back(dataset.source_name(s));
  }
  if (truth != nullptr) header.push_back(kTruthColumn);
  rows.push_back(std::move(header));

  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    std::vector<std::string> row;
    row.push_back(dataset.fact_name(f));
    std::vector<char> cells(static_cast<size_t>(dataset.num_sources()), '-');
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      cells[static_cast<size_t>(sv.source)] = VoteToChar(sv.vote);
    }
    for (char c : cells) row.emplace_back(1, c);
    if (truth != nullptr) {
      row.push_back(truth->IsTrue(f) ? "true" : "false");
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth* truth) {
  std::string csv = DatasetToCsv(dataset, truth);
  return Retry(DefaultIoRetryPolicy(),
               [&] { return WriteFileAtomic(path, csv); });
}

}  // namespace corrob
