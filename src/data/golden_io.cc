#include "data/golden_io.h"

#include <unordered_set>

#include "common/csv.h"
#include "common/retry.h"
#include "common/string_util.h"

namespace corrob {

Result<GoldenSet> ParseGoldenCsv(const std::string& text,
                                 const Dataset& dataset) {
  CORROB_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(text));
  if (doc.rows.empty() ||
      doc.rows[0] != std::vector<std::string>{"fact", "label"}) {
    return Status::ParseError("golden CSV must start with: fact,label");
  }
  GoldenSet golden;
  std::unordered_set<FactId> seen;
  for (size_t r = 1; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // blank line
    if (row.size() != 2) {
      return Status::ParseError("golden row " + std::to_string(r) +
                                " must have 2 cells");
    }
    CORROB_ASSIGN_OR_RETURN(FactId fact, dataset.FindFact(row[0]));
    if (!seen.insert(fact).second) {
      return Status::AlreadyExists("duplicate golden fact '" + row[0] + "'");
    }
    std::string label = ToLower(Trim(row[1]));
    if (label == "true" || label == "1") {
      golden.Add(fact, true);
    } else if (label == "false" || label == "0") {
      golden.Add(fact, false);
    } else {
      return Status::ParseError("bad golden label '" + row[1] +
                                "' at row " + std::to_string(r));
    }
  }
  return golden;
}

Result<GoldenSet> LoadGoldenCsv(const std::string& path,
                                const Dataset& dataset) {
  // ReadFileToString distinguishes a missing file (NotFound) from an
  // unreadable one (IoError) and already names the path.
  CORROB_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto parsed = ParseGoldenCsv(text, dataset);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  parsed.status().message() + " (in " + path + ")");
  }
  return parsed;
}

std::string GoldenToCsv(const GoldenSet& golden, const Dataset& dataset) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"fact", "label"});
  for (size_t i = 0; i < golden.size(); ++i) {
    rows.push_back({dataset.fact_name(golden.fact(i)),
                    golden.label(i) ? "true" : "false"});
  }
  return WriteCsv(rows);
}

Status SaveGoldenCsv(const std::string& path, const GoldenSet& golden,
                     const Dataset& dataset) {
  std::string csv = GoldenToCsv(golden, dataset);
  return Retry(DefaultIoRetryPolicy(),
               [&] { return WriteFileAtomic(path, csv); });
}

}  // namespace corrob
