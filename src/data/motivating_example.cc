#include "data/motivating_example.h"

#include "common/logging.h"

namespace corrob {

MotivatingExample MakeMotivatingExample() {
  // Table 1, transcribed row by row. '-' means no vote.
  //        s1   s2   s3   s4   s5   truth
  // r1      -    T    -    T    -   true
  // r2      T    T    -    T    T   true
  // r3      T    -    T    -    T   true
  // r4      -    -    -    T    T   false
  // r5      T    -    -    T    -   false
  // r6      -    -    F    T    -   false
  // r7      -    T    -    T    T   true
  // r8      -    T    -    T    T   true
  // r9      -    -    T    -    T   true
  // r10     -    -    -    T    T   false
  // r11     -    -    T    T    T   true
  // r12     -    F    F    T    -   false
  static constexpr const char* kRows[12] = {
      "-T-T-", "TT-TT", "T-T-T", "---TT", "T--T-", "--FT-",
      "-T-TT", "-T-TT", "--T-T", "---TT", "--TTT", "-FFT-",
  };
  static constexpr bool kTruth[12] = {true, true,  true,  false, false, false,
                                      true, true,  true,  false, true,  false};

  DatasetBuilder builder;
  for (int s = 1; s <= 5; ++s) builder.AddSource("s" + std::to_string(s));
  for (int r = 1; r <= 12; ++r) builder.AddFact("r" + std::to_string(r));

  for (FactId f = 0; f < 12; ++f) {
    const char* row = kRows[f];
    for (SourceId s = 0; s < 5; ++s) {
      char c = row[s];
      if (c == 'T') {
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kTrue));
      } else if (c == 'F') {
        CORROB_CHECK_OK(builder.SetVote(s, f, Vote::kFalse));
      }
    }
  }

  MotivatingExample example;
  example.dataset = builder.Build();
  example.truth = GroundTruth(std::vector<bool>(kTruth, kTruth + 12));
  return example;
}

}  // namespace corrob
