#ifndef CORROB_DATA_DATASET_STATS_H_
#define CORROB_DATA_DATASET_STATS_H_

#include <vector>

#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// Descriptive statistics of a dataset's sources — the quantities the
/// paper reports in Table 3.
struct SourceStats {
  /// coverage[s]: fraction of all facts source s casts any vote on.
  std::vector<double> coverage;
  /// overlap[s1][s2]: Jaccard overlap |V(s1) ∩ V(s2)| / |V(s1) ∪ V(s2)|
  /// of the fact sets the two sources vote on (1.0 on the diagonal,
  /// 0.0 when both sources cast no votes).
  std::vector<std::vector<double>> overlap;
};

/// Computes coverage and pairwise overlap.
SourceStats ComputeSourceStats(const Dataset& dataset);

/// Accuracy of each source over a golden set: the fraction of its
/// votes on golden facts that agree with the golden label (a T vote on
/// a true fact or an F vote on a false fact is correct). Sources with
/// no votes on golden facts get `no_vote_value` (default 0, mirroring
/// an unknown source).
std::vector<double> SourceAccuracyOnGolden(const Dataset& dataset,
                                           const GoldenSet& golden,
                                           double no_vote_value = 0.0);

/// Count of F votes cast by each source over the whole dataset
/// (paper §6.2.1 reports 10/256/425 for 3 of the 6 sources).
std::vector<int64_t> CountFalseVotesBySource(const Dataset& dataset);

/// Number of facts with at least one F vote.
int64_t CountFactsWithFalseVotes(const Dataset& dataset);

/// Fraction of facts whose votes are all affirmative (|F*| / |F|).
double AffirmativeOnlyFraction(const Dataset& dataset);

}  // namespace corrob

#endif  // CORROB_DATA_DATASET_STATS_H_
