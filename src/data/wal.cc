#include "data/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace corrob {
namespace {

constexpr std::string_view kSegmentMagic = "CORROBWL";
constexpr uint32_t kSegmentVersion = 2;
constexpr std::string_view kSnapshotMagic = "CORROBWS";
constexpr uint32_t kSnapshotVersion = 2;
// magic + u32 version.
constexpr size_t kSegmentHeaderBytes = kSegmentMagic.size() + 4;
// u8 type + u32 payload length.
constexpr size_t kRecordHeaderBytes = 5;
// u32 CRC.
constexpr size_t kRecordTrailerBytes = 4;
// Type byte of a batch record: a count-prefixed run of mutation
// sub-records under one CRC. Deliberately not a WalRecordType —
// recovery expands a batch into its constituent records, so no
// WalRecord ever carries this type.
constexpr uint8_t kBatchTypeByte = 5;
// A vote delta is two names and a vote; anything near this bound is
// a corrupt length field, not a record.
constexpr size_t kMaxRecordPayload = 16 * 1024 * 1024;

constexpr std::string_view kSnapshotFileName = "snapshot.snap";

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void PutLenString(std::string* out, std::string_view text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  out->append(text);
}

/// Cursor over a record payload; all reads are bounds-checked.
class PayloadCursor {
 public:
  explicit PayloadCursor(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* out) {
    if (offset_ + 1 > bytes_.size()) return false;
    *out = static_cast<uint8_t>(bytes_[offset_]);
    offset_ += 1;
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (offset_ + 4 > bytes_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(
                   static_cast<uint8_t>(bytes_[offset_ + i]))
               << (8 * i);
    }
    offset_ += 4;
    *out = value;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (offset_ + 8 > bytes_.size()) return false;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(
                   static_cast<uint8_t>(bytes_[offset_ + i]))
               << (8 * i);
    }
    offset_ += 8;
    *out = value;
    return true;
  }

  bool ReadLenString(std::string* out) {
    uint32_t length = 0;
    if (!ReadU32(&length)) return false;
    if (offset_ + length > bytes_.size()) return false;
    out->assign(bytes_.substr(offset_, length));
    offset_ += length;
    return true;
  }

  bool AtEnd() const { return offset_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t offset_ = 0;
};

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  switch (record.type) {
    case WalRecordType::kAddSource:
      PutLenString(&payload, record.source);
      break;
    case WalRecordType::kAddVote:
      PutLenString(&payload, record.source);
      PutLenString(&payload, record.fact);
      PutU8(&payload, static_cast<uint8_t>(VoteToChar(record.vote)));
      break;
    case WalRecordType::kRetractVote:
      PutLenString(&payload, record.source);
      PutLenString(&payload, record.fact);
      break;
    case WalRecordType::kSnapshotMarker:
      PutU32(&payload, record.snapshot_crc);
      PutU64(&payload, record.records_folded);
      PutU64(&payload, record.compaction_seq);
      break;
  }
  return payload;
}

/// Frames `payload` under `type_byte`: header (type + length), the
/// payload, then a CRC over header + payload — the length bytes are
/// inside the CRC, so a flipped length can never silently re-frame
/// the rest of the segment.
std::string FrameRecord(uint8_t type_byte, std::string_view payload) {
  std::string framed;
  framed.reserve(kRecordHeaderBytes + payload.size() + kRecordTrailerBytes);
  PutU8(&framed, type_byte);
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  framed.append(payload);
  PutU32(&framed, ComputeCrc32(framed));
  return framed;
}

/// Decodes a CRC-valid payload. Failure here is version skew or a
/// writer bug, never a torn tail — the CRC already matched — so the
/// caller reports it as corruption regardless of position.
Result<WalRecord> DecodePayload(uint8_t type_byte, std::string_view payload) {
  WalRecord record;
  PayloadCursor cursor(payload);
  switch (type_byte) {
    case static_cast<uint8_t>(WalRecordType::kAddSource): {
      record.type = WalRecordType::kAddSource;
      if (!cursor.ReadLenString(&record.source)) {
        return Status::ParseError("wal: short add-source payload");
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kAddVote): {
      record.type = WalRecordType::kAddVote;
      uint8_t vote_char = 0;
      if (!cursor.ReadLenString(&record.source) ||
          !cursor.ReadLenString(&record.fact) ||
          !cursor.ReadU8(&vote_char)) {
        return Status::ParseError("wal: short add-vote payload");
      }
      CORROB_ASSIGN_OR_RETURN(record.vote,
                              VoteFromChar(static_cast<char>(vote_char)));
      if (record.vote == Vote::kNone) {
        return Status::ParseError(
            "wal: add-vote carries '-'; retract-vote erases votes");
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kRetractVote): {
      record.type = WalRecordType::kRetractVote;
      if (!cursor.ReadLenString(&record.source) ||
          !cursor.ReadLenString(&record.fact)) {
        return Status::ParseError("wal: short retract-vote payload");
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kSnapshotMarker): {
      record.type = WalRecordType::kSnapshotMarker;
      if (!cursor.ReadU32(&record.snapshot_crc) ||
          !cursor.ReadU64(&record.records_folded) ||
          !cursor.ReadU64(&record.compaction_seq)) {
        return Status::ParseError("wal: short snapshot-marker payload");
      }
      break;
    }
    default:
      return Status::ParseError("wal: unknown record type " +
                                std::to_string(type_byte));
  }
  if (!cursor.AtEnd()) {
    return Status::ParseError("wal: trailing bytes after " +
                              std::string(WalRecordTypeName(record.type)) +
                              " payload");
  }
  return record;
}

/// Expands one CRC-valid record payload into `out`: a mutation or
/// marker payload appends one record, a batch payload appends each of
/// its sub-records. Like DecodePayload, failure here is corruption or
/// version skew, never a torn tail.
Status AppendDecodedRecords(uint8_t type_byte, std::string_view payload,
                            std::vector<WalRecord>* out) {
  if (type_byte != kBatchTypeByte) {
    CORROB_ASSIGN_OR_RETURN(WalRecord record,
                            DecodePayload(type_byte, payload));
    out->push_back(std::move(record));
    return Status::OK();
  }
  PayloadCursor cursor(payload);
  uint32_t count = 0;
  if (!cursor.ReadU32(&count) || count == 0) {
    return Status::ParseError("wal: empty or short batch record");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t sub_type = 0;
    std::string sub_payload;
    if (!cursor.ReadU8(&sub_type) || !cursor.ReadLenString(&sub_payload)) {
      return Status::ParseError("wal: short batch record");
    }
    if (sub_type == kBatchTypeByte ||
        sub_type == static_cast<uint8_t>(WalRecordType::kSnapshotMarker)) {
      return Status::ParseError(
          "wal: batch record may hold only mutation sub-records");
    }
    CORROB_ASSIGN_OR_RETURN(WalRecord record,
                            DecodePayload(sub_type, sub_payload));
    out->push_back(std::move(record));
  }
  if (!cursor.AtEnd()) {
    return Status::ParseError("wal: trailing bytes after batch payload");
  }
  return Status::OK();
}

/// Outcome of scanning one segment's bytes.
struct SegmentScan {
  std::vector<WalRecord> records;
  /// Byte offset just past the last intact record (or 0 when even the
  /// header is incomplete).
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes that do not decode — a torn tail when
  /// this is the final segment, corruption otherwise.
  bool torn = false;
};

/// Scans segment bytes up to the first undecodable record. Returns
/// ParseError only for damage that can never be a torn tail (full
/// header with wrong magic/version, or a CRC-valid record that fails
/// to decode); framing-level damage is reported via `torn` and left
/// for the caller to classify by segment position.
Result<SegmentScan> ScanSegmentBytes(std::string_view contents,
                                     const std::string& path) {
  SegmentScan scan;
  if (contents.size() < kSegmentHeaderBytes) {
    scan.torn = !contents.empty();
    return scan;
  }
  if (contents.substr(0, kSegmentMagic.size()) != kSegmentMagic) {
    return Status::ParseError("wal: bad segment magic in " + path);
  }
  PayloadCursor header(contents.substr(kSegmentMagic.size(), 4));
  uint32_t version = 0;
  (void)header.ReadU32(&version);  // lint: discard-ok: 4 bytes are present
  if (version != kSegmentVersion) {
    return Status::FailedPrecondition(
        "wal: segment version " + std::to_string(version) + " in " + path +
        "; this build reads version " + std::to_string(kSegmentVersion));
  }
  size_t offset = kSegmentHeaderBytes;
  scan.valid_bytes = offset;
  while (offset < contents.size()) {
    if (offset + kRecordHeaderBytes > contents.size()) {
      scan.torn = true;
      return scan;
    }
    const uint8_t type_byte = static_cast<uint8_t>(contents[offset]);
    PayloadCursor length_cursor(contents.substr(offset + 1, 4));
    uint32_t payload_length = 0;
    (void)length_cursor.ReadU32(&payload_length);  // lint: discard-ok: 4 bytes are present
    if (payload_length > kMaxRecordPayload) {
      scan.torn = true;
      return scan;
    }
    const size_t record_end =
        offset + kRecordHeaderBytes + payload_length + kRecordTrailerBytes;
    if (record_end > contents.size()) {
      scan.torn = true;
      return scan;
    }
    const std::string_view payload =
        contents.substr(offset + kRecordHeaderBytes, payload_length);
    PayloadCursor crc_cursor(
        contents.substr(offset + kRecordHeaderBytes + payload_length, 4));
    uint32_t stored_crc = 0;
    (void)crc_cursor.ReadU32(&stored_crc);  // lint: discard-ok: 4 bytes are present
    // The CRC spans header + payload, so the length field itself is
    // covered: a flipped length fails here instead of silently
    // re-framing everything after it.
    if (ComputeCrc32(contents.substr(
            offset, kRecordHeaderBytes + payload_length)) != stored_crc) {
      scan.torn = true;
      return scan;
    }
    CORROB_RETURN_NOT_OK(
        AppendDecodedRecords(type_byte, payload, &scan.records));
    offset = record_end;
    scan.valid_bytes = offset;
  }
  return scan;
}

/// True when a complete, CRC-valid record starts anywhere in
/// [from, contents.size()). Recovery uses this to tell mid-segment
/// corruption from a torn tail: a genuine kill -9 leaves at most one
/// partial record at the very end, so any intact record past the
/// damage point means acked data follows it and truncating would
/// silently drop that data. The header sanity checks (known type
/// byte, plausible length) reject almost every offset before the CRC
/// is computed, so the resync is cheap on real segments.
bool HasIntactRecordAfter(std::string_view contents, size_t from) {
  for (size_t offset = from;
       offset + kRecordHeaderBytes + kRecordTrailerBytes <= contents.size();
       ++offset) {
    const uint8_t type_byte = static_cast<uint8_t>(contents[offset]);
    if (type_byte < 1 || type_byte > kBatchTypeByte) continue;
    PayloadCursor length_cursor(contents.substr(offset + 1, 4));
    uint32_t payload_length = 0;
    (void)length_cursor.ReadU32(&payload_length);  // lint: discard-ok: 4 bytes are present
    if (payload_length > kMaxRecordPayload) continue;
    const size_t record_end =
        offset + kRecordHeaderBytes + payload_length + kRecordTrailerBytes;
    if (record_end > contents.size()) continue;
    PayloadCursor crc_cursor(
        contents.substr(offset + kRecordHeaderBytes + payload_length, 4));
    uint32_t stored_crc = 0;
    (void)crc_cursor.ReadU32(&stored_crc);  // lint: discard-ok: 4 bytes are present
    if (ComputeCrc32(contents.substr(
            offset, kRecordHeaderBytes + payload_length)) == stored_crc) {
      return true;
    }
  }
  return false;
}

/// Segment indices present in `dir`, sorted ascending. NotFound when
/// the directory itself is missing.
Result<std::vector<int64_t>> ListSegments(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("wal: no such directory: " + dir);
    }
    return Status::IoError("wal: cannot open directory: " + dir + ": " +
                           std::strerror(errno));
  }
  std::vector<int64_t> indices;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    // Strict "wal-<digits>.log" match; anything else in the directory
    // (snapshot, temp files, stray editors' droppings) is ignored.
    if (name.size() < 9 || name.substr(0, 4) != "wal-" ||
        name.substr(name.size() - 4) != ".log") {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    // from_chars instead of stoll: a stray all-digits name longer
    // than int64 must be skipped like any other foreign file, not
    // throw out_of_range through startup recovery.
    int64_t index = 0;
    const auto [end, error] =
        std::from_chars(digits.data(), digits.data() + digits.size(), index);
    if (error != std::errc() || end != digits.data() + digits.size()) {
      continue;
    }
    indices.push_back(index);
  }
  ::closedir(handle);
  std::sort(indices.begin(), indices.end());
  return indices;
}

/// Loads and verifies snapshot.snap. NotFound when absent.
Status LoadSnapshot(const std::string& dir, WalRecovery* out) {
  const std::string path = dir + "/" + std::string(kSnapshotFileName);
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& blob = contents.ValueOrDie();
  // magic + u32 version + u64 compaction seq + u64 payload size.
  const size_t header_bytes = kSnapshotMagic.size() + 4 + 8 + 8;
  if (blob.size() < header_bytes) {
    return Status::ParseError("wal: truncated snapshot header: " + path);
  }
  if (std::string_view(blob).substr(0, kSnapshotMagic.size()) !=
      kSnapshotMagic) {
    return Status::ParseError("wal: bad snapshot magic: " + path);
  }
  PayloadCursor cursor(
      std::string_view(blob).substr(kSnapshotMagic.size()));
  uint32_t version = 0;
  uint64_t compaction_seq = 0;
  uint64_t payload_size = 0;
  (void)cursor.ReadU32(&version);        // lint: discard-ok: bounds checked above
  (void)cursor.ReadU64(&compaction_seq); // lint: discard-ok: bounds checked above
  (void)cursor.ReadU64(&payload_size);   // lint: discard-ok: bounds checked above
  if (version != kSnapshotVersion) {
    return Status::FailedPrecondition(
        "wal: snapshot version " + std::to_string(version) + " in " + path +
        "; this build reads version " + std::to_string(kSnapshotVersion));
  }
  if (blob.size() != header_bytes + payload_size + 4) {
    return Status::ParseError("wal: snapshot size mismatch: " + path);
  }
  const std::string_view payload =
      std::string_view(blob).substr(header_bytes, payload_size);
  PayloadCursor crc_cursor(
      std::string_view(blob).substr(header_bytes + payload_size, 4));
  uint32_t stored_crc = 0;
  (void)crc_cursor.ReadU32(&stored_crc);  // lint: discard-ok: bounds checked above
  const uint32_t computed = ComputeCrc32(payload);
  if (computed != stored_crc) {
    return Status::ParseError("wal: snapshot CRC mismatch: " + path);
  }
  out->has_snapshot = true;
  out->snapshot_csv.assign(payload);
  out->snapshot_crc = computed;
  out->snapshot_seq = compaction_seq;
  return Status::OK();
}

/// Creates each component of `dir` that does not exist yet.
Status MakeDirs(const std::string& dir) {
  std::string prefix;
  size_t start = 0;
  while (start <= dir.size()) {
    size_t slash = dir.find('/', start);
    if (slash == std::string::npos) slash = dir.size();
    prefix = dir.substr(0, slash);
    start = slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("wal: cannot create directory: " + prefix +
                             ": " + std::strerror(errno));
    }
  }
  return Status::OK();
}

/// Shared scan behind InspectWal (repair=false) and WalWriter::Open
/// (repair=true). In repair mode a torn tail in the final segment is
/// physically truncated so the segment ends on a record boundary.
Status ScanWal(const std::string& dir, bool repair, WalRecovery* out) {
  CORROB_FAILPOINT("wal.replay");
  *out = WalRecovery{};
  Status snapshot_status = LoadSnapshot(dir, out);
  if (!snapshot_status.ok() &&
      snapshot_status.code() != StatusCode::kNotFound) {
    return snapshot_status;
  }
  CORROB_ASSIGN_OR_RETURN(std::vector<int64_t> indices, ListSegments(dir));
  out->segments_scanned = static_cast<int64_t>(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const bool is_final = i + 1 == indices.size();
    const std::string path =
        dir + "/" + wal_internal::SegmentFileName(indices[i]);
    CORROB_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
    CORROB_ASSIGN_OR_RETURN(SegmentScan scan,
                            ScanSegmentBytes(contents, path));
    if (scan.torn) {
      if (!is_final) {
        return Status::ParseError(
            "wal: corrupt record mid-log in non-final segment " + path);
      }
      // Resync before classifying: if any intact record decodes past
      // the damage, acked data follows it — that is mid-segment
      // corruption (bit rot, an edited file), and truncating here
      // would silently drop those acked records. A genuine kill -9
      // tail is at most one partial record with nothing after it.
      if (HasIntactRecordAfter(contents, scan.valid_bytes + 1)) {
        return Status::ParseError(
            "wal: damaged record followed by intact records in " + path +
            " (mid-segment corruption, not a torn tail)");
      }
      out->tail_truncated = true;
      out->tail_bytes_dropped = contents.size() - scan.valid_bytes;
      // The single torn-tail WARNING the crash-soak job greps for:
      // a partial final record after kill -9 is expected damage, not
      // an error.
      CORROB_LOG_WARNING << "wal: torn tail in " << path << ": dropped "
                         << out->tail_bytes_dropped
                         << " byte(s) of partial final record"
                         << (repair ? " (truncated)" : " (inspect only)");
      if (repair) {
        // A tail shorter than the header means the segment file was
        // born in a crashed rotation; empty it so OpenSegment writes
        // a fresh header.
        const uint64_t keep =
            scan.valid_bytes < kSegmentHeaderBytes ? 0 : scan.valid_bytes;
        if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0) {
          return Status::IoError("wal: cannot truncate torn tail: " + path +
                                 ": " + std::strerror(errno));
        }
      }
    }
    for (WalRecord& record : scan.records) {
      if (record.type == WalRecordType::kSnapshotMarker) {
        if (!out->has_snapshot) {
          return Status::ParseError(
              "wal: snapshot marker in " + path +
              " but no snapshot.snap; the log cannot be replayed alone");
        }
        if (record.compaction_seq < out->snapshot_seq) {
          // Residue of a superseded compaction: the crash (or unlink
          // failure) left this marker's segment behind after a later
          // compaction published its snapshot. Its records are
          // already folded in; replay is idempotent, so tolerate it.
          ++out->stale_markers;
        } else if (record.compaction_seq > out->snapshot_seq) {
          return Status::ParseError(
              "wal: snapshot marker in " + path +
              " carries compaction seq " +
              std::to_string(record.compaction_seq) +
              " but snapshot.snap is at seq " +
              std::to_string(out->snapshot_seq) +
              " (snapshot was rolled back or replaced)");
        } else if (record.snapshot_crc != out->snapshot_crc) {
          return Status::ParseError(
              "wal: snapshot marker CRC does not match snapshot.snap in " +
              path + " (mismatched snapshot/log pair)");
        }
      }
      out->records.push_back(std::move(record));
    }
  }
  return Status::OK();
}

}  // namespace

std::string_view WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kAddSource:
      return "add-source";
    case WalRecordType::kAddVote:
      return "add-vote";
    case WalRecordType::kRetractVote:
      return "retract-vote";
    case WalRecordType::kSnapshotMarker:
      return "snapshot-marker";
  }
  return "unknown";
}

WalRecord MakeAddSource(std::string source) {
  WalRecord record;
  record.type = WalRecordType::kAddSource;
  record.source = std::move(source);
  return record;
}

WalRecord MakeAddVote(std::string source, std::string fact, Vote vote) {
  WalRecord record;
  record.type = WalRecordType::kAddVote;
  record.source = std::move(source);
  record.fact = std::move(fact);
  record.vote = vote;
  return record;
}

WalRecord MakeRetractVote(std::string source, std::string fact) {
  WalRecord record;
  record.type = WalRecordType::kRetractVote;
  record.source = std::move(source);
  record.fact = std::move(fact);
  return record;
}

Result<WalFsyncPolicy> ParseWalFsyncPolicy(std::string_view text) {
  if (text == "always") return WalFsyncPolicy::kAlways;
  if (text == "interval") return WalFsyncPolicy::kInterval;
  if (text == "never") return WalFsyncPolicy::kNever;
  return Status::InvalidArgument("unknown wal fsync policy '" +
                                 std::string(text) +
                                 "' (want always|interval|never)");
}

std::string_view WalFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kAlways:
      return "always";
    case WalFsyncPolicy::kInterval:
      return "interval";
    case WalFsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

Status ValidateWalOptions(const WalOptions& options) {
  if (options.fsync_interval_records < 1) {
    return Status::InvalidArgument(
        "wal fsync_interval_records must be >= 1, got " +
        std::to_string(options.fsync_interval_records));
  }
  if (options.segment_bytes < 1) {
    return Status::InvalidArgument("wal segment_bytes must be >= 1, got " +
                                   std::to_string(options.segment_bytes));
  }
  return Status::OK();
}

std::vector<WalRecord> WalRecovery::Mutations() const {
  std::vector<WalRecord> mutations;
  mutations.reserve(records.size());
  for (const WalRecord& record : records) {
    if (record.type != WalRecordType::kSnapshotMarker) {
      mutations.push_back(record);
    }
  }
  return mutations;
}

Result<WalRecovery> InspectWal(const std::string& dir) {
  WalRecovery recovery;
  CORROB_RETURN_NOT_OK(ScanWal(dir, /*repair=*/false, &recovery));
  return recovery;
}

namespace wal_internal {

std::string EncodeRecord(const WalRecord& record) {
  return FrameRecord(static_cast<uint8_t>(record.type),
                     EncodePayload(record));
}

std::string EncodeBatchRecord(std::span<const WalRecord> records) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(records.size()));
  for (const WalRecord& record : records) {
    PutU8(&payload, static_cast<uint8_t>(record.type));
    PutLenString(&payload, EncodePayload(record));
  }
  return FrameRecord(kBatchTypeByte, payload);
}

std::string SegmentHeader() {
  std::string header(kSegmentMagic);
  PutU32(&header, kSegmentVersion);
  return header;
}

std::string SegmentFileName(int64_t index) {
  std::string digits = std::to_string(index);
  while (digits.size() < 6) digits.insert(digits.begin(), '0');
  return "wal-" + digits + ".log";
}

}  // namespace wal_internal

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : dir_(std::move(other.dir_)),
      options_(other.options_),
      fd_(other.fd_),
      segment_index_(other.segment_index_),
      segment_bytes_written_(other.segment_bytes_written_),
      records_appended_(other.records_appended_),
      records_since_sync_(other.records_since_sync_),
      compaction_seq_(other.compaction_seq_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    CloseActive();
    dir_ = std::move(other.dir_);
    options_ = other.options_;
    fd_ = other.fd_;
    segment_index_ = other.segment_index_;
    segment_bytes_written_ = other.segment_bytes_written_;
    records_appended_ = other.records_appended_;
    records_since_sync_ = other.records_since_sync_;
    compaction_seq_ = other.compaction_seq_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() { CloseActive(); }

void WalWriter::CloseActive() {
  if (fd_ < 0) return;
  if (options_.fsync_policy != WalFsyncPolicy::kNever &&
      records_since_sync_ > 0) {
    // Best-effort: a close-time fsync failure has no caller to report
    // to; the next recovery truncates whatever did not land.
    (void)::fsync(fd_);  // lint: discard-ok: best-effort close-time flush
  }
  (void)::close(fd_);  // lint: discard-ok: destructor has no error channel
  fd_ = -1;
}

Status WalWriter::OpenSegment(int64_t index, bool truncate) {
  CloseActive();
  const std::string path = dir_ + "/" + wal_internal::SegmentFileName(index);
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IoError("wal: cannot open segment: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat info;
  if (::fstat(fd_, &info) != 0) {
    return Status::IoError("wal: cannot stat segment: " + path + ": " +
                           std::strerror(errno));
  }
  segment_index_ = index;
  segment_bytes_written_ = static_cast<int64_t>(info.st_size);
  records_since_sync_ = 0;
  if (segment_bytes_written_ == 0) {
    CORROB_RETURN_NOT_OK(WriteBytes(wal_internal::SegmentHeader()));
    if (options_.fsync_policy != WalFsyncPolicy::kNever) {
      if (::fsync(fd_) != 0) {
        return Status::IoError("wal: fsync failed on fresh segment: " + path +
                               ": " + std::strerror(errno));
      }
      // Make the new directory entry itself durable; without this a
      // crash can forget the file existed even though its bytes were
      // synced.
      int dir_fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
      if (dir_fd >= 0) {
        (void)::fsync(dir_fd);  // lint: discard-ok: best-effort dir sync
        (void)::close(dir_fd);  // lint: discard-ok: read-only fd
      }
    }
  }
  return Status::OK();
}

Status WalWriter::WriteBytes(std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(
          "wal: write failed on segment " +
          wal_internal::SegmentFileName(segment_index_) + ": " +
          std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  segment_bytes_written_ += static_cast<int64_t>(bytes.size());
  return Status::OK();
}

Status WalWriter::Sync() {
  CORROB_FAILPOINT("wal.fsync");
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal: Sync on a closed writer");
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError("wal: fsync failed on segment " +
                           wal_internal::SegmentFileName(segment_index_) +
                           ": " + std::strerror(errno));
  }
  records_since_sync_ = 0;
  return Status::OK();
}

Status WalWriter::MaybeSync() {
  switch (options_.fsync_policy) {
    case WalFsyncPolicy::kAlways:
      return Sync();
    case WalFsyncPolicy::kInterval:
      if (records_since_sync_ >= options_.fsync_interval_records) {
        return Sync();
      }
      return Status::OK();
    case WalFsyncPolicy::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Rotate() {
  CORROB_FAILPOINT("wal.rotate");
  if (options_.fsync_policy != WalFsyncPolicy::kNever &&
      records_since_sync_ > 0) {
    CORROB_RETURN_NOT_OK(Sync());
  }
  return OpenSegment(segment_index_ + 1, /*truncate=*/false);
}

Status WalWriter::Append(const WalRecord& record) {
  CORROB_FAILPOINT("wal.append");
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal: Append on a closed writer");
  }
  if (segment_bytes_written_ >= options_.segment_bytes) {
    CORROB_RETURN_NOT_OK(Rotate());
  }
  CORROB_RETURN_NOT_OK(WriteBytes(wal_internal::EncodeRecord(record)));
  ++records_appended_;
  ++records_since_sync_;
  return MaybeSync();
}

Status WalWriter::AppendBatch(std::span<const WalRecord> records) {
  CORROB_FAILPOINT("wal.append");
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal: AppendBatch on a closed writer");
  }
  if (records.empty()) return Status::OK();
  for (const WalRecord& record : records) {
    if (record.type == WalRecordType::kSnapshotMarker) {
      return Status::InvalidArgument(
          "wal: AppendBatch takes mutation records only; markers are "
          "written by Compact");
    }
  }
  if (segment_bytes_written_ >= options_.segment_bytes) {
    CORROB_RETURN_NOT_OK(Rotate());
  }
  // One frame, one CRC, at most one fsync: the batch is the
  // durability unit, so replay can never surface a strict prefix of
  // it. A lone record keeps the cheaper single-record framing — it is
  // already atomic on its own.
  const std::string framed =
      records.size() == 1 ? wal_internal::EncodeRecord(records.front())
                          : wal_internal::EncodeBatchRecord(records);
  const int64_t pre_bytes = segment_bytes_written_;
  const int64_t pre_since_sync = records_since_sync_;
  Status written = WriteBytes(framed);
  if (written.ok()) {
    records_appended_ += static_cast<int64_t>(records.size());
    records_since_sync_ += static_cast<int64_t>(records.size());
    written = MaybeSync();
  }
  if (!written.ok()) {
    // Roll the frame back so a NACKed batch leaves no trace for a
    // later replay. If even the rollback fails, the frame stays
    // behind — still all-or-nothing (one CRC unit: replay applies the
    // whole batch or truncates it as a torn tail), but it may become
    // durable despite the NACK; the caller's read-only degradation
    // keeps that indeterminacy from compounding.
    if (::ftruncate(fd_, static_cast<off_t>(pre_bytes)) == 0) {
      if (segment_bytes_written_ != pre_bytes) {
        // The write itself landed (the fsync failed): undo its
        // accounting along with its bytes.
        records_appended_ -= static_cast<int64_t>(records.size());
      }
      segment_bytes_written_ = pre_bytes;
      records_since_sync_ = pre_since_sync;
    } else {
      CORROB_LOG_WARNING
          << "wal: cannot roll back failed batch append on segment "
          << wal_internal::SegmentFileName(segment_index_) << ": "
          << std::strerror(errno)
          << " (the frame is atomic but may become durable despite the "
             "NACK)";
    }
  }
  return written;
}

Status WalWriter::Compact(std::string_view dataset_csv,
                          uint64_t records_folded) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal: Compact on a closed writer");
  }
  // 1. Durably publish the snapshot under the next compaction
  //    sequence number. A crash after this point leaves snapshot +
  //    old segments: replay folds the old records onto the snapshot
  //    idempotently, and any marker those segments carry has an older
  //    sequence, which recovery recognizes as superseded instead of
  //    failing the CRC pairing.
  const uint64_t seq = compaction_seq_ + 1;
  const uint32_t crc = ComputeCrc32(dataset_csv);
  std::string blob(kSnapshotMagic);
  PutU32(&blob, kSnapshotVersion);
  PutU64(&blob, seq);
  PutU64(&blob, static_cast<uint64_t>(dataset_csv.size()));
  blob.append(dataset_csv);
  PutU32(&blob, crc);
  CORROB_RETURN_NOT_OK(WriteFileAtomic(
      dir_ + "/" + std::string(kSnapshotFileName), blob));
  // The on-disk snapshot is the authority from here on: even if a
  // later step fails, a retried Compact must supersede this sequence,
  // not reuse it against a different payload.
  compaction_seq_ = seq;
  // 2. Start a fresh segment whose first record pins the snapshot CRC.
  const int64_t last_old_segment = segment_index_;
  CORROB_RETURN_NOT_OK(Rotate());
  WalRecord marker;
  marker.type = WalRecordType::kSnapshotMarker;
  marker.snapshot_crc = crc;
  marker.records_folded = records_folded;
  marker.compaction_seq = seq;
  CORROB_RETURN_NOT_OK(WriteBytes(wal_internal::EncodeRecord(marker)));
  CORROB_RETURN_NOT_OK(Sync());
  // 3. Drop the folded segments. Failure here is cosmetic — a stale
  //    segment replays idempotently on top of the snapshot and its
  //    marker is tolerated by sequence — so log and keep serving
  //    rather than flip the WAL unhealthy.
  for (int64_t index = 0; index <= last_old_segment; ++index) {
    const std::string path =
        dir_ + "/" + wal_internal::SegmentFileName(index);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      CORROB_LOG_WARNING << "wal: cannot remove folded segment " << path
                         << ": " << std::strerror(errno)
                         << " (harmless: replay is idempotent)";
    }
  }
  return Status::OK();
}

Result<WalWriter> WalWriter::Open(const std::string& dir,
                                  const WalOptions& options,
                                  WalRecovery* recovery) {
  CORROB_RETURN_NOT_OK(ValidateWalOptions(options));
  CORROB_RETURN_NOT_OK(MakeDirs(dir));
  WalRecovery local;
  WalRecovery* scan_out = recovery != nullptr ? recovery : &local;
  CORROB_RETURN_NOT_OK(ScanWal(dir, /*repair=*/true, scan_out));
  WalWriter writer(dir, options);
  writer.compaction_seq_ = scan_out->snapshot_seq;
  CORROB_ASSIGN_OR_RETURN(std::vector<int64_t> indices, ListSegments(dir));
  const int64_t start_index = indices.empty() ? 0 : indices.back();
  CORROB_RETURN_NOT_OK(writer.OpenSegment(start_index, /*truncate=*/false));
  return writer;
}

}  // namespace corrob
