#ifndef CORROB_DATA_DATASET_IO_H_
#define CORROB_DATA_DATASET_IO_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// A dataset bundled with optional ground truth, as stored on disk.
struct LabeledDataset {
  Dataset dataset;
  /// Present when the CSV has a __truth__ column with no '?' entries.
  std::optional<GroundTruth> truth;
};

/// Why one data row was skipped during a lenient parse.
struct RowDiagnostic {
  /// 0-based row index into the CSV document (the header is row 0).
  size_t row = 0;
  std::string message;
};

/// Per-row outcome of a lenient parse: which rows were dropped and
/// why, so noisy feeds degrade visibly instead of silently.
struct ParseReport {
  std::vector<RowDiagnostic> skipped;
  /// Data rows seen (excluding the header and blank lines).
  size_t rows_seen = 0;
  /// Data rows that made it into the dataset.
  size_t rows_loaded = 0;

  bool AllRowsLoaded() const { return skipped.empty(); }
  /// e.g. "skipped 2 of 10 rows:\n  row 3: bad vote cell 'X'\n...".
  std::string ToString() const;
};

/// Parsing mode for dataset CSVs.
struct DatasetCsvOptions {
  /// When true, malformed data rows (wrong cell count, bad vote or
  /// truth cells) are skipped and recorded in the ParseReport instead
  /// of failing the whole load. Header errors are always fatal.
  bool lenient = false;
  /// Optional cooperative cancellation: the row loop polls this token
  /// every few thousand rows and aborts the load with
  /// Status(kCancelled) — large ingests stay responsive to Ctrl-C
  /// instead of finishing a multi-second parse first.
  const CancellationToken* cancel = nullptr;
};

/// CSV layout:
///   fact,<source1>,...,<sourceN>[,__truth__]
///   r1,T,-,F,...,true
/// Vote cells are T/F/-; truth cells are true/false/? (a '?' anywhere
/// drops the truth column from the loaded result).
/// Error messages include `path`; a missing file is NotFound while an
/// unreadable or mid-read-failing file is IoError.
[[nodiscard]] Result<LabeledDataset> LoadDatasetCsv(const std::string& path);

/// As above with explicit parsing options; `report` (may be null)
/// receives per-row diagnostics when provided.
[[nodiscard]] Result<LabeledDataset> LoadDatasetCsv(const std::string& path,
                                      const DatasetCsvOptions& options,
                                      ParseReport* report = nullptr);

/// Parses the same layout from an in-memory string (strict mode).
[[nodiscard]] Result<LabeledDataset> ParseDatasetCsv(const std::string& text);

/// Parses with explicit options; in lenient mode malformed rows are
/// dropped into `report` instead of aborting the parse.
[[nodiscard]] Result<LabeledDataset> ParseDatasetCsv(const std::string& text,
                                       const DatasetCsvOptions& options,
                                       ParseReport* report = nullptr);

/// Serializes `dataset` (and truth, when provided) into the layout
/// accepted by LoadDatasetCsv.
std::string DatasetToCsv(const Dataset& dataset,
                         const GroundTruth* truth = nullptr);

/// Writes DatasetToCsv output to `path` atomically (temp file + fsync
/// + rename), retrying transient I/O failures; a crash mid-save never
/// leaves a truncated CSV at `path`.
[[nodiscard]] Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth* truth = nullptr);

}  // namespace corrob

#endif  // CORROB_DATA_DATASET_IO_H_
