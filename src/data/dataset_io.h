#ifndef CORROB_DATA_DATASET_IO_H_
#define CORROB_DATA_DATASET_IO_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// A dataset bundled with optional ground truth, as stored on disk.
struct LabeledDataset {
  Dataset dataset;
  /// Present when the CSV has a __truth__ column with no '?' entries.
  std::optional<GroundTruth> truth;
};

/// CSV layout:
///   fact,<source1>,...,<sourceN>[,__truth__]
///   r1,T,-,F,...,true
/// Vote cells are T/F/-; truth cells are true/false/? (a '?' anywhere
/// drops the truth column from the loaded result).
Result<LabeledDataset> LoadDatasetCsv(const std::string& path);

/// Parses the same layout from an in-memory string.
Result<LabeledDataset> ParseDatasetCsv(const std::string& text);

/// Serializes `dataset` (and truth, when provided) into the layout
/// accepted by LoadDatasetCsv.
std::string DatasetToCsv(const Dataset& dataset,
                         const GroundTruth* truth = nullptr);

/// Writes DatasetToCsv output to `path`.
Status SaveDatasetCsv(const std::string& path, const Dataset& dataset,
                      const GroundTruth* truth = nullptr);

}  // namespace corrob

#endif  // CORROB_DATA_DATASET_IO_H_
