#ifndef CORROB_DATA_MOTIVATING_EXAMPLE_H_
#define CORROB_DATA_MOTIVATING_EXAMPLE_H_

#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// The paper's motivating example (Table 1): 5 sources s1..s5 and 12
/// restaurants r1..r12 with mostly affirmative votes and the ground
/// truth in the last column. Golden results on this dataset (Table 2):
///   TwoEstimate   P=0.64 R=1 Acc=0.67
///   BayesEstimate P=0.58 R=1 Acc=0.58
///   IncEstimate   P=0.78 R=1 Acc=0.83
struct MotivatingExample {
  Dataset dataset;
  GroundTruth truth;
};

/// Builds the Table 1 dataset. Source ids 0..4 are s1..s5 and fact
/// ids 0..11 are r1..r12, in paper order.
MotivatingExample MakeMotivatingExample();

}  // namespace corrob

#endif  // CORROB_DATA_MOTIVATING_EXAMPLE_H_
