#include "data/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace corrob {

Result<SourceId> Dataset::FindSource(const std::string& name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("no source named '" + name + "'");
  }
  return it->second;
}

Result<FactId> Dataset::FindFact(const std::string& name) const {
  auto it = fact_index_.find(name);
  if (it == fact_index_.end()) {
    return Status::NotFound("no fact named '" + name + "'");
  }
  return it->second;
}

Vote Dataset::GetVote(SourceId s, FactId f) const {
  auto votes = VotesOnFact(f);
  auto it = std::lower_bound(
      votes.begin(), votes.end(), s,
      [](const SourceVote& sv, SourceId id) { return sv.source < id; });
  if (it != votes.end() && it->source == s) return it->vote;
  return Vote::kNone;
}

int32_t Dataset::CountVotes(FactId f, Vote vote) const {
  int32_t count = 0;
  for (const SourceVote& sv : VotesOnFact(f)) {
    if (sv.vote == vote) ++count;
  }
  return count;
}

bool Dataset::IsAffirmativeOnly(FactId f) const {
  auto votes = VotesOnFact(f);
  if (votes.empty()) return false;
  for (const SourceVote& sv : votes) {
    if (sv.vote != Vote::kTrue) return false;
  }
  return true;
}

std::string Dataset::SignatureKey(FactId f) const {
  std::string key;
  auto votes = VotesOnFact(f);
  key.reserve(votes.size() * 4);
  for (const SourceVote& sv : votes) {
    if (!key.empty()) key += '|';
    key += std::to_string(sv.source);
    key += VoteToChar(sv.vote);
  }
  return key;
}

SourceId DatasetBuilder::AddSource(const std::string& name) {
  auto it = source_index_.find(name);
  if (it != source_index_.end()) return it->second;
  SourceId id = static_cast<SourceId>(source_names_.size());
  source_names_.push_back(name);
  source_index_.emplace(name, id);
  return id;
}

FactId DatasetBuilder::AddFact(const std::string& name) {
  auto it = fact_index_.find(name);
  if (it != fact_index_.end()) return it->second;
  FactId id = static_cast<FactId>(fact_names_.size());
  fact_names_.push_back(name);
  fact_index_.emplace(name, id);
  votes_per_fact_.emplace_back();
  return id;
}

Status DatasetBuilder::SetVote(SourceId s, FactId f, Vote vote) {
  if (s < 0 || s >= num_sources()) {
    return Status::OutOfRange("source id " + std::to_string(s) +
                              " out of range [0, " +
                              std::to_string(num_sources()) + ")");
  }
  if (f < 0 || f >= num_facts()) {
    return Status::OutOfRange("fact id " + std::to_string(f) +
                              " out of range [0, " +
                              std::to_string(num_facts()) + ")");
  }
  auto& row = votes_per_fact_[f];
  auto it = std::find_if(row.begin(), row.end(),
                         [s](const SourceVote& sv) { return sv.source == s; });
  if (vote == Vote::kNone) {
    if (it != row.end()) row.erase(it);
    return Status::OK();
  }
  if (it != row.end()) {
    it->vote = vote;  // Last writer wins.
  } else {
    row.push_back(SourceVote{s, vote});
  }
  return Status::OK();
}

Vote DatasetBuilder::GetVote(SourceId s, FactId f) const {
  CORROB_CHECK(s >= 0 && s < num_sources()) << "source id out of range";
  CORROB_CHECK(f >= 0 && f < num_facts()) << "fact id out of range";
  for (const SourceVote& sv : votes_per_fact_[static_cast<size_t>(f)]) {
    if (sv.source == s) return sv.vote;
  }
  return Vote::kNone;
}

void DatasetBuilder::SetVoteByName(const std::string& source,
                                   const std::string& fact, Vote vote) {
  SourceId s = AddSource(source);
  FactId f = AddFact(fact);
  CORROB_CHECK_OK(SetVote(s, f, vote));
}

Dataset DatasetBuilder::Build() {
  Dataset out;
  out.source_names_ = std::move(source_names_);
  out.fact_names_ = std::move(fact_names_);
  out.source_index_ = std::move(source_index_);
  out.fact_index_ = std::move(fact_index_);

  const int32_t facts = out.num_facts();
  const int32_t sources = out.num_sources();

  out.fact_offsets_.assign(static_cast<size_t>(facts) + 1, 0);
  size_t total = 0;
  for (int32_t f = 0; f < facts; ++f) {
    auto& row = votes_per_fact_[f];
    std::sort(row.begin(), row.end(),
              [](const SourceVote& a, const SourceVote& b) {
                return a.source < b.source;
              });
    out.fact_offsets_[f] = total;
    total += row.size();
  }
  out.fact_offsets_[facts] = total;
  out.num_votes_ = static_cast<int64_t>(total);

  out.fact_votes_.reserve(total);
  std::vector<size_t> per_source_count(static_cast<size_t>(sources), 0);
  for (int32_t f = 0; f < facts; ++f) {
    for (const SourceVote& sv : votes_per_fact_[f]) {
      out.fact_votes_.push_back(sv);
      ++per_source_count[static_cast<size_t>(sv.source)];
    }
  }

  out.source_offsets_.assign(static_cast<size_t>(sources) + 1, 0);
  for (int32_t s = 0; s < sources; ++s) {
    out.source_offsets_[s + 1] = out.source_offsets_[s] + per_source_count[s];
  }
  out.source_votes_.resize(total);
  std::vector<size_t> cursor(out.source_offsets_.begin(),
                             out.source_offsets_.end() - 1);
  for (int32_t f = 0; f < facts; ++f) {
    for (const SourceVote& sv : votes_per_fact_[f]) {
      out.source_votes_[cursor[static_cast<size_t>(sv.source)]++] =
          FactVote{f, sv.vote};
    }
  }

  votes_per_fact_.clear();
  return out;
}

}  // namespace corrob
