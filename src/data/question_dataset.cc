#include "data/question_dataset.h"

#include "common/logging.h"

namespace corrob {

QuestionDataset::QuestionDataset(Dataset dataset,
                                 std::vector<QuestionId> question_of_fact,
                                 GroundTruth truth)
    : dataset_(std::move(dataset)),
      question_of_fact_(std::move(question_of_fact)),
      truth_(std::move(truth)) {
  CORROB_CHECK(static_cast<int32_t>(question_of_fact_.size()) ==
               dataset_.num_facts());
  for (QuestionId q : question_of_fact_) {
    num_questions_ = std::max(num_questions_, q + 1);
  }
  answers_.assign(static_cast<size_t>(num_questions_), {});
  for (FactId f = 0; f < dataset_.num_facts(); ++f) {
    answers_[static_cast<size_t>(question_of_fact_[f])].push_back(f);
  }
}

Dataset QuestionDataset::WithNegativeClosure() const {
  DatasetBuilder builder;
  for (SourceId s = 0; s < dataset_.num_sources(); ++s) {
    builder.AddSource(dataset_.source_name(s));
  }
  for (FactId f = 0; f < dataset_.num_facts(); ++f) {
    builder.AddFact(dataset_.fact_name(f));
  }
  // First materialize implicit F votes so that explicit votes, applied
  // second, win any conflicts (a source may legitimately endorse two
  // answers; the last explicit statement stands).
  for (SourceId s = 0; s < dataset_.num_sources(); ++s) {
    for (const FactVote& fv : dataset_.VotesBySource(s)) {
      if (fv.vote != Vote::kTrue) continue;
      QuestionId q = question_of(fv.fact);
      for (FactId sibling : answers(q)) {
        if (sibling == fv.fact) continue;
        if (dataset_.GetVote(s, sibling) == Vote::kNone) {
          CORROB_CHECK_OK(builder.SetVote(s, sibling, Vote::kFalse));
        }
      }
    }
  }
  for (SourceId s = 0; s < dataset_.num_sources(); ++s) {
    for (const FactVote& fv : dataset_.VotesBySource(s)) {
      CORROB_CHECK_OK(builder.SetVote(s, fv.fact, fv.vote));
    }
  }
  return builder.Build();
}

QuestionId QuestionDatasetBuilder::AddQuestion(const std::string& name) {
  QuestionId id = static_cast<QuestionId>(question_names_.size());
  question_names_.push_back(name);
  correct_answers_per_question_.push_back(0);
  return id;
}

FactId QuestionDatasetBuilder::AddAnswer(QuestionId q, const std::string& name,
                                         bool is_correct) {
  CORROB_CHECK(q >= 0 &&
               q < static_cast<QuestionId>(question_names_.size()))
      << "unknown question id " << q;
  FactId f = builder_.AddFact(name);
  CORROB_CHECK(static_cast<size_t>(f) == question_of_fact_.size())
      << "duplicate answer name '" << name << "'";
  question_of_fact_.push_back(q);
  fact_truth_.push_back(is_correct);
  if (is_correct) ++correct_answers_per_question_[static_cast<size_t>(q)];
  return f;
}

SourceId QuestionDatasetBuilder::AddSource(const std::string& name) {
  return builder_.AddSource(name);
}

Status QuestionDatasetBuilder::SetVote(SourceId s, FactId f, Vote vote) {
  return builder_.SetVote(s, f, vote);
}

Result<QuestionDataset> QuestionDatasetBuilder::Build() {
  for (size_t q = 0; q < question_names_.size(); ++q) {
    if (correct_answers_per_question_[q] != 1) {
      return Status::FailedPrecondition(
          "question '" + question_names_[q] + "' has " +
          std::to_string(correct_answers_per_question_[q]) +
          " correct answers; expected exactly 1");
    }
  }
  Dataset dataset = builder_.Build();
  GroundTruth truth(std::vector<bool>(fact_truth_.begin(), fact_truth_.end()));
  QuestionDataset out(std::move(dataset), std::move(question_of_fact_),
                      std::move(truth));
  fact_truth_.clear();
  question_names_.clear();
  correct_answers_per_question_.clear();
  return out;
}

}  // namespace corrob
