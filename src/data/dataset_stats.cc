#include "data/dataset_stats.h"

#include <algorithm>

#include "common/logging.h"

namespace corrob {

SourceStats ComputeSourceStats(const Dataset& dataset) {
  const int32_t sources = dataset.num_sources();
  const int32_t facts = dataset.num_facts();
  SourceStats stats;
  stats.coverage.assign(static_cast<size_t>(sources), 0.0);
  stats.overlap.assign(static_cast<size_t>(sources),
                       std::vector<double>(static_cast<size_t>(sources), 0.0));

  for (int32_t s = 0; s < sources; ++s) {
    double votes = static_cast<double>(dataset.VotesBySource(s).size());
    stats.coverage[s] = facts > 0 ? votes / facts : 0.0;
  }

  for (int32_t a = 0; a < sources; ++a) {
    auto va = dataset.VotesBySource(a);
    for (int32_t b = a; b < sources; ++b) {
      auto vb = dataset.VotesBySource(b);
      // Both spans are sorted by fact id: merge to count intersection.
      size_t i = 0, j = 0, both = 0;
      while (i < va.size() && j < vb.size()) {
        if (va[i].fact < vb[j].fact) {
          ++i;
        } else if (vb[j].fact < va[i].fact) {
          ++j;
        } else {
          ++both;
          ++i;
          ++j;
        }
      }
      size_t either = va.size() + vb.size() - both;
      double jaccard =
          either == 0 ? 0.0 : static_cast<double>(both) / either;
      if (a == b) jaccard = va.empty() ? 0.0 : 1.0;
      stats.overlap[a][b] = jaccard;
      stats.overlap[b][a] = jaccard;
    }
  }
  return stats;
}

std::vector<double> SourceAccuracyOnGolden(const Dataset& dataset,
                                           const GoldenSet& golden,
                                           double no_vote_value) {
  const int32_t sources = dataset.num_sources();
  std::vector<int64_t> correct(static_cast<size_t>(sources), 0);
  std::vector<int64_t> total(static_cast<size_t>(sources), 0);
  for (size_t i = 0; i < golden.size(); ++i) {
    FactId f = golden.fact(i);
    bool truth = golden.label(i);
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      bool vote_true = sv.vote == Vote::kTrue;
      ++total[static_cast<size_t>(sv.source)];
      if (vote_true == truth) ++correct[static_cast<size_t>(sv.source)];
    }
  }
  std::vector<double> accuracy(static_cast<size_t>(sources), no_vote_value);
  for (int32_t s = 0; s < sources; ++s) {
    if (total[s] > 0) {
      accuracy[s] = static_cast<double>(correct[s]) / total[s];
    }
  }
  return accuracy;
}

std::vector<int64_t> CountFalseVotesBySource(const Dataset& dataset) {
  std::vector<int64_t> counts(static_cast<size_t>(dataset.num_sources()), 0);
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    for (const FactVote& fv : dataset.VotesBySource(s)) {
      if (fv.vote == Vote::kFalse) ++counts[static_cast<size_t>(s)];
    }
  }
  return counts;
}

int64_t CountFactsWithFalseVotes(const Dataset& dataset) {
  int64_t count = 0;
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    if (dataset.CountVotes(f, Vote::kFalse) > 0) ++count;
  }
  return count;
}

double AffirmativeOnlyFraction(const Dataset& dataset) {
  if (dataset.num_facts() == 0) return 0.0;
  int64_t count = 0;
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    if (dataset.IsAffirmativeOnly(f)) ++count;
  }
  return static_cast<double>(count) / dataset.num_facts();
}

}  // namespace corrob
