#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

namespace corrob {
namespace obs {

namespace {

/// Log2 bucket of a non-negative nanosecond duration; mirrors
/// obs::Histogram::BucketOf so the two histogram families line up.
int LatencyBucketOf(int64_t value) {
  if (value <= 0) return 0;
  int bits = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits < FlightRecorder::kLatencyBuckets
             ? bits
             : FlightRecorder::kLatencyBuckets - 1;
}

/// True for the roles whose latency belongs in the "hit" histogram:
/// the request's bytes came from another run (cache replay or a
/// coalesced leader). Cold, leader and promoted runs are "cold";
/// rejected requests never ran and are counted in neither.
bool IsHitRole(RequestRole role) {
  return role == RequestRole::kCacheHit || role == RequestRole::kFollower;
}

JsonValue BucketsJson(const int64_t (&buckets)[FlightRecorder::kLatencyBuckets],
                      int64_t count, int64_t sum_nanos) {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue::Int(count));
  out.Set("sum_nanos", JsonValue::Int(sum_nanos));
  JsonValue non_empty = JsonValue::Object();
  for (int i = 0; i < FlightRecorder::kLatencyBuckets; ++i) {
    if (buckets[i] != 0) {
      non_empty.Set(std::to_string(i), JsonValue::Int(buckets[i]));
    }
  }
  out.Set("buckets", std::move(non_empty));
  return out;
}

JsonValue RecordJson(const RequestRecord& record) {
  JsonValue out = JsonValue::Object();
  out.Set("seq", JsonValue::Int(static_cast<int64_t>(record.sequence)));
  out.Set("id", JsonValue::Str(record.client_request_id));
  out.Set("tenant", JsonValue::Str(record.tenant));
  out.Set("dataset", JsonValue::Str(record.dataset));
  out.Set("method", JsonValue::Str(record.method));
  out.Set("priority", JsonValue::Str(record.priority));
  out.Set("role", JsonValue::Str(std::string(RequestRoleName(record.role))));
  out.Set("termination", JsonValue::Str(record.termination));
  out.Set("admission_wait_nanos",
          JsonValue::Int(record.admission_wait_nanos));
  out.Set("service_nanos", JsonValue::Int(record.service_nanos));
  out.Set("total_nanos", JsonValue::Int(record.total_nanos));
  out.Set("response_bytes", JsonValue::Int(record.response_bytes));
  if (!record.spans.empty()) {
    JsonValue spans = JsonValue::Array();
    for (const RequestSpan& span : record.spans) {
      JsonValue one = JsonValue::Object();
      one.Set("name", JsonValue::Str(span.name));
      one.Set("at_nanos", JsonValue::Int(span.at_nanos));
      spans.Append(std::move(one));
    }
    out.Set("spans", std::move(spans));
  }
  return out;
}

}  // namespace

std::string_view RequestRoleName(RequestRole role) {
  switch (role) {
    case RequestRole::kCold:
      return "cold";
    case RequestRole::kCacheHit:
      return "cache_hit";
    case RequestRole::kLeader:
      return "leader";
    case RequestRole::kFollower:
      return "follower";
    case RequestRole::kPromoted:
      return "promoted";
    case RequestRole::kRejected:
      return "rejected";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(const Options& options) {
  capacity_ = options.capacity > 0 ? options.capacity : 0;
  slow_threshold_nanos_ =
      options.slow_threshold_nanos > 0 ? options.slow_threshold_nanos : 0;
  clock_ = options.clock != nullptr ? options.clock : MonotonicClock::Get();
  if (capacity_ > 0) {
    int shards = options.shards > 0 ? options.shards : 1;
    shards = std::min(shards, capacity_);
    per_shard_capacity_ = (capacity_ + shards - 1) / shards;
    shards_.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }
}

uint64_t FlightRecorder::Begin(RequestStart start) {
  if (!armed()) return 0;
  const int64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(active_mutex_);
  const uint64_t handle = next_sequence_++;
  ++started_;
  ActiveEntry& entry = active_[handle];
  entry.start = std::move(start);
  entry.start_nanos = now;
  return handle;
}

void FlightRecorder::AddSpan(uint64_t handle, std::string_view name) {
  if (handle == 0 || !armed()) return;
  const int64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(active_mutex_);
  auto it = active_.find(handle);
  if (it == active_.end()) return;
  it->second.spans.push_back(
      RequestSpan{std::string(name), now - it->second.start_nanos});
}

FinishSummary FlightRecorder::End(uint64_t handle, RequestFinish finish) {
  FinishSummary summary;
  if (handle == 0 || !armed()) return summary;
  const int64_t now = clock_->NowNanos();

  RequestRecord record;
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    auto it = active_.find(handle);
    if (it == active_.end()) return summary;
    ActiveEntry& entry = it->second;
    record.sequence = handle;
    record.client_request_id = std::move(entry.start.client_request_id);
    record.tenant = std::move(entry.start.tenant);
    record.dataset = std::move(entry.start.dataset);
    record.method = std::move(entry.start.method);
    record.priority = std::move(entry.start.priority);
    record.start_nanos = entry.start_nanos;
    record.total_nanos = now - entry.start_nanos;
    record.spans = std::move(entry.spans);
    active_.erase(it);
  }
  record.role = finish.role;
  record.termination = std::move(finish.termination);
  record.admission_wait_nanos = finish.admission_wait_nanos;
  record.service_nanos = finish.service_nanos;
  record.response_bytes = finish.response_bytes;

  summary.total_nanos = record.total_nanos;
  summary.slow = slow_threshold_nanos_ > 0 &&
                 record.total_nanos >= slow_threshold_nanos_;
  if (!summary.slow) record.spans.clear();

  {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    TenantTotals& totals = tenants_[record.tenant];
    ++totals.requests;
    totals.total_nanos += record.total_nanos;
    totals.max_nanos = std::max(totals.max_nanos, record.total_nanos);
    if (record.role != RequestRole::kRejected) {
      const int bucket = LatencyBucketOf(record.total_nanos);
      if (IsHitRole(record.role)) {
        ++hit_buckets_[bucket];
        ++hit_count_;
        hit_sum_nanos_ += record.total_nanos;
      } else {
        ++cold_buckets_[bucket];
        ++cold_count_;
        cold_sum_nanos_ += record.total_nanos;
      }
    }
    if (summary.slow) ++slow_;
  }

  Shard* shard = ShardOf(record.sequence);
  std::lock_guard<std::mutex> lock(shard->mutex);
  ++shard->completed;
  if (shard->ring.size() < static_cast<size_t>(per_shard_capacity_)) {
    shard->ring.push_back(std::move(record));
  } else {
    shard->ring[shard->next] = std::move(record);
    shard->next = (shard->next + 1) % shard->ring.size();
    ++shard->dropped;
  }
  return summary;
}

std::vector<ActiveSnapshot> FlightRecorder::ActiveRequests(
    int64_t now_nanos) const {
  std::vector<ActiveSnapshot> out;
  if (!armed()) return out;
  std::lock_guard<std::mutex> lock(active_mutex_);
  out.reserve(active_.size());
  for (const auto& [handle, entry] : active_) {
    ActiveSnapshot snapshot;
    snapshot.sequence = handle;
    snapshot.client_request_id = entry.start.client_request_id;
    snapshot.tenant = entry.start.tenant;
    snapshot.dataset = entry.start.dataset;
    snapshot.method = entry.start.method;
    snapshot.priority = entry.start.priority;
    snapshot.age_nanos = now_nanos - entry.start_nanos;
    snapshot.deadline_nanos = entry.start.deadline_nanos;
    snapshot.flagged_stuck = entry.flagged_stuck;
    out.push_back(std::move(snapshot));
  }
  return out;
}

std::vector<ActiveSnapshot> FlightRecorder::FlagStuck(int64_t now_nanos,
                                                      double multiplier) {
  std::vector<ActiveSnapshot> newly_flagged;
  if (!armed() || multiplier <= 0.0) return newly_flagged;
  std::lock_guard<std::mutex> lock(active_mutex_);
  for (auto& [handle, entry] : active_) {
    if (entry.flagged_stuck || entry.start.deadline_nanos <= 0) continue;
    const double age =
        static_cast<double>(now_nanos - entry.start_nanos);
    if (age <= multiplier * static_cast<double>(entry.start.deadline_nanos)) {
      continue;
    }
    entry.flagged_stuck = true;
    ActiveSnapshot snapshot;
    snapshot.sequence = handle;
    snapshot.client_request_id = entry.start.client_request_id;
    snapshot.tenant = entry.start.tenant;
    snapshot.dataset = entry.start.dataset;
    snapshot.method = entry.start.method;
    snapshot.priority = entry.start.priority;
    snapshot.age_nanos = now_nanos - entry.start_nanos;
    snapshot.deadline_nanos = entry.start.deadline_nanos;
    snapshot.flagged_stuck = true;
    newly_flagged.push_back(std::move(snapshot));
  }
  return newly_flagged;
}

int64_t FlightRecorder::stuck_now() const {
  if (!armed()) return 0;
  std::lock_guard<std::mutex> lock(active_mutex_);
  int64_t stuck = 0;
  for (const auto& item : active_) {
    if (item.second.flagged_stuck) ++stuck;
  }
  return stuck;
}

FlightRecorderStats FlightRecorder::stats() const {
  FlightRecorderStats stats;
  if (!armed()) return stats;
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    stats.started = started_;
    stats.active = static_cast<int64_t>(active_.size());
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.completed += shard->completed;
    stats.dropped += shard->dropped;
  }
  std::lock_guard<std::mutex> lock(totals_mutex_);
  stats.slow = slow_;
  return stats;
}

JsonValue FlightRecorder::SnapshotJson(int top_k, int max_recent) const {
  JsonValue out = JsonValue::Object();
  const FlightRecorderStats totals = stats();
  out.Set("capacity", JsonValue::Int(capacity_));
  out.Set("started", JsonValue::Int(totals.started));
  out.Set("completed", JsonValue::Int(totals.completed));
  out.Set("dropped", JsonValue::Int(totals.dropped));
  out.Set("slow", JsonValue::Int(totals.slow));

  // Merge the shards and keep the newest `max_recent` in ascending
  // sequence order. Sequence is globally unique, so the merge order
  // is independent of shard scheduling.
  std::vector<RequestRecord> merged;
  if (armed()) {
    merged.reserve(static_cast<size_t>(capacity_));
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      merged.insert(merged.end(), shard->ring.begin(), shard->ring.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.sequence < b.sequence;
            });
  if (max_recent >= 0 &&
      merged.size() > static_cast<size_t>(max_recent)) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<size_t>(max_recent));
  }
  JsonValue recent = JsonValue::Array();
  for (const RequestRecord& record : merged) {
    recent.Append(RecordJson(record));
  }
  out.Set("recent", std::move(recent));

  {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    // Top-K tenants by cumulative request count (the QPS ranking over
    // the recorder's lifetime); ties break on tenant name so the
    // ordering is total.
    std::vector<std::pair<std::string, TenantTotals>> ranked(
        tenants_.begin(), tenants_.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second.requests != b.second.requests) {
                  return a.second.requests > b.second.requests;
                }
                return a.first < b.first;
              });
    if (top_k >= 0 && ranked.size() > static_cast<size_t>(top_k)) {
      ranked.resize(static_cast<size_t>(top_k));
    }
    JsonValue tenants = JsonValue::Array();
    for (const auto& [tenant, totals_row] : ranked) {
      JsonValue row = JsonValue::Object();
      row.Set("tenant", JsonValue::Str(tenant));
      row.Set("requests", JsonValue::Int(totals_row.requests));
      row.Set("total_nanos", JsonValue::Int(totals_row.total_nanos));
      row.Set("max_nanos", JsonValue::Int(totals_row.max_nanos));
      tenants.Append(std::move(row));
    }
    out.Set("tenants", std::move(tenants));

    JsonValue latency = JsonValue::Object();
    latency.Set("cold",
                BucketsJson(cold_buckets_, cold_count_, cold_sum_nanos_));
    latency.Set("hit", BucketsJson(hit_buckets_, hit_count_, hit_sum_nanos_));
    out.Set("latency", std::move(latency));
  }
  return out;
}

}  // namespace obs
}  // namespace corrob
