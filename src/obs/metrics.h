#ifndef CORROB_OBS_METRICS_H_
#define CORROB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/json.h"

// Process-wide metrics: lock-cheap counters, gauges and log-scale
// histograms. Writes are relaxed atomic increments into per-thread
// shards (no mutex, no cache-line ping-pong between pool workers);
// Snapshot() folds the shards in fixed shard order into exact int64
// totals, so the readout is deterministic for a deterministic
// workload no matter how the increments were scheduled. Instrumented
// numeric code is unaffected: metrics only observe, they never feed
// back into any trust computation.
//
// Hot paths cache the pointer once:
//
//   static Counter* builds =
//       MetricsRegistry::Global().GetCounter("corrob.vote_matrix.builds");
//   builds->Add(1);

namespace corrob {
namespace obs {

namespace internal_metrics {

inline constexpr int kShards = 16;

/// One cache line per shard keeps concurrent writers from false
/// sharing; the shard a thread writes is fixed at thread birth.
struct alignas(64) ShardCell {
  std::atomic<int64_t> value{0};
};

/// Index of the calling thread's shard (round-robin at first use).
int ThisThreadShard();

}  // namespace internal_metrics

/// Monotonic event count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    shards_[internal_metrics::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Exact sum over the shards, folded in fixed shard order.
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  internal_metrics::ShardCell shards_[internal_metrics::kShards];
};

/// Last-written value (e.g. thread count, dataset size).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale (base-2) histogram of non-negative integer samples, e.g.
/// nanosecond durations or batch sizes. Bucket b counts samples whose
/// value needs b significant bits: bucket 0 is {0}, bucket b >= 1 is
/// [2^(b-1), 2^b). Exact count and sum ride along for means.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t value) {
    const int shard = internal_metrics::ThisThreadShard();
    if (value < 0) value = 0;
    buckets_[BucketOf(value)][shard].value.fetch_add(
        1, std::memory_order_relaxed);
    count_[shard].value.fetch_add(1, std::memory_order_relaxed);
    sum_[shard].value.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index of `value` (see class comment).
  static int BucketOf(int64_t value) {
    if (value <= 0) return 0;
    int bits = 0;
    uint64_t v = static_cast<uint64_t>(value);
    while (v != 0) {
      v >>= 1;
      ++bits;
    }
    return bits < kBuckets ? bits : kBuckets - 1;
  }

  int64_t Count() const { return Fold(count_); }
  int64_t Sum() const { return Fold(sum_); }
  int64_t BucketCount(int bucket) const { return Fold(buckets_[bucket]); }

  void Reset() {
    for (auto& row : buckets_) {
      for (auto& cell : row) cell.value.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : count_) cell.value.store(0, std::memory_order_relaxed);
    for (auto& cell : sum_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  static int64_t Fold(
      const internal_metrics::ShardCell (&cells)[internal_metrics::kShards]) {
    int64_t total = 0;
    for (const auto& cell : cells) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  internal_metrics::ShardCell buckets_[kBuckets][internal_metrics::kShards];
  internal_metrics::ShardCell count_[internal_metrics::kShards];
  internal_metrics::ShardCell sum_[internal_metrics::kShards];
};

/// A point-in-time readout of every registered metric, name-sorted.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    int64_t count = 0;
    int64_t sum = 0;
    /// (bucket index, count) for non-empty buckets, ascending index.
    std::vector<std::pair<int, int64_t>> buckets;
  };

  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramValue> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count": n, "sum": s, "buckets": {"<index>": c, ...}}}}.
  JsonValue ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(2); }
};

/// Create-or-get registry of named metrics. Returned pointers are
/// stable for the registry's lifetime (the process, for Global()).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the instrumentation writes to.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Folds every metric into exact totals. Safe to call while other
  /// threads keep writing (their in-flight increments land in the
  /// next snapshot).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (pointers stay valid). Intended
  /// for tests and per-run isolation, not concurrent use.
  void ResetAll();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CORROB_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CORROB_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CORROB_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace corrob

#endif  // CORROB_OBS_METRICS_H_
