#ifndef CORROB_OBS_TRACE_H_
#define CORROB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/json.h"

// Scoped tracing in Chrome trace_event format. Enable the global
// recorder, run the workload, then serialize and open the file in
// chrome://tracing or https://ui.perfetto.dev — every CORROB_TRACE_SPAN
// in the call tree becomes a complete ("ph":"X") slice on its thread's
// track, which makes ThreadPool fan-out (ParallelApply chunks, ΔH
// scans) directly visible.
//
// Cost model: a span while tracing is disabled is one relaxed atomic
// load (the bench_micro overhead benches pin this); while enabled it
// is two clock reads and a push into a per-thread buffer (no locks on
// the hot path — the recorder mutex is only taken the first time a
// thread records).
//
// Concurrency contract: Record/span use is thread-safe; Start, Stop,
// Clear and ToJsonString must not race with active spans (finish or
// join the workload first — every Corroborator::Run joins its pool
// before returning, so tracing whole runs needs no extra care).

namespace corrob {
namespace obs {

/// One complete event; timestamps are clock nanoseconds relative to
/// the recorder's epoch (the Start() instant).
struct TraceEvent {
  const char* name;  ///< static string (span labels are literals)
  int64_t start_nanos = 0;
  int64_t duration_nanos = 0;
  uint32_t tid = 0;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder CORROB_TRACE_SPAN writes to.
  static TraceRecorder& Global();

  /// Starts recording: sets the epoch to "now" on `clock` (null →
  /// MonotonicClock) and enables span capture.
  void Start(const Clock* clock = nullptr);

  /// Disables span capture; recorded events stay until Clear().
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since Start() on the recording clock.
  int64_t NowNanos() const { return clock_->NowNanos() - epoch_nanos_; }

  /// Appends one complete event to the calling thread's buffer.
  /// `name` must outlive the recorder (pass string literals).
  void RecordComplete(const char* name, int64_t start_nanos,
                      int64_t end_nanos);

  /// Events recorded so far, across all threads.
  int64_t event_count() const;

  /// Chrome trace_event JSON: {"displayTimeUnit":"ms",
  /// "traceEvents":[{"name","ph":"X","ts","dur","pid","tid"}...]}
  /// with events sorted by (ts, tid). `ts`/`dur` are microseconds.
  JsonValue ToJson() const;
  std::string ToJsonString() const { return ToJson().Dump(); }

  /// Drops all recorded events and thread buffers.
  void Clear();

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// The calling thread's buffer, registering it on first use.
  ThreadBuffer* ThisThreadBuffer();

  std::atomic<bool> enabled_{false};
  /// clock_ and epoch_nanos_ are written only by Start(), which the
  /// concurrency contract above forbids racing with spans — they are
  /// protected by protocol, not by mutex_, so no guard is expressible.
  const Clock* clock_ = MonotonicClock::Get();
  int64_t epoch_nanos_ = 0;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      CORROB_GUARDED_BY(mutex_);
  /// Bumped by Clear() so threads drop cached buffer pointers.
  std::atomic<uint64_t> generation_{0};
};

/// RAII span: records a complete event covering its lifetime when the
/// global recorder is enabled at both construction and destruction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    TraceRecorder& recorder = TraceRecorder::Global();
    if (recorder.enabled()) {
      armed_ = true;
      start_nanos_ = recorder.NowNanos();
    }
  }

  ~TraceSpan() {
    if (!armed_) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    if (recorder.enabled()) {
      recorder.RecordComplete(name_, start_nanos_, recorder.NowNanos());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_nanos_ = 0;
  bool armed_ = false;
};

#define CORROB_TRACE_SPAN_CONCAT2(a, b) a##b
#define CORROB_TRACE_SPAN_CONCAT(a, b) CORROB_TRACE_SPAN_CONCAT2(a, b)

/// Traces the enclosing scope as a slice named `name` (a string
/// literal) on the current thread's track.
#define CORROB_TRACE_SPAN(name)             \
  ::corrob::obs::TraceSpan CORROB_TRACE_SPAN_CONCAT(corrob_trace_span_, \
                                                    __LINE__)(name)

}  // namespace obs
}  // namespace corrob

#endif  // CORROB_OBS_TRACE_H_
