#ifndef CORROB_OBS_TELEMETRY_H_
#define CORROB_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

// Convergence telemetry: the structured story of one corroboration
// run. Fixpoint methods (TwoEstimate, ThreeEstimate, TruthFinder,
// Cosine) and the Gibbs sampler (BayesEstimate) record one
// IterationStats per iteration/sweep; IncEstimate additionally
// records one IncRoundEvent per selection round — which groups were
// chosen, how large each side was, the projected ΔH, and how many
// facts committed (the paper's n = min(|FG+|, |FG-|) balanced-commit
// invariant is checkable from the record). Everything here is derived
// purely from the deterministic run state — no clocks, no thread ids
// — so telemetry from two identical seeded runs is byte-identical.

namespace corrob {
namespace obs {

/// Convergence statistics of one iteration (fixpoint sweep, Gibbs
/// sweep, or incremental round).
struct IterationStats {
  int32_t iteration = 0;
  /// L∞ change of the source-trust vector this iteration (0 for
  /// methods without a notion of per-iteration delta).
  double max_delta = 0.0;
  /// Distribution of the trust vector after the iteration.
  double trust_min = 0.0;
  double trust_mean = 0.0;
  double trust_max = 0.0;
  /// Facts evaluated this iteration (incremental methods; 0 else).
  int64_t facts_committed = 0;
};

/// One IncEstimate selection round.
struct IncRoundEvent {
  int32_t round = 0;
  /// "balanced" | "greedy" | "one_sided_positive" |
  /// "one_sided_negative" | "final_ties" | "supervised".
  std::string kind;
  /// Selected group ids (-1 when the side selected nothing).
  int32_t positive_group = -1;
  int32_t negative_group = -1;
  /// Vote signatures of the selected groups, e.g. "s1=T,s3=F".
  std::string positive_signature;
  std::string negative_signature;
  /// Remaining facts of the selected groups at selection time —
  /// |FG+| and |FG-| of the paper's balanced commit.
  int64_t fg_positive = 0;
  int64_t fg_negative = 0;
  /// How many groups each part held this round.
  int64_t part_positive = 0;
  int64_t part_negative = 0;
  /// Projected probability σ(FG) of each selected group.
  double prob_positive = 0.0;
  double prob_negative = 0.0;
  /// ΔH(F̄) of each selected group (0 when the strategy did not score
  /// entropy, e.g. greedy IncEstPS rounds).
  double delta_h_positive = 0.0;
  double delta_h_negative = 0.0;
  /// Facts committed per side for balanced rounds — the paper's
  /// n = min(|FG+|, |FG-|). For one-sided/greedy/final rounds this is
  /// the full commit count.
  int64_t committed_n = 0;
  /// Total facts evaluated this round (2n for balanced rounds).
  int64_t facts_committed = 0;
  /// Post-round trust distribution.
  double trust_min = 0.0;
  double trust_mean = 0.0;
  double trust_max = 0.0;
};

/// The full telemetry of one run, attached to CorroborationResult
/// when the corroborator ran with collect_telemetry.
struct RunTelemetry {
  std::string algorithm;
  int64_t num_facts = 0;
  int64_t num_sources = 0;
  int32_t iterations = 0;
  /// Fixpoint methods: stopped on tolerance before the iteration cap.
  bool converged = false;
  std::vector<IterationStats> iteration_stats;
  std::vector<IncRoundEvent> rounds;
};

/// Serialization (schema documented in docs/OBSERVABILITY.md and
/// enforced by tools/obs/validate_trace.py).
JsonValue TelemetryToJson(const RunTelemetry& telemetry);
std::string TelemetryToJsonString(const RunTelemetry& telemetry);

/// Parses telemetry JSON (as produced by TelemetryToJson). On failure
/// returns false and describes the problem in `*error` if non-null.
bool TelemetryFromJson(const JsonValue& json, RunTelemetry* out,
                       std::string* error = nullptr);
bool TelemetryFromJsonString(std::string_view text, RunTelemetry* out,
                             std::string* error = nullptr);

/// Computes min/mean/max of `values` into the three outputs (all 0
/// for an empty vector). Shared by every telemetry recorder.
void TrustDistribution(const std::vector<double>& values, double* min_out,
                       double* mean_out, double* max_out);

}  // namespace obs
}  // namespace corrob

#endif  // CORROB_OBS_TELEMETRY_H_
