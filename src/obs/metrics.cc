#include "obs/metrics.h"

namespace corrob {
namespace obs {

namespace internal_metrics {

int ThisThreadShard() {
  static std::atomic<unsigned> next_shard{0};
  thread_local const int shard = static_cast<int>(
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kShards));
  return shard;
}

}  // namespace internal_metrics

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // lint: new-ok: intentionally leaked process-lifetime singleton (no destruction-order races at exit)
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      int64_t count = histogram->BucketCount(b);
      if (count != 0) value.buckets.emplace_back(b, count);
    }
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue root = JsonValue::Object();
  JsonValue counter_object = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counter_object.Set(name, JsonValue::Int(value));
  }
  root.Set("counters", std::move(counter_object));
  JsonValue gauge_object = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauge_object.Set(name, JsonValue::Int(value));
  }
  root.Set("gauges", std::move(gauge_object));
  JsonValue histogram_object = JsonValue::Object();
  for (const auto& histogram : histograms) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", JsonValue::Int(histogram.count));
    entry.Set("sum", JsonValue::Int(histogram.sum));
    JsonValue buckets = JsonValue::Object();
    for (const auto& [bucket, count] : histogram.buckets) {
      buckets.Set(std::to_string(bucket), JsonValue::Int(count));
    }
    entry.Set("buckets", std::move(buckets));
    histogram_object.Set(histogram.name, std::move(entry));
  }
  root.Set("histograms", std::move(histogram_object));
  return root;
}

}  // namespace obs
}  // namespace corrob
