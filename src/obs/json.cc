#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace corrob {
namespace obs {

void JsonValue::Set(std::string key, JsonValue value) {
  for (auto& [existing, existing_value] : members_) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatJsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest precision that survives a parse round trip keeps the
  // output both readable and bit-faithful (telemetry determinism
  // tests compare the rendered text).
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  std::string text = buf;
  // "5" would re-parse as an integer; keep the double-ness visible.
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_);
      return;
    case Type::kDouble:
      *out += FormatJsonDouble(double_);
      return;
    case Type::kString:
      AppendJsonString(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        AppendJsonString(out, members_[i].first);
        *out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view; positions are byte
/// offsets into the original text for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 200;

  bool Fail(const std::string& message) {
    error_ = message;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!Literal("null")) return Fail("bad literal");
        *out = JsonValue::Null();
        return true;
      case 't':
        if (!Literal("true")) return Fail("bad literal");
        *out = JsonValue::Bool(true);
        return true;
      case 'f':
        if (!Literal("false")) return Fail("bad literal");
        *out = JsonValue::Bool(false);
        return true;
      case '"': {
        std::string text;
        if (!ParseString(&text)) return false;
        *out = JsonValue::Str(std::move(text));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("truncated escape");
        char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the code point (surrogate pairs are not
            // recombined; observability strings are ASCII in practice).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(static_cast<int64_t>(value));
        return true;
      }
    }
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    *out = JsonValue::Double(value);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWhitespace();
      if (!ParseValue(&item, depth + 1)) return false;
      out->Append(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected a member name");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  return Parser(text).Parse(out, error);
}

}  // namespace obs
}  // namespace corrob
