#ifndef CORROB_OBS_JSON_H_
#define CORROB_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Minimal JSON model shared by the observability outputs (trace files,
// metric snapshots, telemetry, BENCH_*.json) and their readers (the
// `corrob explain` subcommand, tests). Deliberately dependency-free —
// src/obs sits below src/common so even the thread pool and logging
// can be instrumented — so errors are reported through bool + message
// rather than Status.
//
// Determinism contract: Dump() output depends only on the value —
// object members keep insertion order, doubles print as the shortest
// decimal that round-trips — so byte-identical values produce
// byte-identical text. Telemetry and golden tests rely on this.

namespace corrob {
namespace obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool value) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue Int(int64_t value) {
    JsonValue v;
    v.type_ = Type::kInt;
    v.int_ = value;
    return v;
  }
  static JsonValue Double(double value) {
    JsonValue v;
    v.type_ = Type::kDouble;
    v.double_ = value;
    return v;
  }
  static JsonValue Str(std::string value) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  /// Numeric value as int64 (a double is truncated).
  int64_t int_value() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  /// Numeric value as double.
  double double_value() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  // Array access.
  size_t size() const {
    return type_ == Type::kObject ? members_.size() : items_.size();
  }
  const JsonValue& at(size_t i) const { return items_[i]; }
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue value) { items_.push_back(std::move(value)); }

  // Object access. Members keep insertion order; Set overwrites an
  // existing key in place.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(std::string key, JsonValue value);
  /// Member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes the value. indent < 0 → compact single line;
  /// indent >= 0 → pretty-printed with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Parses `text` (one JSON value, optionally surrounded by
  /// whitespace). On failure returns false and describes the problem
  /// in `*error` (when non-null) with a byte offset.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Appends `text` JSON-escaped (quotes included) to `*out`.
void AppendJsonString(std::string* out, std::string_view text);

/// The shortest decimal rendering of `value` that parses back to the
/// same double ("0.9" rather than "0.90000000000000002"); infinities
/// and NaN (not representable in JSON) render as null.
std::string FormatJsonDouble(double value);

}  // namespace obs
}  // namespace corrob

#endif  // CORROB_OBS_JSON_H_
