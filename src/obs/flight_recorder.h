#ifndef CORROB_OBS_FLIGHT_RECORDER_H_
#define CORROB_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/json.h"

// Flight recorder: the per-request black box of a serving daemon. A
// lock-sharded, fixed-capacity ring of completed RequestRecords plus
// an active-request table for in-flight inspection, so a stuck
// request, a misbehaving tenant or a tail-latency regression can be
// examined live instead of inferred from aggregate counters.
//
// Layering: src/obs sits below src/common, so the recorder never
// touches Status, logging or metrics — it returns plain data and the
// caller (src/server) decides what to log and count. Time comes from
// an injected Clock; under a ManualClock every duration is scripted,
// which is how the deterministic-snapshot test pins byte-identical
// JSON across server thread counts.
//
// Determinism contract: records carry a global sequence number
// assigned at Begin(). SnapshotJson() merges the shards and emits
// records in ascending sequence order with integer-only fields, so a
// scripted request sequence produces byte-identical snapshots no
// matter how the shards were scheduled.

namespace corrob {
namespace obs {

/// How a request's bytes were produced by the serving-efficiency
/// layer (docs/SERVING.md): a cold run, a cache replay, or one of the
/// coalescing roles.
enum class RequestRole : uint8_t {
  kCold = 0,        ///< Ran the corroboration itself, no sharing.
  kCacheHit = 1,    ///< Replayed from the result cache.
  kLeader = 2,      ///< Ran and published for coalesced followers.
  kFollower = 3,    ///< Waited for a leader's published bytes.
  kPromoted = 4,    ///< Follower promoted to leader; re-ran whole.
  kRejected = 5,    ///< Never ran: shed, quota-rejected, or failed.
};

/// Stable lowercase name, e.g. "cache_hit".
std::string_view RequestRoleName(RequestRole role);

/// One named point on a request's lifecycle timeline, relative to the
/// request's start.
struct RequestSpan {
  std::string name;
  int64_t at_nanos = 0;
};

/// A completed request as the ring remembers it. Every numeric field
/// is an integer (nanos / bytes / counts) so the JSON rendering is
/// byte-deterministic.
struct RequestRecord {
  /// Global arrival order, assigned by Begin(); never reused.
  uint64_t sequence = 0;
  /// Client-supplied request id (protocol v3), empty when absent.
  std::string client_request_id;
  std::string tenant;
  std::string dataset;
  /// Corroboration method (algorithm registry name).
  std::string method;
  /// Priority-class name ("interactive" | "batch" | "best_effort").
  std::string priority;
  RequestRole role = RequestRole::kCold;
  /// Why the request ended: a core Termination name for runs, or one
  /// of the serving labels ("cached", "coalesced", "shed",
  /// "quota_rejected", "error").
  std::string termination;
  int64_t start_nanos = 0;
  int64_t admission_wait_nanos = 0;
  int64_t service_nanos = 0;
  int64_t total_nanos = 0;
  int64_t response_bytes = 0;
  /// Lifecycle timeline; retained only when the request ran at least
  /// as long as the recorder's slow threshold (empty otherwise).
  std::vector<RequestSpan> spans;
};

/// What Begin() needs to know about an arriving request.
struct RequestStart {
  std::string client_request_id;
  std::string tenant;
  std::string dataset;
  std::string method;
  std::string priority;
  /// The request's effective deadline allowance (its own timeout or
  /// the class default), 0 when unbounded. The stuck-request watchdog
  /// flags in-flight requests exceeding a multiple of this.
  int64_t deadline_nanos = 0;
};

/// What End() needs to finalize a record.
struct RequestFinish {
  RequestRole role = RequestRole::kCold;
  std::string termination;
  int64_t admission_wait_nanos = 0;
  int64_t service_nanos = 0;
  int64_t response_bytes = 0;
};

/// End()'s receipt, so the caller can log/count without re-locking.
struct FinishSummary {
  int64_t total_nanos = 0;
  /// True when total_nanos reached the slow threshold (the record
  /// retained its span timeline).
  bool slow = false;
};

/// An in-flight request as introspection sees it.
struct ActiveSnapshot {
  uint64_t sequence = 0;
  std::string client_request_id;
  std::string tenant;
  std::string dataset;
  std::string method;
  std::string priority;
  int64_t age_nanos = 0;
  int64_t deadline_nanos = 0;
  bool flagged_stuck = false;
};

/// Cumulative recorder totals (never reset; survive ring wrap).
struct FlightRecorderStats {
  int64_t started = 0;
  int64_t completed = 0;
  int64_t active = 0;
  /// Completed records that fell off the ring.
  int64_t dropped = 0;
  /// Completed records that retained their span timeline.
  int64_t slow = 0;
};

class FlightRecorder {
 public:
  static constexpr int kLatencyBuckets = 64;

  struct Options {
    /// Completed-record ring capacity across all shards; 0 disarms
    /// the recorder (every call becomes a no-op).
    int capacity = 1024;
    /// Lock shards for the completed ring (clamped to [1, capacity]).
    int shards = 8;
    /// Records with total_nanos >= this keep their span timeline;
    /// 0 disables retention entirely.
    int64_t slow_threshold_nanos = 0;
    /// Time source; null → MonotonicClock::Get().
    const Clock* clock = nullptr;
  };

  explicit FlightRecorder(const Options& options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// False when capacity is 0: every mutator is a no-op and every
  /// snapshot is empty.
  [[nodiscard]] bool armed() const { return capacity_ > 0; }

  /// Registers an in-flight request, returning its handle (the global
  /// sequence number). Returns 0 when disarmed.
  [[nodiscard]] uint64_t Begin(RequestStart start);

  /// Appends a lifecycle span to an in-flight request's timeline.
  /// No-op for handle 0 or an already-finished handle.
  void AddSpan(uint64_t handle, std::string_view name);

  /// Completes a request: moves it from the active table into the
  /// ring, computing total_nanos from the injected clock.
  FinishSummary End(uint64_t handle, RequestFinish finish);

  /// The active table, ordered by sequence, with ages at `now_nanos`.
  [[nodiscard]] std::vector<ActiveSnapshot> ActiveRequests(
      int64_t now_nanos) const;

  /// Flags in-flight requests whose age exceeds `multiplier` times
  /// their deadline allowance (requests without a deadline are never
  /// flagged). Returns only the NEWLY flagged entries — each request
  /// is reported once — so the caller can log and count them without
  /// deduplicating.
  [[nodiscard]] std::vector<ActiveSnapshot> FlagStuck(int64_t now_nanos,
                                                      double multiplier);

  /// In-flight requests currently flagged as stuck.
  [[nodiscard]] int64_t stuck_now() const;

  [[nodiscard]] FlightRecorderStats stats() const;

  /// The recorder's introspection subtree: cumulative counts, the
  /// most recent `max_recent` completed records (ascending sequence),
  /// per-tenant aggregates (top `top_k` by request count), and the
  /// log2 latency histograms split cold/hit. Deterministic: byte-
  /// identical for identical record sets.
  [[nodiscard]] JsonValue SnapshotJson(int top_k, int max_recent) const;

 private:
  struct ActiveEntry {
    RequestStart start;
    int64_t start_nanos = 0;
    std::vector<RequestSpan> spans;
    bool flagged_stuck = false;
  };

  /// One lock shard of the completed ring.
  struct Shard {
    mutable std::mutex mutex;
    /// Circular buffer of the shard's most recent records.
    std::vector<RequestRecord> ring CORROB_GUARDED_BY(mutex);
    /// Next write slot in `ring` once it is full.
    size_t next CORROB_GUARDED_BY(mutex) = 0;
    int64_t completed CORROB_GUARDED_BY(mutex) = 0;
    int64_t dropped CORROB_GUARDED_BY(mutex) = 0;
  };

  /// Per-tenant cumulative aggregates (survive ring wrap).
  struct TenantTotals {
    int64_t requests = 0;
    int64_t total_nanos = 0;
    int64_t max_nanos = 0;
  };

  Shard* ShardOf(uint64_t sequence) {
    return shards_[sequence % shards_.size()].get();
  }

  int capacity_ = 0;
  int per_shard_capacity_ = 0;
  int64_t slow_threshold_nanos_ = 0;
  const Clock* clock_ = nullptr;

  mutable std::mutex active_mutex_;
  std::map<uint64_t, ActiveEntry> active_ CORROB_GUARDED_BY(active_mutex_);
  uint64_t next_sequence_ CORROB_GUARDED_BY(active_mutex_) = 1;
  int64_t started_ CORROB_GUARDED_BY(active_mutex_) = 0;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Cumulative aggregates updated at End(); separate from the ring
  /// so wrap never loses tenant/latency history.
  mutable std::mutex totals_mutex_;
  std::map<std::string, TenantTotals> tenants_
      CORROB_GUARDED_BY(totals_mutex_);
  int64_t cold_buckets_[kLatencyBuckets] CORROB_GUARDED_BY(totals_mutex_) =
      {};
  int64_t cold_count_ CORROB_GUARDED_BY(totals_mutex_) = 0;
  int64_t cold_sum_nanos_ CORROB_GUARDED_BY(totals_mutex_) = 0;
  int64_t hit_buckets_[kLatencyBuckets] CORROB_GUARDED_BY(totals_mutex_) =
      {};
  int64_t hit_count_ CORROB_GUARDED_BY(totals_mutex_) = 0;
  int64_t hit_sum_nanos_ CORROB_GUARDED_BY(totals_mutex_) = 0;
  int64_t slow_ CORROB_GUARDED_BY(totals_mutex_) = 0;
};

}  // namespace obs
}  // namespace corrob

#endif  // CORROB_OBS_FLIGHT_RECORDER_H_
