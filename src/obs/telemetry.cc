#include "obs/telemetry.h"

#include <algorithm>

namespace corrob {
namespace obs {

void TrustDistribution(const std::vector<double>& values, double* min_out,
                       double* mean_out, double* max_out) {
  if (values.empty()) {
    *min_out = 0.0;
    *mean_out = 0.0;
    *max_out = 0.0;
    return;
  }
  double lo = values[0];
  double hi = values[0];
  double sum = 0.0;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  *min_out = lo;
  *mean_out = sum / static_cast<double>(values.size());
  *max_out = hi;
}

namespace {

JsonValue IterationToJson(const IterationStats& stats) {
  JsonValue entry = JsonValue::Object();
  entry.Set("iteration", JsonValue::Int(stats.iteration));
  entry.Set("max_delta", JsonValue::Double(stats.max_delta));
  entry.Set("trust_min", JsonValue::Double(stats.trust_min));
  entry.Set("trust_mean", JsonValue::Double(stats.trust_mean));
  entry.Set("trust_max", JsonValue::Double(stats.trust_max));
  entry.Set("facts_committed", JsonValue::Int(stats.facts_committed));
  return entry;
}

JsonValue RoundToJson(const IncRoundEvent& round) {
  JsonValue entry = JsonValue::Object();
  entry.Set("round", JsonValue::Int(round.round));
  entry.Set("kind", JsonValue::Str(round.kind));
  entry.Set("positive_group", JsonValue::Int(round.positive_group));
  entry.Set("negative_group", JsonValue::Int(round.negative_group));
  entry.Set("positive_signature", JsonValue::Str(round.positive_signature));
  entry.Set("negative_signature", JsonValue::Str(round.negative_signature));
  entry.Set("fg_positive", JsonValue::Int(round.fg_positive));
  entry.Set("fg_negative", JsonValue::Int(round.fg_negative));
  entry.Set("part_positive", JsonValue::Int(round.part_positive));
  entry.Set("part_negative", JsonValue::Int(round.part_negative));
  entry.Set("prob_positive", JsonValue::Double(round.prob_positive));
  entry.Set("prob_negative", JsonValue::Double(round.prob_negative));
  entry.Set("delta_h_positive", JsonValue::Double(round.delta_h_positive));
  entry.Set("delta_h_negative", JsonValue::Double(round.delta_h_negative));
  entry.Set("committed_n", JsonValue::Int(round.committed_n));
  entry.Set("facts_committed", JsonValue::Int(round.facts_committed));
  entry.Set("trust_min", JsonValue::Double(round.trust_min));
  entry.Set("trust_mean", JsonValue::Double(round.trust_mean));
  entry.Set("trust_max", JsonValue::Double(round.trust_max));
  return entry;
}

bool ReadInt(const JsonValue& object, const char* key, int64_t* out,
             std::string* error) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    if (error != nullptr) {
      *error = std::string("missing or non-numeric field '") + key + "'";
    }
    return false;
  }
  *out = value->int_value();
  return true;
}

bool ReadDouble(const JsonValue& object, const char* key, double* out,
                std::string* error) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_number()) {
    if (error != nullptr) {
      *error = std::string("missing or non-numeric field '") + key + "'";
    }
    return false;
  }
  *out = value->double_value();
  return true;
}

bool ReadString(const JsonValue& object, const char* key, std::string* out,
                std::string* error) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || !value->is_string()) {
    if (error != nullptr) {
      *error = std::string("missing or non-string field '") + key + "'";
    }
    return false;
  }
  *out = value->string_value();
  return true;
}

}  // namespace

JsonValue TelemetryToJson(const RunTelemetry& telemetry) {
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::Str("corrob.telemetry/1"));
  root.Set("algorithm", JsonValue::Str(telemetry.algorithm));
  root.Set("num_facts", JsonValue::Int(telemetry.num_facts));
  root.Set("num_sources", JsonValue::Int(telemetry.num_sources));
  root.Set("iterations", JsonValue::Int(telemetry.iterations));
  root.Set("converged", JsonValue::Bool(telemetry.converged));
  JsonValue iteration_array = JsonValue::Array();
  for (const IterationStats& stats : telemetry.iteration_stats) {
    iteration_array.Append(IterationToJson(stats));
  }
  root.Set("iteration_stats", std::move(iteration_array));
  JsonValue round_array = JsonValue::Array();
  for (const IncRoundEvent& round : telemetry.rounds) {
    round_array.Append(RoundToJson(round));
  }
  root.Set("rounds", std::move(round_array));
  return root;
}

std::string TelemetryToJsonString(const RunTelemetry& telemetry) {
  return TelemetryToJson(telemetry).Dump(2) + "\n";
}

bool TelemetryFromJson(const JsonValue& json, RunTelemetry* out,
                       std::string* error) {
  if (!json.is_object()) {
    if (error != nullptr) *error = "telemetry root is not an object";
    return false;
  }
  const JsonValue* schema = json.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string_value() != "corrob.telemetry/1") {
    if (error != nullptr) {
      *error = "missing or unsupported telemetry schema marker";
    }
    return false;
  }
  RunTelemetry telemetry;
  if (!ReadString(json, "algorithm", &telemetry.algorithm, error)) {
    return false;
  }
  int64_t iterations = 0;
  if (!ReadInt(json, "num_facts", &telemetry.num_facts, error) ||
      !ReadInt(json, "num_sources", &telemetry.num_sources, error) ||
      !ReadInt(json, "iterations", &iterations, error)) {
    return false;
  }
  telemetry.iterations = static_cast<int32_t>(iterations);
  const JsonValue* converged = json.Find("converged");
  telemetry.converged = converged != nullptr && converged->is_bool() &&
                        converged->bool_value();

  const JsonValue* iteration_array = json.Find("iteration_stats");
  if (iteration_array != nullptr && iteration_array->is_array()) {
    for (const JsonValue& entry : iteration_array->items()) {
      IterationStats stats;
      int64_t iteration = 0;
      if (!ReadInt(entry, "iteration", &iteration, error) ||
          !ReadDouble(entry, "max_delta", &stats.max_delta, error) ||
          !ReadDouble(entry, "trust_min", &stats.trust_min, error) ||
          !ReadDouble(entry, "trust_mean", &stats.trust_mean, error) ||
          !ReadDouble(entry, "trust_max", &stats.trust_max, error) ||
          !ReadInt(entry, "facts_committed", &stats.facts_committed,
                   error)) {
        return false;
      }
      stats.iteration = static_cast<int32_t>(iteration);
      telemetry.iteration_stats.push_back(std::move(stats));
    }
  }

  const JsonValue* round_array = json.Find("rounds");
  if (round_array != nullptr && round_array->is_array()) {
    for (const JsonValue& entry : round_array->items()) {
      IncRoundEvent round;
      int64_t round_index = 0;
      int64_t positive_group = 0;
      int64_t negative_group = 0;
      if (!ReadInt(entry, "round", &round_index, error) ||
          !ReadString(entry, "kind", &round.kind, error) ||
          !ReadInt(entry, "positive_group", &positive_group, error) ||
          !ReadInt(entry, "negative_group", &negative_group, error) ||
          !ReadString(entry, "positive_signature",
                      &round.positive_signature, error) ||
          !ReadString(entry, "negative_signature",
                      &round.negative_signature, error) ||
          !ReadInt(entry, "fg_positive", &round.fg_positive, error) ||
          !ReadInt(entry, "fg_negative", &round.fg_negative, error) ||
          !ReadInt(entry, "part_positive", &round.part_positive, error) ||
          !ReadInt(entry, "part_negative", &round.part_negative, error) ||
          !ReadDouble(entry, "prob_positive", &round.prob_positive, error) ||
          !ReadDouble(entry, "prob_negative", &round.prob_negative, error) ||
          !ReadDouble(entry, "delta_h_positive", &round.delta_h_positive,
                      error) ||
          !ReadDouble(entry, "delta_h_negative", &round.delta_h_negative,
                      error) ||
          !ReadInt(entry, "committed_n", &round.committed_n, error) ||
          !ReadInt(entry, "facts_committed", &round.facts_committed,
                   error) ||
          !ReadDouble(entry, "trust_min", &round.trust_min, error) ||
          !ReadDouble(entry, "trust_mean", &round.trust_mean, error) ||
          !ReadDouble(entry, "trust_max", &round.trust_max, error)) {
        return false;
      }
      round.round = static_cast<int32_t>(round_index);
      round.positive_group = static_cast<int32_t>(positive_group);
      round.negative_group = static_cast<int32_t>(negative_group);
      telemetry.rounds.push_back(std::move(round));
    }
  }
  *out = std::move(telemetry);
  return true;
}

bool TelemetryFromJsonString(std::string_view text, RunTelemetry* out,
                             std::string* error) {
  JsonValue json;
  if (!JsonValue::Parse(text, &json, error)) return false;
  return TelemetryFromJson(json, out, error);
}

}  // namespace obs
}  // namespace corrob
