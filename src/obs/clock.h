#ifndef CORROB_OBS_CLOCK_H_
#define CORROB_OBS_CLOCK_H_

#include <cstdint>

// Injectable time source. Deterministic code (src/core, src/eval,
// src/synth, src/ml, and src/obs itself — see corrob-lint's
// nondeterminism rule) never reads the wall clock directly: anything
// that needs durations takes a `const Clock*` and callers decide
// whether that is the real monotonic clock (CLI, benches) or a
// ManualClock (tests, replay). Null clocks are the convention for
// "don't time anything".

namespace corrob {
namespace obs {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds from an arbitrary fixed epoch; monotonically
  /// non-decreasing within one process.
  virtual int64_t NowNanos() const = 0;
};

/// The process monotonic clock (std::chrono::steady_clock).
class MonotonicClock final : public Clock {
 public:
  int64_t NowNanos() const override;

  /// Shared immutable instance.
  static const MonotonicClock* Get();
};

/// A hand-cranked clock for tests: time moves only when told to.
class ManualClock final : public Clock {
 public:
  int64_t NowNanos() const override { return now_nanos_; }

  void SetNanos(int64_t nanos) { now_nanos_ = nanos; }
  void AdvanceNanos(int64_t nanos) { now_nanos_ += nanos; }

 private:
  int64_t now_nanos_ = 0;
};

}  // namespace obs
}  // namespace corrob

#endif  // CORROB_OBS_CLOCK_H_
