#include "obs/trace.h"

#include <algorithm>

namespace corrob {
namespace obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // lint: new-ok: intentionally leaked process-lifetime singleton
  return *recorder;
}

void TraceRecorder::Start(const Clock* clock) {
  clock_ = clock != nullptr ? clock : MonotonicClock::Get();
  epoch_nanos_ = clock_->NowNanos();
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_release);
}

TraceRecorder::ThreadBuffer* TraceRecorder::ThisThreadBuffer() {
  // Cache the buffer per (recorder generation, thread); Clear() bumps
  // the generation, which invalidates every thread's cache without
  // having to track the threads themselves.
  struct Cache {
    const TraceRecorder* recorder = nullptr;
    uint64_t generation = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  const uint64_t generation = generation_.load(std::memory_order_acquire);
  if (cache.recorder == this && cache.generation == generation) {
    return cache.buffer;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  cache = {this, generation, raw};
  return raw;
}

void TraceRecorder::RecordComplete(const char* name, int64_t start_nanos,
                                   int64_t end_nanos) {
  ThreadBuffer* buffer = ThisThreadBuffer();
  TraceEvent event;
  event.name = name;
  event.start_nanos = start_nanos;
  event.duration_nanos =
      end_nanos >= start_nanos ? end_nanos - start_nanos : 0;
  event.tid = buffer->tid;
  buffer->events.push_back(event);
}

int64_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t count = 0;
  for (const auto& buffer : buffers_) {
    count += static_cast<int64_t>(buffer->events.size());
  }
  return count;
}

JsonValue TraceRecorder::ToJson() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.duration_nanos > b.duration_nanos;
            });

  JsonValue trace_events = JsonValue::Array();
  for (const TraceEvent& event : events) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::Str(event.name));
    entry.Set("cat", JsonValue::Str("corrob"));
    entry.Set("ph", JsonValue::Str("X"));
    entry.Set("ts",
              JsonValue::Double(static_cast<double>(event.start_nanos) / 1e3));
    entry.Set("dur", JsonValue::Double(
                         static_cast<double>(event.duration_nanos) / 1e3));
    entry.Set("pid", JsonValue::Int(1));
    entry.Set("tid", JsonValue::Int(event.tid));
    trace_events.Append(std::move(entry));
  }
  JsonValue root = JsonValue::Object();
  root.Set("displayTimeUnit", JsonValue::Str("ms"));
  root.Set("traceEvents", std::move(trace_events));
  return root;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace obs
}  // namespace corrob
