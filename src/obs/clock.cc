#include "obs/clock.h"

#include <chrono>

namespace corrob {
namespace obs {

int64_t MonotonicClock::NowNanos() const {
  // The one sanctioned wall-clock read of the observability layer:
  // every span timestamp and stopwatch flows through here, and
  // deterministic code only ever receives it behind the Clock
  // interface (or not at all).
  // lint: nondet-ok: the injectable Clock boundary itself
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
}

const MonotonicClock* MonotonicClock::Get() {
  static const MonotonicClock clock;
  return &clock;
}

}  // namespace obs
}  // namespace corrob
