#include "ml/svm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace corrob {

namespace {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

Status LinearSvm::Fit(const std::vector<std::vector<double>>& features,
                      const std::vector<int>& labels) {
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  const size_t n = features.size();
  const size_t dim = features[0].size();
  for (const auto& row : features) {
    if (row.size() != dim) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  bool has_pos = false, has_neg = false;
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] != 0 && labels[i] != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
    y[i] = labels[i] == 1 ? 1.0 : -1.0;
    (labels[i] == 1 ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) {
    return Status::FailedPrecondition(
        "SVM training requires both classes to be present");
  }

  // Simplified SMO over the dual variables.
  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  Rng rng(options_.seed);

  // Linear kernel values are recomputed on demand; the weight vector
  // shortcut keeps decision evaluations O(dim).
  auto decision = [&](size_t i) {
    double sum = b;
    for (size_t j = 0; j < n; ++j) {
      if (alpha[j] == 0.0) continue;
      sum += alpha[j] * y[j] * Dot(features[j], features[i]);
    }
    return sum;
  };

  int stale_passes = 0;
  int total_passes = 0;
  const double c = options_.c;
  const double tol = options_.tolerance;
  while (stale_passes < options_.max_stale_passes &&
         total_passes < options_.max_passes) {
    int changed = 0;
    for (size_t i = 0; i < n; ++i) {
      double error_i = decision(i) - y[i];
      bool violates = (y[i] * error_i < -tol && alpha[i] < c) ||
                      (y[i] * error_i > tol && alpha[i] > 0.0);
      if (!violates) continue;

      size_t j = static_cast<size_t>(rng.NextBelow(n - 1));
      if (j >= i) ++j;
      double error_j = decision(j) - y[j];

      double alpha_i_old = alpha[i];
      double alpha_j_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, alpha[j] - alpha[i]);
        hi = std::min(c, c + alpha[j] - alpha[i]);
      } else {
        lo = std::max(0.0, alpha[i] + alpha[j] - c);
        hi = std::min(c, alpha[i] + alpha[j]);
      }
      if (lo >= hi) continue;

      double kii = Dot(features[i], features[i]);
      double kjj = Dot(features[j], features[j]);
      double kij = Dot(features[i], features[j]);
      double eta = 2.0 * kij - kii - kjj;
      if (eta >= 0.0) continue;

      alpha[j] -= y[j] * (error_i - error_j) / eta;
      alpha[j] = std::clamp(alpha[j], lo, hi);
      if (std::fabs(alpha[j] - alpha_j_old) < 1e-7) continue;
      alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j]);

      double b1 = b - error_i - y[i] * (alpha[i] - alpha_i_old) * kii -
                  y[j] * (alpha[j] - alpha_j_old) * kij;
      double b2 = b - error_j - y[i] * (alpha[i] - alpha_i_old) * kij -
                  y[j] * (alpha[j] - alpha_j_old) * kjj;
      if (alpha[i] > 0.0 && alpha[i] < c) {
        b = b1;
      } else if (alpha[j] > 0.0 && alpha[j] < c) {
        b = b2;
      } else {
        b = (b1 + b2) / 2.0;
      }
      ++changed;
    }
    ++total_passes;
    stale_passes = changed == 0 ? stale_passes + 1 : 0;
  }

  // Collapse the dual solution into a primal weight vector.
  weights_.assign(dim, 0.0);
  num_support_vectors_ = 0;
  for (size_t i = 0; i < n; ++i) {
    if (alpha[i] == 0.0) continue;
    ++num_support_vectors_;
    for (size_t d = 0; d < dim; ++d) {
      weights_[d] += alpha[i] * y[i] * features[i][d];
    }
  }
  bias_ = b;
  return Status::OK();
}

double LinearSvm::DecisionValue(const std::vector<double>& features) const {
  CORROB_CHECK(features.size() == weights_.size())
      << "feature width " << features.size() << " != model width "
      << weights_.size();
  return Dot(weights_, features) + bias_;
}

}  // namespace corrob
