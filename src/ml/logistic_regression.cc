#include "ml/logistic_regression.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace corrob {

Status LogisticRegression::Fit(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels) {
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("cannot fit on an empty dataset");
  }
  const size_t n = features.size();
  const size_t dim = features[0].size();
  for (const auto& row : features) {
    if (row.size() != dim) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  for (int label : labels) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0 or 1");
    }
  }

  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  std::vector<double> grad(dim);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double margin = bias_;
      for (size_t d = 0; d < dim; ++d) margin += weights_[d] * features[i][d];
      double error = Sigmoid(margin) - static_cast<double>(labels[i]);
      for (size_t d = 0; d < dim; ++d) grad[d] += error * features[i][d];
      grad_bias += error;
    }
    double inv_n = 1.0 / static_cast<double>(n);
    double max_grad = std::fabs(grad_bias * inv_n);
    for (size_t d = 0; d < dim; ++d) {
      grad[d] = grad[d] * inv_n + options_.l2 * weights_[d];
      max_grad = std::max(max_grad, std::fabs(grad[d]));
    }
    for (size_t d = 0; d < dim; ++d) {
      weights_[d] -= options_.learning_rate * grad[d];
    }
    bias_ -= options_.learning_rate * grad_bias * inv_n;
    if (max_grad < options_.gradient_tolerance) break;
  }
  return Status::OK();
}

double LogisticRegression::DecisionValue(
    const std::vector<double>& features) const {
  CORROB_CHECK(features.size() == weights_.size())
      << "feature width " << features.size() << " != model width "
      << weights_.size();
  double margin = bias_;
  for (size_t d = 0; d < weights_.size(); ++d) {
    margin += weights_[d] * features[d];
  }
  return margin;
}

double LogisticRegression::PredictProbability(
    const std::vector<double>& features) const {
  return Sigmoid(DecisionValue(features));
}

}  // namespace corrob
