#include "ml/cross_validation.h"

#include "common/random.h"

namespace corrob {

Result<std::vector<int>> StratifiedFolds(
    const std::vector<int>& labels, const CrossValidationOptions& options) {
  if (options.folds < 2) {
    return Status::InvalidArgument("folds must be >= 2");
  }
  if (static_cast<size_t>(options.folds) > labels.size()) {
    return Status::InvalidArgument("more folds than rows");
  }
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] == 1 ? positives : negatives).push_back(i);
  }
  Rng rng(options.seed);
  rng.Shuffle(&positives);
  rng.Shuffle(&negatives);

  std::vector<int> fold_of(labels.size(), 0);
  int cursor = 0;
  for (size_t i : positives) {
    fold_of[i] = cursor;
    cursor = (cursor + 1) % options.folds;
  }
  for (size_t i : negatives) {
    fold_of[i] = cursor;
    cursor = (cursor + 1) % options.folds;
  }
  return fold_of;
}

Result<std::vector<bool>> CrossValidatePredictions(
    const MlDataset& data,
    const std::function<std::unique_ptr<BinaryClassifier>()>& make_classifier,
    const CrossValidationOptions& options) {
  if (data.features.size() != data.labels.size()) {
    return Status::InvalidArgument("features/labels size mismatch");
  }
  CORROB_ASSIGN_OR_RETURN(std::vector<int> fold_of,
                          StratifiedFolds(data.labels, options));

  std::vector<bool> predictions(data.labels.size(), false);
  for (int fold = 0; fold < options.folds; ++fold) {
    std::vector<std::vector<double>> train_x;
    std::vector<int> train_y;
    std::vector<size_t> test_rows;
    for (size_t i = 0; i < data.labels.size(); ++i) {
      if (fold_of[i] == fold) {
        test_rows.push_back(i);
      } else {
        train_x.push_back(data.features[i]);
        train_y.push_back(data.labels[i]);
      }
    }
    if (test_rows.empty()) continue;
    std::unique_ptr<BinaryClassifier> model = make_classifier();
    CORROB_RETURN_NOT_OK(model->Fit(train_x, train_y));
    for (size_t i : test_rows) {
      predictions[i] = model->Predict(data.features[i]);
    }
  }
  return predictions;
}

}  // namespace corrob
