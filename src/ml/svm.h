#ifndef CORROB_ML_SVM_H_
#define CORROB_ML_SVM_H_

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace corrob {

struct LinearSvmOptions {
  /// Soft-margin penalty.
  double c = 1.0;
  /// KKT violation tolerance.
  double tolerance = 1e-3;
  /// SMO terminates after this many consecutive full passes without
  /// an alpha update.
  int max_stale_passes = 5;
  /// Hard cap on total passes over the data.
  int max_passes = 200;
  uint64_t seed = 17;
};

/// Linear support-vector machine trained with the simplified SMO
/// algorithm (Platt 1998) — the ML-SVM (SMO) baseline of paper
/// §6.1.1, mirroring Weka's SMO with a linear kernel.
class LinearSvm final : public BinaryClassifier {
 public:
  explicit LinearSvm(LinearSvmOptions options = {}) : options_(options) {}

  [[nodiscard]] Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<int>& labels) override;

  /// Signed distance to the separating hyperplane (unnormalized).
  double DecisionValue(const std::vector<double>& features) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  /// Number of support vectors of the last fit.
  int num_support_vectors() const { return num_support_vectors_; }

 private:
  LinearSvmOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  int num_support_vectors_ = 0;
};

}  // namespace corrob

#endif  // CORROB_ML_SVM_H_
