#ifndef CORROB_ML_CROSS_VALIDATION_H_
#define CORROB_ML_CROSS_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "ml/classifier.h"
#include "ml/features.h"

namespace corrob {

struct CrossValidationOptions {
  /// Paper §6.1.1 reports 10-fold cross-validation.
  int folds = 10;
  uint64_t seed = 10;
};

/// Assigns each row to a fold with per-class (stratified) round-robin
/// after a seeded shuffle. Returned vector holds fold ids in [0,
/// folds). Fails if folds < 2 or folds > number of rows.
[[nodiscard]] Result<std::vector<int>> StratifiedFolds(const std::vector<int>& labels,
                                         const CrossValidationOptions& options);

/// Runs k-fold cross-validation: for each fold, trains a fresh
/// classifier from `make_classifier` on the other folds and predicts
/// the held-out rows. Returns out-of-fold predictions aligned with
/// `data` rows.
[[nodiscard]] Result<std::vector<bool>> CrossValidatePredictions(
    const MlDataset& data,
    const std::function<std::unique_ptr<BinaryClassifier>()>& make_classifier,
    const CrossValidationOptions& options = {});

}  // namespace corrob

#endif  // CORROB_ML_CROSS_VALIDATION_H_
