#include "ml/features.h"

namespace corrob {

std::vector<double> VoteFeatures(const Dataset& dataset, FactId fact,
                                 VoteEncoding encoding) {
  size_t sources = static_cast<size_t>(dataset.num_sources());
  size_t width = encoding == VoteEncoding::kSigned ? sources : 2 * sources;
  std::vector<double> features(width, 0.0);
  for (const SourceVote& sv : dataset.VotesOnFact(fact)) {
    size_t s = static_cast<size_t>(sv.source);
    if (encoding == VoteEncoding::kSigned) {
      features[s] = sv.vote == Vote::kTrue ? 1.0 : -1.0;
    } else {
      features[2 * s + (sv.vote == Vote::kTrue ? 0 : 1)] = 1.0;
    }
  }
  return features;
}

MlDataset ExtractGoldenFeatures(const Dataset& dataset,
                                const GoldenSet& golden,
                                VoteEncoding encoding) {
  MlDataset out;
  out.features.reserve(golden.size());
  out.labels.reserve(golden.size());
  out.facts.reserve(golden.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    out.features.push_back(VoteFeatures(dataset, golden.fact(i), encoding));
    out.labels.push_back(golden.label(i) ? 1 : 0);
    out.facts.push_back(golden.fact(i));
  }
  return out;
}

}  // namespace corrob
