#ifndef CORROB_ML_FEATURES_H_
#define CORROB_ML_FEATURES_H_

#include <vector>

#include "data/dataset.h"
#include "data/truth.h"

namespace corrob {

/// How votes are turned into classifier features (paper §6.1.1 "using
/// the votes as features").
enum class VoteEncoding {
  /// One feature per source: T -> +1, F -> -1, '-' -> 0. Makes the F
  /// votes the most discriminating features, as the paper observes.
  kSigned,
  /// Two indicator features per source: (voted T, voted F). Lets a
  /// model weight affirmative and negative evidence independently.
  kIndicator,
};

/// A supervised dataset extracted from votes.
struct MlDataset {
  std::vector<std::vector<double>> features;
  /// Labels in {0, 1}; 1 = fact is true.
  std::vector<int> labels;
  /// The fact behind each row (golden entry order).
  std::vector<FactId> facts;
};

/// Feature vector of one fact.
std::vector<double> VoteFeatures(const Dataset& dataset, FactId fact,
                                 VoteEncoding encoding);

/// Supervised rows for every golden entry, in golden order.
MlDataset ExtractGoldenFeatures(const Dataset& dataset,
                                const GoldenSet& golden,
                                VoteEncoding encoding);

}  // namespace corrob

#endif  // CORROB_ML_FEATURES_H_
