#ifndef CORROB_ML_LOGISTIC_REGRESSION_H_
#define CORROB_ML_LOGISTIC_REGRESSION_H_

#include <vector>

#include "ml/classifier.h"

namespace corrob {

struct LogisticRegressionOptions {
  double learning_rate = 0.5;
  int epochs = 2000;
  /// L2 penalty on the weights (not the intercept).
  double l2 = 1e-3;
  /// Early-stop when the max absolute gradient falls below this.
  double gradient_tolerance = 1e-6;
};

/// L2-regularized logistic regression trained with full-batch
/// gradient descent — the "logistic classifier with default
/// parameter" baseline of paper §6.1.1 (ML-Logistic).
class LogisticRegression final : public BinaryClassifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  [[nodiscard]] Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<int>& labels) override;

  /// Log-odds of the positive class.
  double DecisionValue(const std::vector<double>& features) const override;

  /// P(label = 1 | features).
  double PredictProbability(const std::vector<double>& features) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace corrob

#endif  // CORROB_ML_LOGISTIC_REGRESSION_H_
