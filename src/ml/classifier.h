#ifndef CORROB_ML_CLASSIFIER_H_
#define CORROB_ML_CLASSIFIER_H_

#include <vector>

#include "common/result.h"

namespace corrob {

/// Interface shared by the ML baselines so the cross-validation
/// harness can treat them uniformly.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on rows `features` with labels in {0, 1}. Fails on shape
  /// mismatches or degenerate input (e.g. a single class for models
  /// that cannot represent it).
  [[nodiscard]] virtual Status Fit(const std::vector<std::vector<double>>& features,
                     const std::vector<int>& labels) = 0;

  /// Raw decision value; >= 0 means the positive class.
  virtual double DecisionValue(const std::vector<double>& features) const = 0;

  /// Predicted label in {0, 1}.
  bool Predict(const std::vector<double>& features) const {
    return DecisionValue(features) >= 0.0;
  }
};

}  // namespace corrob

#endif  // CORROB_ML_CLASSIFIER_H_
