#ifndef CORROB_TEXT_ADDRESS_H_
#define CORROB_TEXT_ADDRESS_H_

#include <string>
#include <string_view>

namespace corrob {

/// Rule-based US street-address normalizer — the "rule-based script to
/// normalize the addresses of all listings" from the paper's dedup
/// pipeline (§6.2.1). Two listings share a dedup group iff their
/// normalized addresses are byte-identical.
///
/// Rules applied, in order:
///  1. lowercase; punctuation and '#' become spaces; whitespace
///     collapsed,
///  2. unit designators and their operand dropped (apt/suite/ste/
///     floor/fl/unit/rm followed by a token),
///  3. directionals abbreviated (west -> w, northeast/north-east -> ne, ...),
///  4. street suffixes abbreviated (street -> st, avenue -> ave,
///     boulevard -> blvd, road -> rd, drive -> dr, place -> pl,
///     lane -> ln, court -> ct, square -> sq, parkway -> pkwy,
///     highway -> hwy, terrace -> ter, ...),
///  5. ordinal suffixes stripped from numbers (46th -> 46, 2nd -> 2),
///  6. number words first..tenth mapped to digits (useful for
///     "Fifth Avenue" -> "5 ave").
std::string NormalizeAddress(std::string_view address);

}  // namespace corrob

#endif  // CORROB_TEXT_ADDRESS_H_
