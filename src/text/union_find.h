#ifndef CORROB_TEXT_UNION_FIND_H_
#define CORROB_TEXT_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace corrob {

/// Disjoint-set forest with path halving and union by size, used to
/// merge listing clusters during deduplication.
class UnionFind {
 public:
  /// Creates `n` singleton sets labeled 0..n-1.
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of x's set.
  size_t Find(size_t x) {
    CORROB_DCHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // Path halving.
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  /// True if a and b are in the same set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Size of x's set.
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  /// Number of disjoint sets remaining.
  size_t num_sets() const { return num_sets_; }

  size_t num_elements() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace corrob

#endif  // CORROB_TEXT_UNION_FIND_H_
