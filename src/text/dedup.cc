#include "text/dedup.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "text/address.h"
#include "text/phonetic.h"
#include "text/similarity.h"
#include "text/tokenizer.h"
#include "text/union_find.h"

namespace corrob {

namespace {

/// The string compared across listings: the raw name plus the
/// *normalized* address. Address formatting differences are exactly
/// what NormalizeAddress already canonicalized away; leaving the raw
/// form in would re-introduce them as spurious dissimilarity.
std::string ComparisonText(const RawListing& listing,
                           const std::string& normalized_address) {
  return listing.name + " " + normalized_address;
}

}  // namespace

Result<DedupResult> Deduplicate(const std::vector<RawListing>& listings,
                                const DedupOptions& options) {
  if (options.similarity_threshold < 0.0 ||
      options.similarity_threshold > 1.0) {
    return Status::InvalidArgument("similarity_threshold must be in [0,1]");
  }

  const size_t n = listings.size();
  UnionFind clusters(n);

  // Group by normalized address; only listings in the same group are
  // candidate duplicates (the paper's blocking step).
  std::unordered_map<std::string, std::vector<size_t>> by_address;
  std::vector<std::string> normalized(n);
  for (size_t i = 0; i < n; ++i) {
    normalized[i] = NormalizeAddress(listings[i].address);
    by_address[normalized[i]].push_back(i);
  }

  // Pairwise similarity within each block; union matches.
  for (const auto& [address, members] : by_address) {
    std::vector<TermVector> term_vectors(members.size());
    std::vector<TermVector> gram_vectors(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      std::string text =
          ComparisonText(listings[members[i]], normalized[members[i]]);
      term_vectors[i] = TermVector::FromFeatures(WordTokens(text));
      gram_vectors[i] = TermVector::FromFeatures(CharNgrams(text, 3));
    }
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (clusters.Connected(members[i], members[j])) continue;
        double sim = std::max(term_vectors[i].Cosine(term_vectors[j]),
                              gram_vectors[i].Cosine(gram_vectors[j]));
        bool merge = sim >= options.similarity_threshold;
        if (!merge && options.use_phonetic_fallback) {
          merge = PhoneticallySimilarNames(listings[members[i]].name,
                                           listings[members[j]].name);
        }
        if (merge) {
          clusters.Union(members[i], members[j]);
        }
      }
    }
  }

  // Materialize entities in a deterministic order (by smallest member
  // index) so repeated runs produce identical fact ids.
  DedupResult result;
  result.entity_of.assign(n, 0);
  std::map<size_t, size_t> root_to_entity;  // ordered by root index
  std::vector<size_t> roots(n);
  for (size_t i = 0; i < n; ++i) roots[i] = clusters.Find(i);
  // A root is not necessarily the smallest member; remap through the
  // smallest member index per root.
  std::unordered_map<size_t, size_t> root_min;
  for (size_t i = 0; i < n; ++i) {
    auto it = root_min.find(roots[i]);
    if (it == root_min.end()) {
      root_min.emplace(roots[i], i);
    } else {
      it->second = std::min(it->second, i);
    }
  }
  for (const auto& [root, min_member] : root_min) {
    root_to_entity[min_member] = root;
  }
  std::unordered_map<size_t, size_t> root_to_index;
  for (const auto& [min_member, root] : root_to_entity) {
    size_t entity_index = result.entities.size();
    root_to_index[root] = entity_index;
    result.entities.push_back(DedupEntity{});
  }
  for (size_t i = 0; i < n; ++i) {
    result.entity_of[i] = root_to_index[roots[i]];
    result.entities[result.entity_of[i]].members.push_back(i);
  }

  // Canonical names and addresses.
  for (DedupEntity& entity : result.entities) {
    std::map<std::string, int> name_counts;
    for (size_t member : entity.members) {
      ++name_counts[listings[member].name];
    }
    int best = 0;
    for (const auto& [name, count] : name_counts) {
      if (count > best) {  // std::map order breaks ties lexicographically.
        best = count;
        entity.canonical_name = name;
      }
    }
    entity.normalized_address = normalized[entity.members.front()];
  }

  // Build the vote matrix: one fact per entity, named
  // "<canonical name> @ <normalized address>#<index>" for uniqueness.
  DatasetBuilder builder;
  for (size_t e = 0; e < result.entities.size(); ++e) {
    builder.AddFact(result.entities[e].canonical_name + " @ " +
                    result.entities[e].normalized_address + " #" +
                    std::to_string(e));
  }
  // Register sources in first-appearance order for determinism.
  for (const RawListing& listing : listings) {
    builder.AddSource(listing.source);
  }
  // F beats T within one (source, entity): an explicit CLOSED marker
  // is a deliberate negative statement; a surviving affirmative copy
  // is usually just stale.
  std::unordered_map<int64_t, Vote> pair_votes;
  for (size_t i = 0; i < n; ++i) {
    SourceId s = builder.AddSource(listings[i].source);
    int64_t key = static_cast<int64_t>(s) * static_cast<int64_t>(n + 1) +
                  static_cast<int64_t>(result.entity_of[i]);
    Vote vote = listings[i].closed ? Vote::kFalse : Vote::kTrue;
    auto [it, inserted] = pair_votes.emplace(key, vote);
    if (!inserted && vote == Vote::kFalse) it->second = Vote::kFalse;
  }
  for (const auto& [key, vote] : pair_votes) {
    SourceId s = static_cast<SourceId>(key / static_cast<int64_t>(n + 1));
    FactId f = static_cast<FactId>(key % static_cast<int64_t>(n + 1));
    CORROB_CHECK_OK(builder.SetVote(s, f, vote));
  }
  result.dataset = builder.Build();
  return result;
}

}  // namespace corrob
