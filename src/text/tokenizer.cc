#include "text/tokenizer.h"

#include <cctype>

#include "common/logging.h"

namespace corrob {

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> CharNgrams(std::string_view text, int n) {
  CORROB_CHECK(n >= 1) << "n-gram size must be positive";
  // Canonicalize: lowercase, collapse non-alphanumeric runs to ' '.
  std::string canon = " ";
  bool last_space = true;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      canon += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_space = false;
    } else if (!last_space) {
      canon += ' ';
      last_space = true;
    }
  }
  if (!last_space) canon += ' ';

  std::vector<std::string> grams;
  if (static_cast<int>(canon.size()) < n) return grams;
  grams.reserve(canon.size() - static_cast<size_t>(n) + 1);
  for (size_t i = 0; i + static_cast<size_t>(n) <= canon.size(); ++i) {
    grams.push_back(canon.substr(i, static_cast<size_t>(n)));
  }
  return grams;
}

}  // namespace corrob
