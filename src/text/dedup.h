#ifndef CORROB_TEXT_DEDUP_H_
#define CORROB_TEXT_DEDUP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace corrob {

/// One listing as crawled from a source, before entity resolution.
struct RawListing {
  std::string source;   ///< e.g. "Yellowpages"
  std::string name;     ///< e.g. "Danny's Grand Sea Palace"
  std::string address;  ///< e.g. "346 West 46th St, New York"
  /// True when the source marks the listing CLOSED (an F vote);
  /// otherwise the listing is an affirmative statement (a T vote).
  bool closed = false;
  /// Optional stable key identifying the underlying real-world entity,
  /// used only to *audit* dedup quality on simulated crawls where the
  /// generator knows the truth. Ignored by the pipeline itself.
  std::string entity_hint;
};

/// Configuration of the deduplication pipeline (paper §6.2.1).
struct DedupOptions {
  /// Minimum ListingSimilarity (max of term and 3-gram cosine) between
  /// two listings' "name address" strings for them to be merged.
  double similarity_threshold = 0.8;
  /// When true, two listings in the same address block whose names
  /// are phonetically equivalent (token-wise Soundex match, see
  /// text/phonetic.h) also merge, even below the cosine threshold —
  /// catches misspellings like "Palace" vs "Pallace" that 3-grams
  /// punish. Off by default to keep the paper's pipeline exact.
  bool use_phonetic_fallback = false;
};

/// One resolved entity: a cluster of raw listings judged to denote the
/// same real-world restaurant.
struct DedupEntity {
  /// Canonical display name: the most frequent raw name in the
  /// cluster (ties broken lexicographically).
  std::string canonical_name;
  /// Normalized address shared by the cluster.
  std::string normalized_address;
  /// Indices into the input listing vector.
  std::vector<size_t> members;
};

/// Result of deduplication: entities plus the vote matrix they induce.
struct DedupResult {
  std::vector<DedupEntity> entities;
  /// entity_of[i] = index into `entities` for input listing i.
  std::vector<size_t> entity_of;
  /// One fact per entity (fact id == entity index), one source per
  /// distinct RawListing::source. A source with both an open and a
  /// CLOSED listing for the same entity yields an F vote (an explicit
  /// dispute outweighs a stale affirmative copy).
  Dataset dataset;
};

/// Runs the paper's cleaning strategy: normalize addresses, group
/// listings by normalized address, link listings within a group whose
/// similarity is >= the threshold (union-find closure), and emit one
/// fact per cluster.
[[nodiscard]] Result<DedupResult> Deduplicate(const std::vector<RawListing>& listings,
                                const DedupOptions& options = {});

}  // namespace corrob

#endif  // CORROB_TEXT_DEDUP_H_
