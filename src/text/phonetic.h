#ifndef CORROB_TEXT_PHONETIC_H_
#define CORROB_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace corrob {

/// American Soundex code of a word: first letter plus three digits
/// ("Robert" -> "R163", "Rupert" -> "R163"). Non-alphabetic
/// characters are ignored; an input with no letters yields "".
/// Classic rules: adjacent same-code letters collapse (including
/// across 'H'/'W'), vowels separate codes, pad with zeros.
std::string Soundex(std::string_view word);

/// True if every word token of `a` has a Soundex match among the
/// tokens of `b` and vice versa — a loose phonetic equality usable as
/// an extra dedup signal for misspelled restaurant names
/// ("Palace" vs "Pallace").
bool PhoneticallySimilarNames(std::string_view a, std::string_view b);

}  // namespace corrob

#endif  // CORROB_TEXT_PHONETIC_H_
