#include "text/phonetic.h"

#include <cctype>
#include <vector>

#include "text/tokenizer.h"

namespace corrob {

namespace {

/// Soundex digit for a letter, '0' for vowels/Y, or 0 for H/W (which
/// are transparent: they do not break runs of equal codes).
char SoundexCode(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    case 'h':
    case 'w':
      return 0;  // Transparent.
    default:
      return '0';  // Vowels and y: separators.
  }
}

}  // namespace

std::string Soundex(std::string_view word) {
  std::string letters;
  for (char c : word) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      letters += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  if (letters.empty()) return "";

  std::string out(1, letters[0]);
  char previous_code = SoundexCode(letters[0]);
  for (size_t i = 1; i < letters.size() && out.size() < 4; ++i) {
    char code = SoundexCode(letters[i]);
    if (code == 0) continue;  // H/W: keep previous_code as-is.
    if (code != '0' && code != previous_code) {
      out += code;
    }
    previous_code = code;
  }
  out.resize(4, '0');
  return out;
}

bool PhoneticallySimilarNames(std::string_view a, std::string_view b) {
  std::vector<std::string> tokens_a = WordTokens(a);
  std::vector<std::string> tokens_b = WordTokens(b);
  if (tokens_a.empty() || tokens_b.empty()) {
    return tokens_a.empty() && tokens_b.empty();
  }
  auto covered = [](const std::vector<std::string>& from,
                    const std::vector<std::string>& into) {
    for (const std::string& token : from) {
      std::string code = Soundex(token);
      bool found = false;
      for (const std::string& other : into) {
        if (Soundex(other) == code) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return covered(tokens_a, tokens_b) && covered(tokens_b, tokens_a);
}

}  // namespace corrob
