#ifndef CORROB_TEXT_TOKENIZER_H_
#define CORROB_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace corrob {

/// Splits text into lower-cased alphanumeric word tokens; every other
/// character is a separator. "Danny's Grand!" -> {"danny", "s", "grand"}.
std::vector<std::string> WordTokens(std::string_view text);

/// Character n-grams of the lower-cased text with non-alphanumeric
/// runs collapsed to single spaces and the result padded with one
/// leading/trailing space, e.g. CharNgrams("ab", 3) over " ab " ->
/// {" ab", "ab "}. Returns an empty vector when the padded text is
/// shorter than n. Requires n >= 1.
std::vector<std::string> CharNgrams(std::string_view text, int n);

}  // namespace corrob

#endif  // CORROB_TEXT_TOKENIZER_H_
