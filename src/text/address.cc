#include "text/address.h"

#include <array>
#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"

namespace corrob {

namespace {

// Canonical abbreviation table: token -> replacement.
constexpr std::array<std::pair<std::string_view, std::string_view>, 34>
    kTokenRewrites = {{
        // Directionals.
        {"west", "w"},
        {"east", "e"},
        {"north", "n"},
        {"south", "s"},
        {"northwest", "nw"},
        {"northeast", "ne"},
        {"southwest", "sw"},
        {"southeast", "se"},
        // Street suffixes (USPS-style).
        {"street", "st"},
        {"avenue", "ave"},
        {"av", "ave"},
        {"boulevard", "blvd"},
        {"road", "rd"},
        {"drive", "dr"},
        {"place", "pl"},
        {"lane", "ln"},
        {"court", "ct"},
        {"square", "sq"},
        {"parkway", "pkwy"},
        {"highway", "hwy"},
        {"terrace", "ter"},
        {"circle", "cir"},
        {"plaza", "plz"},
        {"alley", "aly"},
        // Number words.
        {"first", "1"},
        {"second", "2"},
        {"third", "3"},
        {"fourth", "4"},
        {"fifth", "5"},
        {"sixth", "6"},
        {"seventh", "7"},
        {"eighth", "8"},
        {"ninth", "9"},
        {"tenth", "10"},
    }};

constexpr std::array<std::string_view, 8> kUnitDesignators = {
    "apt", "apartment", "suite", "ste", "floor", "fl", "unit", "rm"};

bool IsUnitDesignator(std::string_view token) {
  for (std::string_view unit : kUnitDesignators) {
    if (token == unit) return true;
  }
  return false;
}

// Strips an ordinal suffix from a digits+suffix token: "46th" -> "46".
std::string StripOrdinal(const std::string& token) {
  size_t digits = 0;
  while (digits < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[digits])))
    ++digits;
  if (digits == 0 || digits == token.size()) return token;
  std::string suffix = token.substr(digits);
  if (suffix == "st" || suffix == "nd" || suffix == "rd" || suffix == "th") {
    return token.substr(0, digits);
  }
  return token;
}

std::string RewriteToken(const std::string& token) {
  for (const auto& [from, to] : kTokenRewrites) {
    if (token == from) return std::string(to);
  }
  return StripOrdinal(token);
}

}  // namespace

std::string NormalizeAddress(std::string_view address) {
  // Step 1: lowercase and split on non-alphanumerics.
  std::string spaced;
  spaced.reserve(address.size());
  for (char c : address) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      spaced +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      spaced += ' ';
    }
  }
  std::vector<std::string> tokens = SplitWhitespace(spaced);

  // Step 2: drop unit designators together with their operand.
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (IsUnitDesignator(tokens[i])) {
      ++i;  // Skip the unit number as well (if present).
      continue;
    }
    kept.push_back(tokens[i]);
  }

  // Steps 3-6: per-token rewrites.
  for (std::string& token : kept) token = RewriteToken(token);

  return Join(kept, " ");
}

}  // namespace corrob
