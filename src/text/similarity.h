#ifndef CORROB_TEXT_SIMILARITY_H_
#define CORROB_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace corrob {

/// Sparse count vector over string features (terms or n-grams).
class TermVector {
 public:
  TermVector() = default;

  /// Builds a count vector from features.
  static TermVector FromFeatures(const std::vector<std::string>& features);

  /// Cosine similarity with `other`; 0 when either vector is empty.
  double Cosine(const TermVector& other) const;

  bool empty() const { return counts_.empty(); }
  size_t num_features() const { return counts_.size(); }

 private:
  std::unordered_map<std::string, double> counts_;
  double norm_ = 0.0;
};

/// Cosine similarity of word-token count vectors (paper: "cosine
/// similarity score at the term level").
double TermCosine(std::string_view a, std::string_view b);

/// Cosine similarity of character 3-gram count vectors (paper:
/// "as well as 3-gram level").
double TrigramCosine(std::string_view a, std::string_view b);

/// The dedup pipeline's listing similarity: the maximum of the term
/// and 3-gram cosines, so either representation can establish a match
/// (the paper combines both levels under one 0.8 threshold).
double ListingSimilarity(std::string_view a, std::string_view b);

}  // namespace corrob

#endif  // CORROB_TEXT_SIMILARITY_H_
