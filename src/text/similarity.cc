#include "text/similarity.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace corrob {

TermVector TermVector::FromFeatures(const std::vector<std::string>& features) {
  TermVector v;
  for (const std::string& f : features) v.counts_[f] += 1.0;
  double sum_sq = 0.0;
  for (const auto& [feature, count] : v.counts_) sum_sq += count * count;
  v.norm_ = std::sqrt(sum_sq);
  return v;
}

double TermVector::Cosine(const TermVector& other) const {
  if (counts_.empty() || other.counts_.empty()) return 0.0;
  // Iterate over the smaller map.
  const TermVector* small = this;
  const TermVector* large = &other;
  if (small->counts_.size() > large->counts_.size()) std::swap(small, large);
  double dot = 0.0;
  for (const auto& [feature, count] : small->counts_) {
    auto it = large->counts_.find(feature);
    if (it != large->counts_.end()) dot += count * it->second;
  }
  double cosine = dot / (norm_ * other.norm_);
  // Guard the floating-point boundary so identical vectors compare
  // equal to a threshold of exactly 1.0.
  if (cosine > 1.0 - 1e-12) return 1.0;
  return cosine < 0.0 ? 0.0 : cosine;
}

double TermCosine(std::string_view a, std::string_view b) {
  return TermVector::FromFeatures(WordTokens(a))
      .Cosine(TermVector::FromFeatures(WordTokens(b)));
}

double TrigramCosine(std::string_view a, std::string_view b) {
  return TermVector::FromFeatures(CharNgrams(a, 3))
      .Cosine(TermVector::FromFeatures(CharNgrams(b, 3)));
}

double ListingSimilarity(std::string_view a, std::string_view b) {
  return std::max(TermCosine(a, b), TrigramCosine(a, b));
}

}  // namespace corrob
