#ifndef CORROB_CORE_VOTE_MATRIX_H_
#define CORROB_CORE_VOTE_MATRIX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"

namespace corrob {

/// Compressed sparse vote matrix shared by the iterative
/// corroborators' hot loops (the trust-propagation sweeps of
/// TwoEstimate, ThreeEstimate, TruthFinder and Cosine, and
/// IncEstimate's projection scans are all sparse matrix-vector
/// products over this structure).
///
/// Both orientations are stored in structure-of-arrays form so the
/// inner loops touch only the bytes they need:
///   - CSR by fact:   row f lists its voters (ascending source id)
///                    with a parallel 0/1 "is-T-vote" array;
///   - CSC by source: column s lists the facts it voted on (ascending
///                    fact id) with the same parallel vote array.
/// Entry order is identical to Dataset::VotesOnFact /
/// Dataset::VotesBySource, so any computation ported from the Dataset
/// spans onto this layout visits votes in the same order and produces
/// bit-identical floating-point results.
///
/// Build one per Corroborator::Run() (O(votes) copy) and reuse it for
/// every iteration. Immutable after construction; safe to read from
/// any number of threads.
class VoteMatrix {
 public:
  VoteMatrix() = default;
  explicit VoteMatrix(const Dataset& dataset);

  int32_t num_facts() const { return num_facts_; }
  int32_t num_sources() const { return num_sources_; }
  int64_t num_votes() const {
    return static_cast<int64_t>(fact_sources_.size());
  }

  /// Voters of fact `f`, ascending source id.
  std::span<const int32_t> FactSources(FactId f) const {
    const size_t i = static_cast<size_t>(f);
    return {fact_sources_.data() + fact_offsets_[i],
            static_cast<size_t>(fact_offsets_[i + 1] - fact_offsets_[i])};
  }
  /// Parallel to FactSources(f): 1 for a T vote, 0 for an F vote.
  std::span<const uint8_t> FactVotesTrue(FactId f) const {
    const size_t i = static_cast<size_t>(f);
    return {fact_true_.data() + fact_offsets_[i],
            static_cast<size_t>(fact_offsets_[i + 1] - fact_offsets_[i])};
  }

  /// Facts source `s` voted on, ascending fact id.
  std::span<const int32_t> SourceFacts(SourceId s) const {
    const size_t i = static_cast<size_t>(s);
    return {source_facts_.data() + source_offsets_[i],
            static_cast<size_t>(source_offsets_[i + 1] - source_offsets_[i])};
  }
  /// Parallel to SourceFacts(s): 1 for a T vote, 0 for an F vote.
  std::span<const uint8_t> SourceVotesTrue(SourceId s) const {
    const size_t i = static_cast<size_t>(s);
    return {source_true_.data() + source_offsets_[i],
            static_cast<size_t>(source_offsets_[i + 1] - source_offsets_[i])};
  }

  /// The Eq. 5 corroboration score of row `f` under `trust`: the mean
  /// over voters of σ(s) for a T vote and 1-σ(s) for an F vote, 0.5
  /// for a voteless fact. Bit-identical to CorrobScore() over the
  /// Dataset span (same summation order).
  double RowScore(FactId f, const std::vector<double>& trust) const {
    auto sources = FactSources(f);
    if (sources.empty()) return 0.5;
    auto is_true = FactVotesTrue(f);
    double sum = 0.0;
    for (size_t k = 0; k < sources.size(); ++k) {
      const double t = trust[static_cast<size_t>(sources[k])];
      sum += is_true[k] ? t : 1.0 - t;
    }
    return sum / static_cast<double>(sources.size());
  }

  /// Parallel per-fact / per-source sweeps: runs fn(i) for every id,
  /// partitioned by output index across `pool` (inline when `pool` is
  /// null — the sequential path). `fn` must only write state owned by
  /// its index; each element is then computed exactly as in the
  /// sequential loop, so results are bit-identical at any thread
  /// count (see docs/PERFORMANCE.md).
  ///
  /// `stop` (optional) is polled at chunk boundaries; a fired signal
  /// skips the remaining chunks and the sweep returns false. The
  /// partial sweep's writes are then inconsistent — callers restore a
  /// snapshot before exposing any state (see the iterative
  /// corroborators' best-so-far handling). Returns true when the
  /// sweep covered every id.
  bool ForEachFact(ThreadPool* pool, const std::function<void(FactId)>& fn,
                   const StopSignal* stop = nullptr) const;
  bool ForEachSource(ThreadPool* pool,
                     const std::function<void(SourceId)>& fn,
                     const StopSignal* stop = nullptr) const;

  /// Heap + inline bytes held by the CSR/CSC arrays; what
  /// ResourceBudget::max_vote_matrix_bytes is enforced against.
  int64_t ResidentBytes() const;

 private:
  int32_t num_facts_ = 0;
  int32_t num_sources_ = 0;
  std::vector<size_t> fact_offsets_;    // size num_facts()+1
  std::vector<int32_t> fact_sources_;
  std::vector<uint8_t> fact_true_;
  std::vector<size_t> source_offsets_;  // size num_sources()+1
  std::vector<int32_t> source_facts_;
  std::vector<uint8_t> source_true_;
};

/// Worker pool for the iterative sweeps: null for num_threads <= 1
/// (the sequential legacy path), otherwise a pool with num_threads
/// workers, created once per Run() and reused across iterations.
std::unique_ptr<ThreadPool> MakeSweepPool(int num_threads);

}  // namespace corrob

#endif  // CORROB_CORE_VOTE_MATRIX_H_
