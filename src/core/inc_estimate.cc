#include "core/inc_estimate.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/logging.h"
#include "common/math_util.h"
#include "core/telemetry_util.h"
#include "core/vote_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace corrob {

namespace {

/// Eq. 5 score of a signature under a given trust assignment.
double SignatureScore(const std::vector<SourceVote>& signature,
                      const std::vector<double>& trust) {
  if (signature.empty()) return 0.5;
  double sum = 0.0;
  for (const SourceVote& sv : signature) {
    double t = trust[static_cast<size_t>(sv.source)];
    sum += sv.vote == Vote::kTrue ? t : 1.0 - t;
  }
  return sum / static_cast<double>(signature.size());
}

/// Renders a group signature as "s1=T,s2=F" (source names from the
/// dataset) for the telemetry stream and `corrob explain`.
std::string RenderSignature(const Dataset& dataset,
                            const std::vector<SourceVote>& signature) {
  std::string out;
  for (const SourceVote& sv : signature) {
    if (!out.empty()) out.push_back(',');
    out += dataset.source_name(sv.source);
    out += sv.vote == Vote::kTrue ? "=T" : "=F";
  }
  return out;
}

const char* RoundKindName(IncRoundInfo::Kind kind) {
  switch (kind) {
    case IncRoundInfo::Kind::kBalanced:
      return "balanced";
    case IncRoundInfo::Kind::kGreedy:
      return "greedy";
    case IncRoundInfo::Kind::kOneSidedPositive:
      return "one_sided_positive";
    case IncRoundInfo::Kind::kOneSidedNegative:
      return "one_sided_negative";
    case IncRoundInfo::Kind::kFinalTies:
      return "final_ties";
    case IncRoundInfo::Kind::kInterrupted:
      return "interrupted";
  }
  return "?";
}

}  // namespace

IncrementalEngine::IncrementalEngine(const Dataset& dataset,
                                     const IncEstimateOptions& options)
    : dataset_(dataset),
      options_(options),
      groups_(BuildFactGroups(dataset)),
      groups_by_source_(BuildSourceGroupIndex(groups_, dataset.num_sources())),
      trust_(static_cast<size_t>(dataset.num_sources()),
             options.initial_trust),
      correct_(static_cast<size_t>(dataset.num_sources()), 0.0),
      total_(static_cast<size_t>(dataset.num_sources()), 0.0),
      fact_probability_(static_cast<size_t>(dataset.num_facts()), 0.5),
      group_of_fact_(static_cast<size_t>(dataset.num_facts()), -1),
      fact_round_(static_cast<size_t>(dataset.num_facts()), -1),
      remaining_facts_(dataset.num_facts()) {
  scratch_.visit_stamp.assign(groups_.size(), -1);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (FactId f : groups_[g].facts) {
      group_of_fact_[static_cast<size_t>(f)] = static_cast<int32_t>(g);
    }
  }
  if (options_.record_trajectory) {
    trajectory_.push_back(TrajectoryPoint{trust_, 0});
  }
}

double IncrementalEngine::GroupProbability(int32_t g) const {
  return SignatureScore(groups_[static_cast<size_t>(g)].signature, trust_);
}

bool IncrementalEngine::ComputeGroupProbabilities(
    ThreadPool* pool, std::vector<double>* probs,
    const StopSignal* stop) const {
  probs->resize(groups_.size());
  return ParallelApply(pool, static_cast<int64_t>(groups_.size()),
                       [this, probs](int64_t begin, int64_t end) {
                         for (int64_t g = begin; g < end; ++g) {
                           (*probs)[static_cast<size_t>(g)] = SignatureScore(
                               groups_[static_cast<size_t>(g)].signature,
                               trust_);
                         }
                       },
                       stop);
}

double IncrementalEngine::EntropyDelta(int32_t g) const {
  return EntropyDelta(g, &scratch_);
}

double IncrementalEngine::EntropyDelta(int32_t g,
                                       EntropyScratch* scratch) const {
  const FactGroup& group = groups_[static_cast<size_t>(g)];
  if (group.remaining() == 0) return 0.0;

  // Decision the commit would take, under the current trust.
  const double p = SignatureScore(group.signature, trust_);
  const bool decision = p >= kDecisionThreshold;
  const double committed = static_cast<double>(group.remaining());

  // Tentative trust for the sources in the candidate's signature,
  // under the same smoothed Eq. 8 update EndRound applies.
  const double w = options_.trust_prior_weight;
  scratch->projected = trust_;
  for (const SourceVote& sv : group.signature) {
    size_t s = static_cast<size_t>(sv.source);
    bool vote_correct = (sv.vote == Vote::kTrue) == decision;
    double new_total = total_[s] + committed + w;
    double new_correct = correct_[s] + (vote_correct ? committed : 0.0) +
                         w * options_.initial_trust;
    scratch->projected[s] = new_correct / new_total;
  }

  // Sum entropy changes over the other active groups that share a
  // source with the candidate; disjoint groups are unaffected.
  if (scratch->visit_stamp.size() != groups_.size()) {
    scratch->visit_stamp.assign(groups_.size(), -1);
    scratch->stamp = 0;
  }
  double delta = 0.0;
  ++scratch->stamp;
  for (const SourceVote& sv : group.signature) {
    for (int32_t other : groups_by_source_[static_cast<size_t>(sv.source)]) {
      if (other == g) continue;
      size_t oi = static_cast<size_t>(other);
      if (scratch->visit_stamp[oi] == scratch->stamp) continue;
      scratch->visit_stamp[oi] = scratch->stamp;
      const FactGroup& other_group = groups_[oi];
      if (other_group.remaining() == 0) continue;
      double before = SignatureScore(other_group.signature, trust_);
      double after =
          SignatureScore(other_group.signature, scratch->projected);
      delta += static_cast<double>(other_group.remaining()) *
               (BinaryEntropy(after) - BinaryEntropy(before));
    }
  }
  return delta;
}

int64_t IncrementalEngine::CommitGroup(int32_t g, int64_t n) {
  FactGroup& group = groups_[static_cast<size_t>(g)];
  int64_t take = std::min<int64_t>(n, static_cast<int64_t>(group.remaining()));
  if (take <= 0) return 0;

  const double p = SignatureScore(group.signature, trust_);
  const bool decision = p >= kDecisionThreshold;
  for (int64_t i = 0; i < take; ++i) {
    FactId f = group.facts[group.committed + static_cast<size_t>(i)];
    fact_probability_[static_cast<size_t>(f)] = p;
    fact_round_[static_cast<size_t>(f)] = rounds_;
  }
  group.committed += static_cast<size_t>(take);
  remaining_facts_ -= take;

  const double committed = static_cast<double>(take);
  for (const SourceVote& sv : group.signature) {
    size_t s = static_cast<size_t>(sv.source);
    bool vote_correct = (sv.vote == Vote::kTrue) == decision;
    total_[s] += committed;
    if (vote_correct) correct_[s] += committed;
  }
  return take;
}

Status IncrementalEngine::CommitKnownFact(FactId fact, bool label) {
  if (fact < 0 || fact >= static_cast<FactId>(fact_probability_.size())) {
    return Status::OutOfRange("fact id " + std::to_string(fact) +
                              " out of range");
  }
  if (fact_round_[static_cast<size_t>(fact)] >= 0) {
    return Status::FailedPrecondition("fact " + std::to_string(fact) +
                                      " is already committed");
  }
  FactGroup& group = groups_[static_cast<size_t>(
      group_of_fact_[static_cast<size_t>(fact)])];
  // Move the fact to the committed frontier of its group.
  auto it = std::find(group.facts.begin() +
                          static_cast<std::ptrdiff_t>(group.committed),
                      group.facts.end(), fact);
  CORROB_CHECK(it != group.facts.end());
  std::swap(*it,
            group.facts[group.committed]);
  ++group.committed;
  --remaining_facts_;

  fact_probability_[static_cast<size_t>(fact)] = label ? 1.0 : 0.0;
  fact_round_[static_cast<size_t>(fact)] = rounds_;
  for (const SourceVote& sv : group.signature) {
    size_t s = static_cast<size_t>(sv.source);
    bool vote_correct = (sv.vote == Vote::kTrue) == label;
    total_[s] += 1.0;
    if (vote_correct) correct_[s] += 1.0;
  }
  return Status::OK();
}

int64_t IncrementalEngine::CommitAllRemaining() {
  int64_t committed = 0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    committed += CommitGroup(static_cast<int32_t>(g),
                             std::numeric_limits<int64_t>::max());
  }
  return committed;
}

void IncrementalEngine::EndRound(int64_t facts_committed) {
  const double w = options_.trust_prior_weight;
  for (size_t s = 0; s < trust_.size(); ++s) {
    if (total_[s] > 0.0) {
      trust_[s] =
          (correct_[s] + w * options_.initial_trust) / (total_[s] + w);
    }
  }
  ++rounds_;
  if (options_.record_trajectory) {
    trajectory_.push_back(TrajectoryPoint{trust_, facts_committed});
  }
}

CorroborationResult IncrementalEngine::Finish(std::string algorithm_name) && {
  CORROB_CHECK(remaining_facts_ == 0)
      << "Finish() with " << remaining_facts_ << " facts unevaluated";
  CorroborationResult result;
  result.algorithm = std::move(algorithm_name);
  result.fact_probability = std::move(fact_probability_);
  result.source_trust = std::move(trust_);
  result.iterations = rounds_;
  result.trajectory = std::move(trajectory_);
  result.fact_commit_round = std::move(fact_round_);
  return result;
}

int32_t IncEstimateCorroborator::PickBestGroup(
    const IncrementalEngine& engine, const std::vector<int32_t>& part,
    bool is_positive, const std::vector<double>& group_probs,
    ThreadPool* pool, const StopSignal* stop, double* best_delta_out) const {
  CORROB_TRACE_SPAN("IncEstimate::PickBestGroup");
  // Confidence-first filter: keep only groups within extreme_band of
  // the part's most extreme probability, so ΔH chooses among the most
  // confidently decidable groups (as in the paper's walkthrough,
  // which picks r9 at σ=0.9 and r12 at σ=0.37).
  double extreme = is_positive ? 0.0 : 1.0;
  for (int32_t g : part) {
    double p = group_probs[static_cast<size_t>(g)];
    extreme = is_positive ? std::max(extreme, p) : std::min(extreme, p);
  }
  std::vector<int32_t> candidates;
  for (int32_t g : part) {
    double p = group_probs[static_cast<size_t>(g)];
    if (is_positive ? p >= extreme - options_.extreme_band
                    : p <= extreme + options_.extreme_band) {
      candidates.push_back(g);
    }
  }
  // Candidate capping for large group counts: rank by remaining size
  // (descending, ties by index) and keep the top slice; the exact ΔH
  // then decides among candidates.
  if (options_.max_candidate_groups > 0 &&
      static_cast<int>(candidates.size()) > options_.max_candidate_groups) {
    std::partial_sort(
        candidates.begin(), candidates.begin() + options_.max_candidate_groups,
        candidates.end(), [&](int32_t a, int32_t b) {
          size_t ra = engine.groups()[static_cast<size_t>(a)].remaining();
          size_t rb = engine.groups()[static_cast<size_t>(b)].remaining();
          if (ra != rb) return ra > rb;
          return a < b;
        });
    candidates.resize(static_cast<size_t>(options_.max_candidate_groups));
  }
  // ΔH scan: candidates evaluate independently (per-chunk scratch),
  // and the argmax folds sequentially in candidate order afterwards —
  // same first-maximum tie-break as the sequential loop, so the pick
  // is identical at any thread count.
  static obs::Counter* scans = obs::MetricsRegistry::Global().GetCounter(
      "corrob.inc_est.delta_h_scans");
  static obs::Histogram* scan_width =
      obs::MetricsRegistry::Global().GetHistogram(
          "corrob.inc_est.delta_h_candidates");
  scans->Add(1);
  scan_width->Record(static_cast<int64_t>(candidates.size()));
  std::vector<double> deltas(candidates.size());
  const bool complete = ParallelApply(
      pool, static_cast<int64_t>(candidates.size()),
      [&engine, &candidates, &deltas](int64_t begin, int64_t end) {
        EntropyScratch scratch;
        for (int64_t i = begin; i < end; ++i) {
          deltas[static_cast<size_t>(i)] = engine.EntropyDelta(
              candidates[static_cast<size_t>(i)], &scratch);
        }
      },
      stop);
  // A cut-short scan leaves holes in `deltas`; any argmax over it
  // would depend on which chunks ran. Abandon the round instead.
  if (!complete) return -1;
  int32_t best = candidates[0];
  double best_delta = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (deltas[i] > best_delta) {
      best_delta = deltas[i];
      best = candidates[i];
    }
  }
  if (best_delta_out != nullptr) *best_delta_out = best_delta;
  return best;
}

Result<CorroborationResult> IncEstimateCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.initial_trust < 0.0 || options_.initial_trust > 1.0) {
    return Status::InvalidArgument("initial_trust must be in [0,1]");
  }
  if (options_.max_candidate_groups < 0) {
    return Status::InvalidArgument("max_candidate_groups must be >= 0");
  }
  if (options_.trust_prior_weight < 0.0) {
    return Status::InvalidArgument("trust_prior_weight must be >= 0");
  }
  if (options_.tie_margin < 0.0 || options_.tie_margin >= 0.5) {
    return Status::InvalidArgument("tie_margin must be in [0, 0.5)");
  }
  if (options_.extreme_band < 0.0) {
    return Status::InvalidArgument("extreme_band must be >= 0");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  CORROB_TRACE_SPAN("IncEstimate::Run");
  IncrementalEngine engine(dataset, options_);
  const int32_t num_groups = static_cast<int32_t>(engine.groups().size());
  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options_.num_threads);
  // σ(FG) of every group, refreshed once per round; the selection
  // logic below reads only this snapshot, never live probabilities.
  std::vector<double> group_probs;
  auto telemetry =
      MaybeStartTelemetry(options_.collect_telemetry, name(), dataset);

  int round = 0;
  // Telemetry: one event per time point, pushed after EndRound so the
  // recorded trust distribution is the post-round σ_i(S).
  auto record_round = [&](obs::IncRoundEvent event) {
    if (telemetry == nullptr) return;
    event.round = round;
    obs::TrustDistribution(engine.trust(), &event.trust_min,
                           &event.trust_mean, &event.trust_max);
    telemetry->rounds.push_back(std::move(event));
  };

  // Supervision: seed the trust state with the known labels as time
  // point t0, before any selection round.
  if (!options_.known_labels.empty()) {
    for (const auto& [fact, label] : options_.known_labels) {
      CORROB_RETURN_NOT_OK(engine.CommitKnownFact(fact, label));
    }
    const int64_t committed =
        static_cast<int64_t>(options_.known_labels.size());
    engine.EndRound(committed);
    obs::IncRoundEvent event;
    event.kind = "supervised";
    event.committed_n = committed;
    event.facts_committed = committed;
    record_round(std::move(event));
  }

  auto notify = [&](IncRoundInfo::Kind kind, int32_t pos_group,
                    int32_t neg_group, int64_t committed) {
    if (!options_.round_observer) return;
    IncRoundInfo info;
    info.round = round;
    info.kind = kind;
    info.positive_group = pos_group;
    info.negative_group = neg_group;
    info.facts_committed = committed;
    options_.round_observer(info);
  };

  // Interruption support: boundary checks fire between rounds (with
  // `round` completed selection rounds behind us, so a run cancelled
  // at round k matches a budgeted max_rounds=k run bit-for-bit), and
  // the projection / ΔH scans poll the stop signal at chunk
  // boundaries. A round abandoned mid-scan leaves the engine's trust
  // and commit state untouched — only the scan's scratch output is
  // discarded — so graceful degradation below projects the remaining
  // facts with exactly the trust of the last completed round.
  const StopSignal* stop = context.sweep_stop();
  Termination termination = Termination::kConverged;
  bool mid_round = false;
  // max_facts_per_round caps what one *selection* round may commit
  // (always letting at least one fact through so rounds make
  // progress); terminal wholesale commits are exempt.
  const int64_t fact_cap = context.budget().max_facts_per_round;
  auto capped = [fact_cap](int64_t n) {
    return fact_cap > 0 ? std::max<int64_t>(1, std::min(n, fact_cap)) : n;
  };

  while (engine.remaining_facts() > 0) {
    if (auto interrupt = context.CheckIterationBoundary(round)) {
      termination = *interrupt;
      break;
    }
    ++round;
    if (!engine.ComputeGroupProbabilities(pool.get(), &group_probs, stop)) {
      termination = context.SweepInterruption();
      mid_round = true;
      break;
    }
    if (options_.strategy == IncSelectStrategy::kProbability) {
      // IncEstPS: the group with the highest projected probability.
      int32_t best = -1;
      double best_p = -1.0;
      for (int32_t g = 0; g < num_groups; ++g) {
        if (engine.groups()[static_cast<size_t>(g)].remaining() == 0) continue;
        double p = group_probs[static_cast<size_t>(g)];
        if (p > best_p) {
          best_p = p;
          best = g;
        }
      }
      CORROB_CHECK(best >= 0);
      const int64_t best_remaining = static_cast<int64_t>(
          engine.groups()[static_cast<size_t>(best)].remaining());
      obs::IncRoundEvent event;
      if (telemetry != nullptr) {
        event.kind = RoundKindName(IncRoundInfo::Kind::kGreedy);
        event.positive_group = best;
        event.positive_signature = RenderSignature(
            dataset, engine.groups()[static_cast<size_t>(best)].signature);
        event.fg_positive = best_remaining;
        event.prob_positive = best_p;
      }
      int64_t committed = engine.CommitGroup(best, capped(best_remaining));
      engine.EndRound(committed);
      if (telemetry != nullptr) {
        event.committed_n = committed;
        event.facts_committed = committed;
        record_round(std::move(event));
      }
      notify(IncRoundInfo::Kind::kGreedy, best, -1, committed);
      continue;
    }

    // IncEstHeu (Algorithm 2): positive part (probability above 0.5)
    // and negative part (below 0.5); groups at or near 0.5 carry
    // maximum entropy and no reliable decision direction, so they
    // belong to neither part and are deferred until a trust update
    // moves them out of the band (see tie_margin).
    std::vector<int32_t> positive;
    std::vector<int32_t> negative;
    for (int32_t g = 0; g < num_groups; ++g) {
      const FactGroup& group = engine.groups()[static_cast<size_t>(g)];
      if (group.remaining() == 0) continue;
      double p = group_probs[static_cast<size_t>(g)];
      if (p > kDecisionThreshold + options_.tie_margin) {
        // Optional quarantine (ablation knob): hold back positive
        // groups containing a currently negative source, so a
        // positive commit cannot rehabilitate it mid-discovery. In
        // practice the concurrent rehabilitation matches the paper's
        // Figure 2(b) recovery and evaluates better on both workloads
        // (see bench_ablation), so the default leaves this off.
        bool has_suspect_voter = false;
        if (options_.quarantine_suspect_groups) {
          for (const SourceVote& sv : group.signature) {
            if (engine.trust()[static_cast<size_t>(sv.source)] <
                kDecisionThreshold) {
              has_suspect_voter = true;
              break;
            }
          }
        }
        if (!has_suspect_voter) positive.push_back(g);
      } else if (p < kDecisionThreshold) {
        // A negative commit marks every T voter wrong. With an
        // explicit F vote in the signature that is corroborated
        // dissent; without one it is justified only when no
        // *evidence-based* positive source vouches for the fact (in
        // the §2.3 walkthrough, r5 commits false while s1's 0.9 is
        // still the unevaluated default). Otherwise one distrusted
        // co-voter would drag facts endorsed by known-good sources
        // into the negative part and the collapse would cascade.
        bool has_f_vote = false;
        bool trusted_backer = false;
        for (const SourceVote& sv : group.signature) {
          if (sv.vote == Vote::kFalse) {
            has_f_vote = true;
          } else if (engine.SourceEvaluated(sv.source) &&
                     engine.trust()[static_cast<size_t>(sv.source)] >
                         kDecisionThreshold) {
            trusted_backer = true;
          }
        }
        if (has_f_vote || !trusted_backer) negative.push_back(g);
      }
    }

    if (positive.empty() && negative.empty()) {
      // Only maximum-entropy groups remain; no further trust update
      // can be extracted. Commit them all at the Eq. 2 threshold.
      int64_t committed = engine.CommitAllRemaining();
      engine.EndRound(committed);
      if (telemetry != nullptr) {
        obs::IncRoundEvent event;
        event.kind = RoundKindName(IncRoundInfo::Kind::kFinalTies);
        event.committed_n = committed;
        event.facts_committed = committed;
        record_round(std::move(event));
      }
      notify(IncRoundInfo::Kind::kFinalTies, -1, -1, committed);
      break;
    }
    if (positive.empty() || negative.empty()) {
      // §5.1 special case: every committable fact is projected to the
      // same side. Stay incremental: evaluate the side's best group
      // in full at this time point ("aggressively selects all
      // listings that are projected to be corrupt", §2.3), then
      // re-partition — the trust update may move deferred groups
      // into a part or revive the other side.
      bool is_negative = positive.empty();
      double best_delta = 0.0;
      int32_t best =
          is_negative ? PickBestGroup(engine, negative, false, group_probs,
                                      pool.get(), stop, &best_delta)
                      : PickBestGroup(engine, positive, true, group_probs,
                                      pool.get(), stop, &best_delta);
      if (best < 0) {
        termination = context.SweepInterruption();
        mid_round = true;
        break;
      }
      const int64_t best_remaining = static_cast<int64_t>(
          engine.groups()[static_cast<size_t>(best)].remaining());
      obs::IncRoundEvent event;
      if (telemetry != nullptr) {
        event.kind = RoundKindName(is_negative
                                       ? IncRoundInfo::Kind::kOneSidedNegative
                                       : IncRoundInfo::Kind::kOneSidedPositive);
        event.part_positive = static_cast<int64_t>(positive.size());
        event.part_negative = static_cast<int64_t>(negative.size());
        const std::string signature = RenderSignature(
            dataset, engine.groups()[static_cast<size_t>(best)].signature);
        const double prob = group_probs[static_cast<size_t>(best)];
        if (is_negative) {
          event.negative_group = best;
          event.negative_signature = signature;
          event.fg_negative = best_remaining;
          event.prob_negative = prob;
          event.delta_h_negative = best_delta;
        } else {
          event.positive_group = best;
          event.positive_signature = signature;
          event.fg_positive = best_remaining;
          event.prob_positive = prob;
          event.delta_h_positive = best_delta;
        }
      }
      int64_t committed = engine.CommitGroup(best, capped(best_remaining));
      CORROB_CHECK(committed > 0);
      engine.EndRound(committed);
      if (telemetry != nullptr) {
        event.committed_n = committed;
        event.facts_committed = committed;
        record_round(std::move(event));
      }
      notify(is_negative ? IncRoundInfo::Kind::kOneSidedNegative
                         : IncRoundInfo::Kind::kOneSidedPositive,
             is_negative ? -1 : best, is_negative ? best : -1, committed);
      continue;
    }

    double delta_positive = 0.0;
    double delta_negative = 0.0;
    int32_t best_positive = PickBestGroup(engine, positive, true, group_probs,
                                          pool.get(), stop, &delta_positive);
    int32_t best_negative =
        best_positive < 0 ? -1
                          : PickBestGroup(engine, negative, false, group_probs,
                                          pool.get(), stop, &delta_negative);
    if (best_positive < 0 || best_negative < 0) {
      termination = context.SweepInterruption();
      mid_round = true;
      break;
    }
    int64_t n = static_cast<int64_t>(std::min(
        engine.groups()[static_cast<size_t>(best_positive)].remaining(),
        engine.groups()[static_cast<size_t>(best_negative)].remaining()));
    // Balanced rounds commit n facts per side, so the per-round cap
    // splits across the two commits.
    if (fact_cap > 0) n = std::min(n, std::max<int64_t>(1, fact_cap / 2));
    obs::IncRoundEvent event;
    if (telemetry != nullptr) {
      // The paper's balanced commit: n = min(|FG+|, |FG-|) facts from
      // each side, recorded so the invariant is directly checkable.
      event.kind = RoundKindName(IncRoundInfo::Kind::kBalanced);
      event.positive_group = best_positive;
      event.negative_group = best_negative;
      event.positive_signature = RenderSignature(
          dataset,
          engine.groups()[static_cast<size_t>(best_positive)].signature);
      event.negative_signature = RenderSignature(
          dataset,
          engine.groups()[static_cast<size_t>(best_negative)].signature);
      event.fg_positive = static_cast<int64_t>(
          engine.groups()[static_cast<size_t>(best_positive)].remaining());
      event.fg_negative = static_cast<int64_t>(
          engine.groups()[static_cast<size_t>(best_negative)].remaining());
      event.part_positive = static_cast<int64_t>(positive.size());
      event.part_negative = static_cast<int64_t>(negative.size());
      event.prob_positive = group_probs[static_cast<size_t>(best_positive)];
      event.prob_negative = group_probs[static_cast<size_t>(best_negative)];
      event.delta_h_positive = delta_positive;
      event.delta_h_negative = delta_negative;
      event.committed_n = n;
    }
    int64_t committed = engine.CommitGroup(best_positive, n) +
                        engine.CommitGroup(best_negative, n);
    CORROB_CHECK(committed > 0);
    engine.EndRound(committed);
    if (telemetry != nullptr) {
      event.facts_committed = committed;
      record_round(std::move(event));
    }
    notify(IncRoundInfo::Kind::kBalanced, best_positive, best_negative,
           committed);
  }

  if (TerminatedEarly(termination) && engine.remaining_facts() > 0) {
    // Graceful degradation: every fact must carry an answer, so the
    // remaining ones are projected wholesale with the trust of the
    // last completed round — exactly the final-ties commit, but
    // forced by the interrupt rather than exhausted entropy. The
    // abandoned in-flight round (if any) becomes the projection's
    // time point; a boundary interrupt opens a fresh one.
    if (!mid_round) ++round;
    int64_t committed = engine.CommitAllRemaining();
    engine.EndRound(committed);
    if (telemetry != nullptr) {
      obs::IncRoundEvent event;
      event.kind = RoundKindName(IncRoundInfo::Kind::kInterrupted);
      event.committed_n = committed;
      event.facts_committed = committed;
      record_round(std::move(event));
    }
    notify(IncRoundInfo::Kind::kInterrupted, -1, -1, committed);
  }

  CorroborationResult result = std::move(engine).Finish(std::string(name()));
  result.termination = termination;
  if (telemetry != nullptr) {
    telemetry->iterations = result.iterations;
    // Converged here means the run evaluated every fact on its own
    // terms; an interrupted run projected the tail instead.
    telemetry->converged = termination == Termination::kConverged;
    result.telemetry = std::move(telemetry);
  }
  return result;
}

}  // namespace corrob
