#ifndef CORROB_CORE_TRUTH_FINDER_H_
#define CORROB_CORE_TRUTH_FINDER_H_

#include "core/corroborator.h"

namespace corrob {

struct TruthFinderOptions {
  /// Initial source trustworthiness A(s).
  double initial_trust = 0.9;
  /// Dampening factor γ applied to the evidence score before the
  /// logistic squash (Yin et al. use 0.3).
  double dampening = 0.3;
  /// Weight ρ of the mutual-exclusion adjustment between the "true"
  /// and "false" claims about one fact.
  double exclusion_weight = 0.5;
  /// Guard keeping ln(1 - A(s)) finite for perfect sources.
  double epsilon = 1e-6;
  int max_iterations = 100;
  /// L∞ convergence tolerance on source trust.
  double tolerance = 1e-6;
  /// Worker threads for the update sweeps; 1 = sequential legacy
  /// path. Results are bit-identical at any value.
  int num_threads = 1;
  /// Record per-iteration convergence stats into
  /// CorroborationResult::telemetry (docs/OBSERVABILITY.md).
  bool collect_telemetry = false;
};

/// TruthFinder (Yin, Han & Yu, TKDE 2008) adapted to the T/F vote
/// model — an extended baseline beyond the paper's comparison set
/// (cited as [19, 20] in its related work).
///
/// Each fact induces two mutually exclusive claims, "f is true"
/// (asserted by T votes) and "f is false" (asserted by F votes).
/// Per iteration:
///   score(claim)  = Σ_{s asserts claim} -ln(1 - A(s) + ε)
///   adjusted      = score(claim) - ρ·score(other claim)
///   σ(f)          = logistic(γ · (adjusted_true - adjusted_false))
///   A(s)          = mean over voted facts of (T ? σ(f) : 1 - σ(f))
/// Facts with no votes keep σ = 0.5.
class TruthFinderCorroborator final : public Corroborator {
 public:
  explicit TruthFinderCorroborator(TruthFinderOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "TruthFinder"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const TruthFinderOptions& options() const { return options_; }

 private:
  TruthFinderOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_TRUTH_FINDER_H_
