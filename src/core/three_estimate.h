#ifndef CORROB_CORE_THREE_ESTIMATE_H_
#define CORROB_CORE_THREE_ESTIMATE_H_

#include "core/two_estimate.h"

namespace corrob {

struct ThreeEstimateOptions {
  double initial_trust = 0.9;
  /// Initial per-fact error factor ε(f) (0 = trivially easy fact).
  double initial_difficulty = 0.5;
  Normalization normalization = Normalization::kRound;
  int max_iterations = 100;
  double tolerance = 1e-9;
  /// Additive smoothing applied to the ε/θ moment updates so that
  /// facts voted on by perfectly trusted sources keep finite
  /// difficulty estimates.
  double smoothing = 0.1;
  /// Worker threads for the update sweeps; 1 = sequential legacy
  /// path. Results are bit-identical at any value.
  int num_threads = 1;
  /// Record per-iteration convergence stats into
  /// CorroborationResult::telemetry (docs/OBSERVABILITY.md).
  bool collect_telemetry = false;
};

/// ThreeEstimate (Galland et al., WSDM'10): extends TwoEstimate with a
/// per-fact error factor ε(f) modelling how hard a fact is. A source's
/// probability of being correct on f is 1 - ε(f)·(1 - σ(s)): trusted
/// sources are right everywhere, untrusted sources are wrong only on
/// hard facts.
///
/// Updates (a moment-matching variant of Galland §3, documented in
/// DESIGN.md):
///   Corrob:  σ(f) = mean over voters of (T ? c(s,f) : 1-c(s,f)),
///            c(s,f) = 1 - ε(f)(1-σ(s)); then normalize σ(f).
///   ε(f)  <- (Σ_s wrong(s,f) + δ/2) / (Σ_s (1-σ(s)) + δ)
///   σ(s)  <- 1 - (Σ_f wrong(s,f) + δ/2) / (Σ_f ε(f) + δ)
/// with wrong(s,f) the indicator that s's vote disagrees with the
/// normalized decision, and all values clamped to [0,1].
///
/// The paper notes (§2.1 footnote 3) that on affirmative-only data
/// ThreeEstimate degenerates to TwoEstimate; it participates in the
/// conflict-rich Hubdub comparison (Table 7).
class ThreeEstimateCorroborator final : public Corroborator {
 public:
  explicit ThreeEstimateCorroborator(ThreeEstimateOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "ThreeEstimate"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const ThreeEstimateOptions& options() const { return options_; }

 private:
  ThreeEstimateOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_THREE_ESTIMATE_H_
