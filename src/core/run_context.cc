#include "core/run_context.h"

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace corrob {

std::string_view TerminationName(Termination termination) {
  switch (termination) {
    case Termination::kConverged:
      return "converged";
    case Termination::kIterationCap:
      return "iteration_cap";
    case Termination::kDeadlineExceeded:
      return "deadline_exceeded";
    case Termination::kCancelled:
      return "cancelled";
    case Termination::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "unknown";
}

bool TerminatedEarly(Termination termination) {
  return termination != Termination::kConverged &&
         termination != Termination::kIterationCap;
}

const RunContext& RunContext::Unbounded() {
  static const RunContext context;
  return context;
}

namespace {

// Counter pointers are stable for the registry's lifetime; resolve
// once so the boundary poll stays allocation- and lookup-free.
void RecordInterruption(Termination reason) {
  static obs::Counter* deadline = obs::MetricsRegistry::Global().GetCounter(
      "corrob.budget.interrupts.deadline_exceeded");
  static obs::Counter* cancelled = obs::MetricsRegistry::Global().GetCounter(
      "corrob.budget.interrupts.cancelled");
  static obs::Counter* budget = obs::MetricsRegistry::Global().GetCounter(
      "corrob.budget.interrupts.budget_exhausted");
  switch (reason) {
    case Termination::kDeadlineExceeded:
      deadline->Add(1);
      break;
    case Termination::kCancelled:
      cancelled->Add(1);
      break;
    case Termination::kBudgetExhausted:
      budget->Add(1);
      break;
    default:
      break;
  }
}

}  // namespace

std::optional<Termination> RunContext::CheckIterationBoundary(
    int64_t completed_iterations) const {
  // Failpoints first: they simulate expiry/cancellation in tests and
  // must fire at the same boundary regardless of real elapsed time.
  if (Failpoints::AnyArmed()) {
    if (!Failpoints::Check("budget.force_expire").ok()) {
      RecordInterruption(Termination::kDeadlineExceeded);
      return Termination::kDeadlineExceeded;
    }
    if (!Failpoints::Check("cancel.at_iteration").ok()) {
      RecordInterruption(Termination::kCancelled);
      return Termination::kCancelled;
    }
  }
  if (stop_.cancelled()) {
    RecordInterruption(Termination::kCancelled);
    return Termination::kCancelled;
  }
  if (!stop_.deadline().infinite()) {
    const int64_t headroom = stop_.deadline().remaining_nanos();
    static obs::Gauge* headroom_gauge = obs::MetricsRegistry::Global().GetGauge(
        "corrob.budget.deadline_headroom_ns");
    headroom_gauge->Set(headroom);
    if (headroom <= 0) {
      RecordInterruption(Termination::kDeadlineExceeded);
      return Termination::kDeadlineExceeded;
    }
  }
  if (budget_.max_rounds > 0 && completed_iterations >= budget_.max_rounds) {
    RecordInterruption(Termination::kBudgetExhausted);
    return Termination::kBudgetExhausted;
  }
  return std::nullopt;
}

Termination RunContext::SweepInterruption() const {
  const Termination reason = stop_.cancelled() ? Termination::kCancelled
                                               : Termination::kDeadlineExceeded;
  RecordInterruption(reason);
  return reason;
}

std::optional<Termination> RunContext::CheckMatrixBytes(
    int64_t resident_bytes) const {
  if (budget_.max_vote_matrix_bytes > 0 &&
      resident_bytes > budget_.max_vote_matrix_bytes) {
    RecordInterruption(Termination::kBudgetExhausted);
    return Termination::kBudgetExhausted;
  }
  return std::nullopt;
}

}  // namespace corrob
