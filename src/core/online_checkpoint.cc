#include "core/online_checkpoint.h"

#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/csv.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace corrob {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'R', 'R', 'O', 'B', 'S', 'N'};
constexpr size_t kMagicSize = sizeof(kMagic);
// magic + version + payload_size.
constexpr size_t kHeaderSize = kMagicSize + 4 + 8;

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string* out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

// Bounds check shared by every Reader::Read*; expands inside
// Result-returning member functions only.
#define CORROB_RETURN_IF_SHORT(n)                                     \
  do {                                                                \
    if (remaining() < (n))                                            \
      return Status::ParseError("snapshot payload truncated");        \
  } while (false)

/// Sequential little-endian reader over the payload; every read is
/// bounds-checked so truncation surfaces as ParseError, never UB.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Result<uint32_t> ReadU32() {
    CORROB_RETURN_IF_SHORT(4);
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(
                   static_cast<uint8_t>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  Result<uint64_t> ReadU64() {
    CORROB_RETURN_IF_SHORT(8);
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(
                   static_cast<uint8_t>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  Result<double> ReadF64() {
    CORROB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  Result<std::string> ReadString(size_t length) {
    CORROB_RETURN_IF_SHORT(length);
    std::string value(bytes_.substr(pos_, length));
    pos_ += length;
    return value;
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

#undef CORROB_RETURN_IF_SHORT

}  // namespace

std::string SerializeOnlineSnapshot(const OnlineCorroborator& online) {
  OnlineCorroboratorState state = online.ExportState();

  std::string payload;
  AppendF64(&payload, state.options.initial_trust);
  AppendF64(&payload, state.options.trust_prior_weight);
  AppendF64(&payload, state.options.tie_margin);
  AppendU64(&payload, static_cast<uint64_t>(state.facts_observed));
  AppendU32(&payload, static_cast<uint32_t>(state.source_names.size()));
  for (size_t s = 0; s < state.source_names.size(); ++s) {
    AppendU32(&payload,
              static_cast<uint32_t>(state.source_names[s].size()));
    payload += state.source_names[s];
    AppendF64(&payload, state.correct[s]);
    AppendF64(&payload, state.total[s]);
  }
  // v2 telemetry section.
  AppendU64(&payload, static_cast<uint64_t>(state.decisions_true));
  AppendU64(&payload, static_cast<uint64_t>(state.decisions_false));
  AppendU64(&payload, static_cast<uint64_t>(state.deferrals));

  std::string out;
  out.reserve(kHeaderSize + payload.size() + 4);
  out.append(kMagic, kMagicSize);
  AppendU32(&out, kOnlineSnapshotVersion);
  AppendU64(&out, payload.size());
  out += payload;
  AppendU32(&out, ComputeCrc32(payload));
  return out;
}

Result<OnlineCorroborator> ParseOnlineSnapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize ||
      bytes.substr(0, kMagicSize) != std::string_view(kMagic, kMagicSize)) {
    return Status::ParseError(
        "not an online-corroborator snapshot (bad magic)");
  }
  Reader header(bytes.substr(kMagicSize));
  CORROB_ASSIGN_OR_RETURN(uint32_t version, header.ReadU32());
  if (version > kOnlineSnapshotVersion) {
    // A checkpoint from a future build: refuse loudly instead of
    // misreading fields this build does not know about.
    return Status::FailedPrecondition(
        "snapshot version " + std::to_string(version) +
        " is newer than this build supports (max version " +
        std::to_string(kOnlineSnapshotVersion) +
        "); load it with the corrob build that wrote it, or restart "
        "the stream without --resume");
  }
  if (version < kOnlineSnapshotMinVersion) {
    return Status::FailedPrecondition(
        "snapshot version " + std::to_string(version) +
        " is older than this build supports (supported " +
        std::to_string(kOnlineSnapshotMinVersion) + ".." +
        std::to_string(kOnlineSnapshotVersion) + ")");
  }
  CORROB_ASSIGN_OR_RETURN(uint64_t payload_size, header.ReadU64());
  if (bytes.size() != kHeaderSize + payload_size + 4) {
    return Status::ParseError(
        "snapshot truncated or oversized: header claims " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(bytes.size()) + " total");
  }
  std::string_view payload = bytes.substr(kHeaderSize, payload_size);
  Reader footer(bytes.substr(kHeaderSize + payload_size));
  CORROB_ASSIGN_OR_RETURN(uint32_t stored_crc, footer.ReadU32());
  uint32_t actual_crc = ComputeCrc32(payload);
  if (stored_crc != actual_crc) {
    return Status::ParseError("snapshot checksum mismatch: stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(actual_crc));
  }

  Reader reader(payload);
  OnlineCorroboratorState state;
  CORROB_ASSIGN_OR_RETURN(state.options.initial_trust, reader.ReadF64());
  CORROB_ASSIGN_OR_RETURN(state.options.trust_prior_weight,
                          reader.ReadF64());
  CORROB_ASSIGN_OR_RETURN(state.options.tie_margin, reader.ReadF64());
  CORROB_ASSIGN_OR_RETURN(uint64_t facts_observed, reader.ReadU64());
  state.facts_observed = static_cast<int64_t>(facts_observed);
  CORROB_ASSIGN_OR_RETURN(uint32_t num_sources, reader.ReadU32());
  state.source_names.reserve(num_sources);
  state.correct.reserve(num_sources);
  state.total.reserve(num_sources);
  for (uint32_t s = 0; s < num_sources; ++s) {
    CORROB_ASSIGN_OR_RETURN(uint32_t name_length, reader.ReadU32());
    CORROB_ASSIGN_OR_RETURN(std::string name,
                            reader.ReadString(name_length));
    state.source_names.push_back(std::move(name));
    CORROB_ASSIGN_OR_RETURN(double correct, reader.ReadF64());
    CORROB_ASSIGN_OR_RETURN(double total, reader.ReadF64());
    state.correct.push_back(correct);
    state.total.push_back(total);
  }
  if (version >= 2) {
    CORROB_ASSIGN_OR_RETURN(uint64_t decisions_true, reader.ReadU64());
    CORROB_ASSIGN_OR_RETURN(uint64_t decisions_false, reader.ReadU64());
    CORROB_ASSIGN_OR_RETURN(uint64_t deferrals, reader.ReadU64());
    state.decisions_true = static_cast<int64_t>(decisions_true);
    state.decisions_false = static_cast<int64_t>(decisions_false);
    state.deferrals = static_cast<int64_t>(deferrals);
  }
  if (reader.remaining() != 0) {
    return Status::ParseError("snapshot payload has " +
                              std::to_string(reader.remaining()) +
                              " trailing bytes");
  }
  return OnlineCorroborator::FromState(std::move(state));
}

Status SaveOnlineSnapshot(const std::string& path,
                          const OnlineCorroborator& online,
                          const RetryPolicy& policy) {
  CORROB_TRACE_SPAN("OnlineCheckpoint::Save");
  CORROB_FAILPOINT("online_checkpoint.save");
  std::string snapshot = SerializeOnlineSnapshot(online);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("corrob.checkpoint.saves")->Add(1);
  metrics.GetHistogram("corrob.checkpoint.snapshot_bytes")
      ->Record(static_cast<int64_t>(snapshot.size()));
  return Retry(policy, [&] { return WriteFileAtomic(path, snapshot); });
}

Result<OnlineCorroborator> LoadOnlineSnapshot(const std::string& path) {
  CORROB_TRACE_SPAN("OnlineCheckpoint::Load");
  CORROB_FAILPOINT("online_checkpoint.load");
  obs::MetricsRegistry::Global()
      .GetCounter("corrob.checkpoint.loads")
      ->Add(1);
  CORROB_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto parsed = ParseOnlineSnapshot(bytes);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  parsed.status().message() + " (in " + path + ")");
  }
  return parsed;
}

std::string DeriveInterruptCheckpointPath(std::string_view input_path,
                                          std::string_view output_path) {
  std::string_view base =
      !output_path.empty() ? output_path
                           : (!input_path.empty()
                                  ? input_path
                                  : std::string_view("stream"));
  // Hash both paths (with a separator no path can contain) so streams
  // that share an output stem but read different inputs — or vice
  // versa — still land on distinct checkpoint files.
  Crc32 crc;
  crc.Update(input_path);
  crc.Update(std::string_view("\n", 1));
  crc.Update(output_path);
  // ".interrupt-" (11) + 8 hex digits + ".snap" (5) + NUL = 25 bytes;
  // a 24-byte buffer silently dropped the trailing 'p'.
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".interrupt-%08x.snap",
                crc.Digest());
  return std::string(base) + suffix;
}

}  // namespace corrob
