#include "core/online.h"

#include <cmath>
#include <unordered_set>

#include "core/corroborator.h"

namespace corrob {

namespace {

/// Pauses the stopwatch on every exit path of Observe().
struct ScopedResume {
  explicit ScopedResume(StopwatchNs* watch) : watch(watch) {
    watch->Resume();
  }
  ~ScopedResume() { watch->Pause(); }
  ScopedResume(const ScopedResume&) = delete;
  ScopedResume& operator=(const ScopedResume&) = delete;
  StopwatchNs* watch;
};

}  // namespace

OnlineCorroborator::OnlineCorroborator(OnlineCorroboratorOptions options,
                                       const obs::Clock* clock)
    : options_(options), observe_watch_(clock) {
  observe_watch_.Pause();
}

SourceId OnlineCorroborator::AddSource(const std::string& name) {
  auto it = source_index_.find(name);
  if (it != source_index_.end()) return it->second;
  SourceId id = static_cast<SourceId>(source_names_.size());
  source_names_.push_back(name);
  source_index_.emplace(name, id);
  correct_.push_back(0.0);
  total_.push_back(0.0);
  return id;
}

Result<OnlineCorroborator::Verdict> OnlineCorroborator::Observe(
    const std::vector<SourceVote>& votes) {
  ScopedResume timing(&observe_watch_);
  std::unordered_set<SourceId> seen;
  for (const SourceVote& sv : votes) {
    if (sv.source < 0 || sv.source >= num_sources()) {
      return Status::OutOfRange("unregistered source id " +
                                std::to_string(sv.source));
    }
    if (sv.vote == Vote::kNone) {
      return Status::InvalidArgument("observations may not contain '-'");
    }
    if (!seen.insert(sv.source).second) {
      return Status::InvalidArgument(
          "duplicate vote from source " +
          source_names_[static_cast<size_t>(sv.source)]);
    }
  }

  Verdict verdict;
  if (votes.empty()) {
    ++facts_observed_;
    ++decisions_true_;
    return verdict;  // σ = 0.5, decided true; no trust movement.
  }

  // Eq. 5 under the trust at this time point.
  double sum = 0.0;
  for (const SourceVote& sv : votes) {
    double t = trust(sv.source);
    sum += sv.vote == Vote::kTrue ? t : 1.0 - t;
  }
  verdict.probability = sum / static_cast<double>(votes.size());
  verdict.decision = verdict.probability >= kDecisionThreshold;

  // Eq. 8 update with the committed (rounded) decision — unless the
  // verdict is a weak positive, which would override dissent on
  // coin-flip evidence (negative verdicts always commit).
  bool weak_positive =
      verdict.probability >= kDecisionThreshold &&
      verdict.probability < kDecisionThreshold + options_.tie_margin;
  if (!weak_positive) {
    for (const SourceVote& sv : votes) {
      size_t s = static_cast<size_t>(sv.source);
      bool vote_correct = (sv.vote == Vote::kTrue) == verdict.decision;
      total_[s] += 1.0;
      if (vote_correct) correct_[s] += 1.0;
    }
  } else {
    ++deferrals_;
  }
  ++facts_observed_;
  if (verdict.decision) {
    ++decisions_true_;
  } else {
    ++decisions_false_;
  }
  return verdict;
}

double OnlineCorroborator::trust(SourceId s) const {
  size_t index = static_cast<size_t>(s);
  if (total_[index] <= 0.0) return options_.initial_trust;
  const double w = options_.trust_prior_weight;
  return (correct_[index] + w * options_.initial_trust) /
         (total_[index] + w);
}

OnlineCorroboratorState OnlineCorroborator::ExportState() const {
  OnlineCorroboratorState state;
  state.options = options_;
  state.source_names = source_names_;
  state.correct = correct_;
  state.total = total_;
  state.facts_observed = facts_observed_;
  state.decisions_true = decisions_true_;
  state.decisions_false = decisions_false_;
  state.deferrals = deferrals_;
  return state;
}

Result<OnlineCorroborator> OnlineCorroborator::FromState(
    OnlineCorroboratorState state) {
  const size_t n = state.source_names.size();
  if (state.correct.size() != n || state.total.size() != n) {
    return Status::InvalidArgument(
        "state has " + std::to_string(n) + " source names but " +
        std::to_string(state.correct.size()) + "/" +
        std::to_string(state.total.size()) + " correct/total counters");
  }
  if (state.facts_observed < 0) {
    return Status::InvalidArgument("state has negative facts_observed");
  }
  if (state.decisions_true < 0 || state.decisions_false < 0 ||
      state.deferrals < 0) {
    return Status::InvalidArgument("state has negative decision counters");
  }
  if (state.decisions_true + state.decisions_false > state.facts_observed) {
    return Status::InvalidArgument(
        "state counts more decisions than observed facts");
  }
  for (size_t s = 0; s < n; ++s) {
    if (!(state.correct[s] >= 0.0) || !(state.total[s] >= 0.0) ||
        state.correct[s] > state.total[s]) {
      return Status::InvalidArgument(
          "inconsistent counters for source '" + state.source_names[s] +
          "': correct=" + std::to_string(state.correct[s]) +
          " total=" + std::to_string(state.total[s]));
    }
  }
  OnlineCorroborator online(state.options);
  for (size_t s = 0; s < n; ++s) {
    if (online.source_index_.count(state.source_names[s]) > 0) {
      return Status::InvalidArgument("duplicate source name '" +
                                     state.source_names[s] + "' in state");
    }
    online.AddSource(state.source_names[s]);
  }
  online.correct_ = std::move(state.correct);
  online.total_ = std::move(state.total);
  online.facts_observed_ = state.facts_observed;
  online.decisions_true_ = state.decisions_true;
  online.decisions_false_ = state.decisions_false;
  online.deferrals_ = state.deferrals;
  return online;
}

std::vector<double> OnlineCorroborator::trust_snapshot() const {
  std::vector<double> snapshot(static_cast<size_t>(num_sources()));
  for (SourceId s = 0; s < num_sources(); ++s) {
    snapshot[static_cast<size_t>(s)] = trust(s);
  }
  return snapshot;
}

}  // namespace corrob
