#include "core/online.h"

#include <cmath>
#include <unordered_set>

#include "core/corroborator.h"

namespace corrob {

OnlineCorroborator::OnlineCorroborator(OnlineCorroboratorOptions options)
    : options_(options) {}

SourceId OnlineCorroborator::AddSource(const std::string& name) {
  auto it = source_index_.find(name);
  if (it != source_index_.end()) return it->second;
  SourceId id = static_cast<SourceId>(source_names_.size());
  source_names_.push_back(name);
  source_index_.emplace(name, id);
  correct_.push_back(0.0);
  total_.push_back(0.0);
  return id;
}

Result<OnlineCorroborator::Verdict> OnlineCorroborator::Observe(
    const std::vector<SourceVote>& votes) {
  std::unordered_set<SourceId> seen;
  for (const SourceVote& sv : votes) {
    if (sv.source < 0 || sv.source >= num_sources()) {
      return Status::OutOfRange("unregistered source id " +
                                std::to_string(sv.source));
    }
    if (sv.vote == Vote::kNone) {
      return Status::InvalidArgument("observations may not contain '-'");
    }
    if (!seen.insert(sv.source).second) {
      return Status::InvalidArgument(
          "duplicate vote from source " +
          source_names_[static_cast<size_t>(sv.source)]);
    }
  }

  Verdict verdict;
  if (votes.empty()) {
    ++facts_observed_;
    return verdict;  // σ = 0.5, decided true; no trust movement.
  }

  // Eq. 5 under the trust at this time point.
  double sum = 0.0;
  for (const SourceVote& sv : votes) {
    double t = trust(sv.source);
    sum += sv.vote == Vote::kTrue ? t : 1.0 - t;
  }
  verdict.probability = sum / static_cast<double>(votes.size());
  verdict.decision = verdict.probability >= kDecisionThreshold;

  // Eq. 8 update with the committed (rounded) decision — unless the
  // verdict is a weak positive, which would override dissent on
  // coin-flip evidence (negative verdicts always commit).
  bool weak_positive =
      verdict.probability >= kDecisionThreshold &&
      verdict.probability < kDecisionThreshold + options_.tie_margin;
  if (!weak_positive) {
    for (const SourceVote& sv : votes) {
      size_t s = static_cast<size_t>(sv.source);
      bool vote_correct = (sv.vote == Vote::kTrue) == verdict.decision;
      total_[s] += 1.0;
      if (vote_correct) correct_[s] += 1.0;
    }
  }
  ++facts_observed_;
  return verdict;
}

double OnlineCorroborator::trust(SourceId s) const {
  size_t index = static_cast<size_t>(s);
  if (total_[index] <= 0.0) return options_.initial_trust;
  const double w = options_.trust_prior_weight;
  return (correct_[index] + w * options_.initial_trust) /
         (total_[index] + w);
}

std::vector<double> OnlineCorroborator::trust_snapshot() const {
  std::vector<double> snapshot(static_cast<size_t>(num_sources()));
  for (SourceId s = 0; s < num_sources(); ++s) {
    snapshot[static_cast<size_t>(s)] = trust(s);
  }
  return snapshot;
}

}  // namespace corrob
