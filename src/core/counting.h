#ifndef CORROB_CORE_COUNTING_H_
#define CORROB_CORE_COUNTING_H_

#include "core/corroborator.h"

namespace corrob {

struct CountingOptions {
  /// Number of T votes required for a true decision. 0 (the default)
  /// means the paper's literal rule — strictly more than half of all
  /// sources — i.e. floor(|S|/2) + 1. With six sources and ~2 votes
  /// per listing the literal rule yields recall far below the
  /// published 0.65; the Table 4 bench passes an absolute threshold
  /// of 3, which reproduces the published precision (see
  /// EXPERIMENTS.md).
  int32_t min_true_votes = 0;
};

/// The Counting baseline (paper §6.1.1): a fact is true iff enough
/// sources report it true — an absolute filter that trades recall for
/// precision (Table 4: precision 0.94, recall 0.65).
class CountingCorroborator final : public Corroborator {
 public:
  explicit CountingCorroborator(CountingOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "Counting"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const CountingOptions& options() const { return options_; }

 private:
  CountingOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_COUNTING_H_
