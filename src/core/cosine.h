#ifndef CORROB_CORE_COSINE_H_
#define CORROB_CORE_COSINE_H_

#include "core/corroborator.h"

namespace corrob {

struct CosineOptions {
  /// Initial truth estimate weight given to a source's raw vote.
  double initial_trust = 0.8;
  /// Damping β: new trust = (1-β)·cosine + β·old trust (Galland et
  /// al. damp the fixpoint to stabilize oscillation).
  double damping = 0.2;
  /// Exponent sharpening the influence of trusted sources in the
  /// truth update (Galland et al. use T(s)^3).
  double trust_power = 3.0;
  int max_iterations = 100;
  double tolerance = 1e-9;
  /// Worker threads for the update sweeps; 1 = sequential legacy
  /// path. Results are bit-identical at any value.
  int num_threads = 1;
  /// Record per-iteration convergence stats into
  /// CorroborationResult::telemetry (docs/OBSERVABILITY.md).
  bool collect_telemetry = false;
};

/// Cosine (Galland, Abiteboul, Marian & Senellart, WSDM'10) — the
/// third fixpoint family from [8], completing the TwoEstimate /
/// ThreeEstimate set. Truth values live in [-1, 1]:
///   V(f)  = Σ_{s∈S(f)} v(s,f)·T(s)^p / Σ_{s∈S(f)} T(s)^p
///   T(s)  = cosine similarity between s's vote vector (±1) and the
///           current truth estimates over the facts s voted on,
///           damped by β.
/// σ(f) = (V(f)+1)/2 maps back to a probability. Like the other
/// fixpoints, on affirmative-only data every fact converges to true.
class CosineCorroborator final : public Corroborator {
 public:
  explicit CosineCorroborator(CosineOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "Cosine"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const CosineOptions& options() const { return options_; }

 private:
  CosineOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_COSINE_H_
