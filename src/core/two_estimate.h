#ifndef CORROB_CORE_TWO_ESTIMATE_H_
#define CORROB_CORE_TWO_ESTIMATE_H_

#include "core/corroborator.h"

namespace corrob {

/// How fixpoint estimates are renormalized between iterations to
/// escape the all-0.5 local optimum (paper §2.1, Galland et al. §4).
enum class Normalization {
  /// Round to 1 when >= 0.5, else to 0 — the variant the paper
  /// describes ("translates a restaurant with uncertainty into an
  /// absolute T or F").
  kRound,
  /// Linearly rescale the value set onto [0, 1].
  kLinear,
  /// No renormalization (converges to the trivial fixpoint on
  /// affirmative-only data; exposed for the limitation demos).
  kNone,
};

struct TwoEstimateOptions {
  /// Initial trust score λ for every source.
  double initial_trust = 0.9;
  /// Applied to fact probabilities after each Corrob step. Source
  /// trust is kept continuous, which reproduces the paper's reported
  /// TwoEstimate trust of {1, 1, 0.8, 0.9, 1} on the motivating
  /// example.
  Normalization normalization = Normalization::kRound;
  /// Hard iteration cap; the fixpoint usually stabilizes in < 10.
  int max_iterations = 100;
  /// L∞ convergence tolerance on trust scores.
  double tolerance = 1e-9;
  /// Worker threads for the per-fact / per-source update sweeps.
  /// 1 = sequential legacy path. Results are bit-identical at any
  /// value (see docs/PERFORMANCE.md).
  int num_threads = 1;
  /// Record per-iteration convergence stats into
  /// CorroborationResult::telemetry (docs/OBSERVABILITY.md).
  bool collect_telemetry = false;
};

/// TwoEstimate (Galland et al., WSDM'10): alternates
///   σ(f) <- mean over voters of (T ? σ(s) : 1-σ(s))   [Corrob]
///   σ(s) <- mean over voted facts of (T ? σ(f) : 1-σ(f))  [Update]
/// until convergence. The paper demonstrates (§2.1, §4.2) that on
/// affirmative-dominated data this collapses to "everything true".
class TwoEstimateCorroborator final : public Corroborator {
 public:
  explicit TwoEstimateCorroborator(TwoEstimateOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "TwoEstimate"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const TwoEstimateOptions& options() const { return options_; }

 private:
  TwoEstimateOptions options_;
};

/// Applies a normalization scheme to a value vector in place.
void NormalizeEstimates(Normalization scheme, std::vector<double>* values);

}  // namespace corrob

#endif  // CORROB_CORE_TWO_ESTIMATE_H_
