#ifndef CORROB_CORE_BAYES_ESTIMATE_H_
#define CORROB_CORE_BAYES_ESTIMATE_H_

#include <cstdint>

#include "core/corroborator.h"

namespace corrob {

/// Beta prior as an (alpha, beta) pseudo-count pair; alpha counts the
/// "positive" outcome of the modeled Bernoulli.
struct BetaPrior {
  double alpha = 1.0;
  double beta = 1.0;

  double Mean() const { return alpha / (alpha + beta); }
};

struct BayesEstimateOptions {
  /// Prior on a source's false positive rate P(T vote | fact false).
  /// Paper §6.1.1 uses α0=(100, 10000): strong belief in high
  /// precision (mean FPR ≈ 0.0099).
  BetaPrior false_positive_prior{100.0, 10000.0};
  /// Prior on a source's sensitivity P(T vote | fact true). Paper:
  /// α1=(50, 50) — recall around 0.5 with moderate confidence.
  BetaPrior sensitivity_prior{50.0, 50.0};
  /// Prior on the fraction of true facts. Paper: β=(10, 10).
  BetaPrior truth_prior{10.0, 10.0};
  /// Total Gibbs sweeps and the burn-in discarded from the truth
  /// estimate ("requires a burning period before stabilizing",
  /// paper §6.2.5).
  int iterations = 500;
  int burn_in = 100;
  uint64_t seed = 7;
  /// Record per-sweep convergence stats into
  /// CorroborationResult::telemetry (docs/OBSERVABILITY.md).
  bool collect_telemetry = false;
};

/// BayesEstimate — the Latent Truth Model of Zhao et al. (PVLDB'12),
/// the paper's second state-of-the-art comparator. Each fact has a
/// latent truth label; each source has a latent false-positive rate
/// and sensitivity with Beta priors. A T vote is an observation o=1,
/// an F vote o=0; missing votes carry no signal. Inference is
/// collapsed Gibbs sampling over the truth labels, with the source
/// parameters integrated out through Beta-Bernoulli conjugacy.
///
/// σ(f) is the post-burn-in mean of the sampled truth label. The
/// reported source trust is the source's precision against the
/// decided labels — near 1.0 on affirmative-dominated data, which is
/// exactly the failure mode the paper reports (Table 5).
class BayesEstimateCorroborator final : public Corroborator {
 public:
  explicit BayesEstimateCorroborator(BayesEstimateOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "BayesEstimate"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const BayesEstimateOptions& options() const { return options_; }

 private:
  BayesEstimateOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_BAYES_ESTIMATE_H_
