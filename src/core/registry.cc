#include "core/registry.h"

#include <cctype>
#include <memory>
#include <utility>

#include "core/bayes_estimate.h"
#include "core/cosine.h"
#include "core/counting.h"
#include "core/inc_estimate.h"
#include "core/pasternack.h"
#include "core/three_estimate.h"
#include "core/truth_finder.h"
#include "core/two_estimate.h"
#include "core/voting.h"

namespace corrob {

namespace {

/// Builds a concrete corroborator and erases it to the base interface in
/// one step, keeping the registry free of raw `new` at every branch.
template <typename T, typename... Args>
std::unique_ptr<Corroborator> Make(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

/// Folds a method name to its canonical form: lowercase with '_' and
/// '-' removed, so CLI spellings like "inc_est_heu" match "IncEstHeu".
std::string CanonicalName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (c == '_' || c == '-') continue;
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name) {
  return MakeCorroborator(name, CorroboratorOptions{});
}

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& raw_name, const CorroboratorOptions& shared) {
  if (shared.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  const std::string name = CanonicalName(raw_name);
  if (name == "voting") {
    return Make<VotingCorroborator>();
  }
  if (name == "counting") {
    return Make<CountingCorroborator>();
  }
  if (name == "twoestimate") {
    TwoEstimateOptions options;
    options.num_threads = shared.num_threads;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<TwoEstimateCorroborator>(options);
  }
  if (name == "threeestimate") {
    ThreeEstimateOptions options;
    options.num_threads = shared.num_threads;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<ThreeEstimateCorroborator>(options);
  }
  if (name == "bayesestimate") {
    BayesEstimateOptions options;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<BayesEstimateCorroborator>(options);
  }
  if (name == "cosine") {
    CosineOptions options;
    options.num_threads = shared.num_threads;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<CosineCorroborator>(options);
  }
  if (name == "truthfinder") {
    TruthFinderOptions options;
    options.num_threads = shared.num_threads;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<TruthFinderCorroborator>(options);
  }
  if (name == "avglog" || name == "invest" || name == "pooledinvest") {
    PasternackOptions options;
    if (name == "invest") {
      options.variant = PasternackVariant::kInvest;
      options.growth = 1.2;
    } else if (name == "pooledinvest") {
      options.variant = PasternackVariant::kPooledInvest;
      options.growth = 1.4;
    }
    return Make<PasternackCorroborator>(options);
  }
  if (name == "incestheu") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kHeuristic;
    options.num_threads = shared.num_threads;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<IncEstimateCorroborator>(options);
  }
  if (name == "incestps") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kProbability;
    options.num_threads = shared.num_threads;
    options.collect_telemetry = shared.collect_telemetry;
    return Make<IncEstimateCorroborator>(options);
  }
  return Status::NotFound("unknown corroborator: '" + raw_name + "'");
}

std::vector<std::string> CorroboratorNames() {
  return {"Voting",        "Counting",  "BayesEstimate", "TwoEstimate",
          "ThreeEstimate", "IncEstPS",  "IncEstHeu"};
}

std::vector<std::string> ExtendedCorroboratorNames() {
  return {"Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest"};
}

}  // namespace corrob
