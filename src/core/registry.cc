#include "core/registry.h"

#include "core/bayes_estimate.h"
#include "core/cosine.h"
#include "core/counting.h"
#include "core/inc_estimate.h"
#include "core/pasternack.h"
#include "core/three_estimate.h"
#include "core/truth_finder.h"
#include "core/two_estimate.h"
#include "core/voting.h"

namespace corrob {

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name) {
  if (name == "Voting") {
    return std::unique_ptr<Corroborator>(new VotingCorroborator());
  }
  if (name == "Counting") {
    return std::unique_ptr<Corroborator>(new CountingCorroborator());
  }
  if (name == "TwoEstimate") {
    return std::unique_ptr<Corroborator>(new TwoEstimateCorroborator());
  }
  if (name == "ThreeEstimate") {
    return std::unique_ptr<Corroborator>(new ThreeEstimateCorroborator());
  }
  if (name == "BayesEstimate") {
    return std::unique_ptr<Corroborator>(new BayesEstimateCorroborator());
  }
  if (name == "Cosine") {
    return std::unique_ptr<Corroborator>(new CosineCorroborator());
  }
  if (name == "TruthFinder") {
    return std::unique_ptr<Corroborator>(new TruthFinderCorroborator());
  }
  if (name == "AvgLog" || name == "Invest" || name == "PooledInvest") {
    PasternackOptions options;
    if (name == "Invest") {
      options.variant = PasternackVariant::kInvest;
      options.growth = 1.2;
    } else if (name == "PooledInvest") {
      options.variant = PasternackVariant::kPooledInvest;
      options.growth = 1.4;
    }
    return std::unique_ptr<Corroborator>(new PasternackCorroborator(options));
  }
  if (name == "IncEstHeu") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kHeuristic;
    return std::unique_ptr<Corroborator>(new IncEstimateCorroborator(options));
  }
  if (name == "IncEstPS") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kProbability;
    return std::unique_ptr<Corroborator>(new IncEstimateCorroborator(options));
  }
  return Status::NotFound("unknown corroborator: '" + name + "'");
}

std::vector<std::string> CorroboratorNames() {
  return {"Voting",        "Counting",  "BayesEstimate", "TwoEstimate",
          "ThreeEstimate", "IncEstPS",  "IncEstHeu"};
}

std::vector<std::string> ExtendedCorroboratorNames() {
  return {"Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest"};
}

}  // namespace corrob
