#include "core/registry.h"

#include <memory>
#include <utility>

#include "core/bayes_estimate.h"
#include "core/cosine.h"
#include "core/counting.h"
#include "core/inc_estimate.h"
#include "core/pasternack.h"
#include "core/three_estimate.h"
#include "core/truth_finder.h"
#include "core/two_estimate.h"
#include "core/voting.h"

namespace corrob {

namespace {

/// Builds a concrete corroborator and erases it to the base interface in
/// one step, keeping the registry free of raw `new` at every branch.
template <typename T, typename... Args>
std::unique_ptr<Corroborator> Make(Args&&... args) {
  return std::make_unique<T>(std::forward<Args>(args)...);
}

}  // namespace

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name) {
  return MakeCorroborator(name, CorroboratorOptions{});
}

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name, const CorroboratorOptions& shared) {
  if (shared.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (name == "Voting") {
    return Make<VotingCorroborator>();
  }
  if (name == "Counting") {
    return Make<CountingCorroborator>();
  }
  if (name == "TwoEstimate") {
    TwoEstimateOptions options;
    options.num_threads = shared.num_threads;
    return Make<TwoEstimateCorroborator>(options);
  }
  if (name == "ThreeEstimate") {
    ThreeEstimateOptions options;
    options.num_threads = shared.num_threads;
    return Make<ThreeEstimateCorroborator>(options);
  }
  if (name == "BayesEstimate") {
    return Make<BayesEstimateCorroborator>();
  }
  if (name == "Cosine") {
    CosineOptions options;
    options.num_threads = shared.num_threads;
    return Make<CosineCorroborator>(options);
  }
  if (name == "TruthFinder") {
    TruthFinderOptions options;
    options.num_threads = shared.num_threads;
    return Make<TruthFinderCorroborator>(options);
  }
  if (name == "AvgLog" || name == "Invest" || name == "PooledInvest") {
    PasternackOptions options;
    if (name == "Invest") {
      options.variant = PasternackVariant::kInvest;
      options.growth = 1.2;
    } else if (name == "PooledInvest") {
      options.variant = PasternackVariant::kPooledInvest;
      options.growth = 1.4;
    }
    return Make<PasternackCorroborator>(options);
  }
  if (name == "IncEstHeu") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kHeuristic;
    options.num_threads = shared.num_threads;
    return Make<IncEstimateCorroborator>(options);
  }
  if (name == "IncEstPS") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kProbability;
    options.num_threads = shared.num_threads;
    return Make<IncEstimateCorroborator>(options);
  }
  return Status::NotFound("unknown corroborator: '" + name + "'");
}

std::vector<std::string> CorroboratorNames() {
  return {"Voting",        "Counting",  "BayesEstimate", "TwoEstimate",
          "ThreeEstimate", "IncEstPS",  "IncEstHeu"};
}

std::vector<std::string> ExtendedCorroboratorNames() {
  return {"Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest"};
}

}  // namespace corrob
