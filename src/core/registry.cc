#include "core/registry.h"

#include "core/bayes_estimate.h"
#include "core/cosine.h"
#include "core/counting.h"
#include "core/inc_estimate.h"
#include "core/pasternack.h"
#include "core/three_estimate.h"
#include "core/truth_finder.h"
#include "core/two_estimate.h"
#include "core/voting.h"

namespace corrob {

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name) {
  return MakeCorroborator(name, CorroboratorOptions{});
}

Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name, const CorroboratorOptions& shared) {
  if (shared.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (name == "Voting") {
    return std::unique_ptr<Corroborator>(new VotingCorroborator());
  }
  if (name == "Counting") {
    return std::unique_ptr<Corroborator>(new CountingCorroborator());
  }
  if (name == "TwoEstimate") {
    TwoEstimateOptions options;
    options.num_threads = shared.num_threads;
    return std::unique_ptr<Corroborator>(new TwoEstimateCorroborator(options));
  }
  if (name == "ThreeEstimate") {
    ThreeEstimateOptions options;
    options.num_threads = shared.num_threads;
    return std::unique_ptr<Corroborator>(
        new ThreeEstimateCorroborator(options));
  }
  if (name == "BayesEstimate") {
    return std::unique_ptr<Corroborator>(new BayesEstimateCorroborator());
  }
  if (name == "Cosine") {
    CosineOptions options;
    options.num_threads = shared.num_threads;
    return std::unique_ptr<Corroborator>(new CosineCorroborator(options));
  }
  if (name == "TruthFinder") {
    TruthFinderOptions options;
    options.num_threads = shared.num_threads;
    return std::unique_ptr<Corroborator>(new TruthFinderCorroborator(options));
  }
  if (name == "AvgLog" || name == "Invest" || name == "PooledInvest") {
    PasternackOptions options;
    if (name == "Invest") {
      options.variant = PasternackVariant::kInvest;
      options.growth = 1.2;
    } else if (name == "PooledInvest") {
      options.variant = PasternackVariant::kPooledInvest;
      options.growth = 1.4;
    }
    return std::unique_ptr<Corroborator>(new PasternackCorroborator(options));
  }
  if (name == "IncEstHeu") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kHeuristic;
    options.num_threads = shared.num_threads;
    return std::unique_ptr<Corroborator>(new IncEstimateCorroborator(options));
  }
  if (name == "IncEstPS") {
    IncEstimateOptions options;
    options.strategy = IncSelectStrategy::kProbability;
    options.num_threads = shared.num_threads;
    return std::unique_ptr<Corroborator>(new IncEstimateCorroborator(options));
  }
  return Status::NotFound("unknown corroborator: '" + name + "'");
}

std::vector<std::string> CorroboratorNames() {
  return {"Voting",        "Counting",  "BayesEstimate", "TwoEstimate",
          "ThreeEstimate", "IncEstPS",  "IncEstHeu"};
}

std::vector<std::string> ExtendedCorroboratorNames() {
  return {"Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest"};
}

}  // namespace corrob
