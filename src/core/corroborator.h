#ifndef CORROB_CORE_CORROBORATOR_H_
#define CORROB_CORE_CORROBORATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/run_context.h"
#include "data/dataset.h"
#include "obs/telemetry.h"

namespace corrob {

/// Decision threshold of paper Eq. 2: σ(f) >= 0.5 means true.
inline constexpr double kDecisionThreshold = 0.5;

/// One time point of an incremental run: the multi-value trust score
/// σ_i(S) in effect after round i, and how many facts round i
/// committed (Figure 2 plots these trajectories).
struct TrajectoryPoint {
  std::vector<double> trust;
  int64_t facts_committed = 0;
};

/// Output of a corroboration run: per-fact truth probabilities σ(f)
/// and per-source trust scores σ(s) (paper §3).
struct CorroborationResult {
  /// Name of the algorithm that produced the result.
  std::string algorithm;
  /// σ(f) for every fact, in fact-id order.
  std::vector<double> fact_probability;
  /// Final σ(s) for every source, in source-id order. For IncEstimate
  /// this is the trust at the last time point (trustworthiness over
  /// the whole dataset, §6.2.3).
  std::vector<double> source_trust;
  /// Iterations to convergence (fixpoint methods), Gibbs sweeps
  /// (BayesEstimate), or rounds/time points (IncEstimate).
  int iterations = 0;
  /// Round-by-round trust scores; non-empty only for IncEstimate.
  /// points[0] holds the initial trust at t0, before any evaluation.
  std::vector<TrajectoryPoint> trajectory;
  /// For incremental runs: the 0-based round at which each fact was
  /// committed (its t(f) of paper Definition 1). Empty for batch
  /// algorithms, which evaluate every fact with the same final state.
  std::vector<int32_t> fact_commit_round;
  /// Convergence telemetry, populated only when the run was configured
  /// with collect_telemetry. Deliberately clock-free: two runs with the
  /// same options and dataset produce byte-identical telemetry.
  std::shared_ptr<obs::RunTelemetry> telemetry;
  /// Why the run stopped. kConverged / kIterationCap are the natural
  /// outcomes; the early-termination reasons mean the RunContext cut
  /// the run short and the scores above are its best-so-far state —
  /// exactly the state after the last *completed* iteration or round.
  Termination termination = Termination::kConverged;

  /// Decision for fact f per Eq. 2.
  bool Decide(FactId f) const {
    return fact_probability[static_cast<size_t>(f)] >= kDecisionThreshold;
  }

  /// All decisions, in fact-id order.
  std::vector<bool> Decisions() const;
};

/// Interface of every truth-discovery algorithm in the library.
/// Implementations are immutable and thread-compatible: one instance
/// may run on several datasets concurrently.
class Corroborator {
 public:
  virtual ~Corroborator() = default;

  /// Stable algorithm name (e.g. "TwoEstimate", "IncEstHeu").
  virtual std::string_view name() const = 0;

  /// Corroborates `dataset` without any execution budget: never
  /// cancelled, never expires. Fails on malformed configuration;
  /// always succeeds on well-formed input, including empty datasets.
  [[nodiscard]] Result<CorroborationResult> Run(const Dataset& dataset) const {
    return Run(dataset, RunContext::Unbounded());
  }

  /// Corroborates `dataset` under `context`. Implementations poll the
  /// context at every sequential iteration/round boundary and, when
  /// it fires, stop gracefully: the result carries the termination
  /// reason and the scores of the last completed iteration (bit-
  /// identical, at any thread count, to an uninterrupted run
  /// truncated there). `context` must outlive the call.
  [[nodiscard]] virtual Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const = 0;
};

/// The corroboration score of paper Eq. 5, generalized to F votes:
/// the mean over voters of σ(s) for a T vote and 1-σ(s) for an F
/// vote. Facts with no votes score 0.5 (maximum uncertainty).
double CorrobScore(std::span<const SourceVote> votes,
                   const std::vector<double>& trust);

/// Trust of every source computed against fixed fact decisions: the
/// fraction of the source's votes that agree with the decisions
/// (sources with no votes get `no_vote_value`). This is both the
/// trust readout of the baseline methods and the Update step of
/// IncEstimate restricted to evaluated facts (paper Eq. 8).
std::vector<double> TrustAgainstDecisions(const Dataset& dataset,
                                          const std::vector<bool>& decisions,
                                          double no_vote_value);

}  // namespace corrob

#endif  // CORROB_CORE_CORROBORATOR_H_
