#ifndef CORROB_CORE_INC_ESTIMATE_H_
#define CORROB_CORE_INC_ESTIMATE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/corroborator.h"
#include "core/fact_group.h"

namespace corrob {

/// Fact-selection strategies for IncEstimate (paper §5.1 / §6.1.1).
enum class IncSelectStrategy {
  /// IncEstHeu: entropy-driven, balanced positive/negative selection.
  kHeuristic,
  /// IncEstPS: greedily commits the group with the highest projected
  /// probability each round.
  kProbability,
};

/// What one IncEstimate round did — emitted through
/// IncEstimateOptions::round_observer for debugging and the Figure 2
/// trajectory tooling.
struct IncRoundInfo {
  enum class Kind {
    kBalanced,          ///< one positive + one negative group
    kGreedy,            ///< IncEstPS: single highest-probability group
    kOneSidedPositive,  ///< negative part empty: whole positive part
    kOneSidedNegative,  ///< positive part empty: whole negative part
    kFinalTies,         ///< only max-entropy ties left: threshold commit
    kInterrupted,       ///< budget/cancel stop: remaining facts projected
  };
  int round = 0;
  Kind kind = Kind::kBalanced;
  /// Selected groups for balanced/greedy rounds (-1 otherwise).
  int32_t positive_group = -1;
  int32_t negative_group = -1;
  int64_t facts_committed = 0;
};

struct IncEstimateOptions {
  /// Default trust σ0(s); the paper uses 0.9 and observes any value
  /// above 0.5 yields identical results (§6.1.1).
  double initial_trust = 0.9;
  /// Strength of the prior behind the Eq. 8 trust update, in
  /// pseudo-observations at `initial_trust`:
  ///   σ_i(s) = (correct(s) + w·σ0) / (evaluated(s) + w).
  /// With w = 0 the update is exactly the paper's sample average —
  /// which lets a source crash to 0 (or rise to 1) from a single
  /// evaluated fact; that is what the §2.3 walkthrough shows on 12
  /// facts, but at corpus scale one early mis-commit then drags every
  /// co-voting source across the 0.5 line and snowballs (see
  /// DESIGN.md). The default damps the first few observations and
  /// converges to the paper's average as evidence accumulates.
  double trust_prior_weight = 8.0;
  /// Deferral band for IncEstHeu's *positive* part: a group joins it
  /// only with σ(FG) > 0.5 + tie_margin. The paper's partition is
  /// strict ("above 0.5" / "below 0.5"), which defers exact ties;
  /// the band widens that on the positive side only. Rationale: a
  /// weak positive commit overrides deliberate F votes on coin-flip
  /// evidence and corrupts the F-casters' trust, while a weak
  /// *negative* commit (the paper's own walkthrough commits r5 at
  /// σ=0.45) is the mechanism that exposes unreliable sources — so
  /// the negative part keeps the strict σ(FG) < 0.5 rule. Groups
  /// between the bounds stay unevaluated until trust moves them;
  /// whatever remains at the end commits at the Eq. 2 threshold.
  double tie_margin = 0.05;
  /// Confidence-first processing: within each part, only groups whose
  /// projected probability lies within this band of the part's
  /// extreme (max σ(FG) for the positive part, min for the negative)
  /// are ΔH candidates. This reproduces the paper's walkthrough —
  /// round 1 picks r9 (σ=0.9, the positive extreme) and r12 (σ=0.37,
  /// the negative extreme) with ΔH deciding among equals — and
  /// prevents the ΔH objective from preferring low-confidence mixed
  /// groups, whose commit direction is unreliable and whose
  /// "entropy-raising" effect is source-trust corruption (see
  /// DESIGN.md). Set to 1.0 to rank every group in the part by ΔH
  /// alone (the literal Algorithm 2).
  double extreme_band = 0.05;
  /// Ablation knob: when true, positive groups containing a source
  /// whose current trust is below 0.5 are withheld from the positive
  /// part (a positive commit would count the suspect's vote as
  /// correct and rehabilitate it instantly). The paper's Figure 2(b)
  /// trajectories show trust *recovering* mid-run, i.e. no such
  /// quarantine; measurements agree that leaving rehabilitation on
  /// evaluates better (bench_ablation), so the default is off.
  bool quarantine_suspect_groups = false;
  IncSelectStrategy strategy = IncSelectStrategy::kHeuristic;
  /// IncEstHeu evaluates the exact ΔH score for at most this many
  /// candidate groups per part (ranked by remaining size, ties by
  /// group index). 0 means exact evaluation of every active group —
  /// quadratic in group count, matching the paper's description; the
  /// default keeps large synthetic sweeps tractable. Experiments with
  /// fewer groups than the cap are always exact.
  int max_candidate_groups = 64;
  /// When true, CorroborationResult::trajectory records σ_i(S) per
  /// time point (Figure 2).
  bool record_trajectory = false;
  /// Optional per-round callback, invoked after the round's trust
  /// update. Intended for tracing and tests; must not mutate the run.
  std::function<void(const IncRoundInfo&)> round_observer;
  /// Supervision: facts whose labels are already known (e.g. a
  /// hand-checked golden subset). They are committed at time point
  /// t0 with σ(f) = 0/1 before any selection round, so the very
  /// first trust estimates are grounded in verified evidence instead
  /// of the default prior — the paper's golden set used as seed
  /// knowledge rather than only for evaluation. Duplicate or
  /// out-of-range fact ids fail the run.
  std::vector<std::pair<FactId, bool>> known_labels;
  /// Worker threads for the per-round group-projection scan and the
  /// ΔH candidate evaluation; 1 = sequential legacy path. Results
  /// are bit-identical at any value (the parallel scans write
  /// disjoint slots and the argmax folds in fixed group order).
  int num_threads = 1;
  /// Record a per-round IncRoundEvent stream (selected groups, their
  /// signatures, |FG+|/|FG-|, projected ΔH, committed n, post-round
  /// trust distribution) into CorroborationResult::telemetry
  /// (docs/OBSERVABILITY.md). Purely additive: selection is unchanged.
  bool collect_telemetry = false;
};

/// Per-thread scratch for IncrementalEngine::EntropyDelta: the
/// projected-trust vector and the visitation stamps that keep the
/// shared-source walk from double-counting a group. One scratch per
/// concurrent caller makes the scan thread-safe without locks.
struct EntropyScratch {
  std::vector<double> projected;
  std::vector<int64_t> visit_stamp;
  int64_t stamp = 0;
};

/// The mutable state of one incremental corroboration run, exposed so
/// that callers can script their own selection policies (the paper's
/// Section 2.3 walkthrough is reproduced in tests this way). The
/// IncEstimate strategies are thin drivers over this engine.
///
/// Lifecycle: construct over a dataset, repeatedly commit facts via
/// CommitGroup/CommitAllRemaining, then call Finish().
class IncrementalEngine {
 public:
  IncrementalEngine(const Dataset& dataset, const IncEstimateOptions& options);

  /// Groups (shared signatures) of the dataset; indices are stable.
  const std::vector<FactGroup>& groups() const { return groups_; }

  /// Current multi-value trust σ_i(s): the fraction of s's votes on
  /// committed facts that agreed with the committed decision, or the
  /// initial default while s has no evaluated votes (paper Eq. 8).
  const std::vector<double>& trust() const { return trust_; }

  /// Projected probability of group `g` under the current trust
  /// (paper Eq. 5 generalized to F votes).
  double GroupProbability(int32_t g) const;

  /// True once at least one of s's votes has been evaluated — i.e.
  /// σ_i(s) is evidence-based rather than the initial default.
  bool SourceEvaluated(SourceId s) const {
    return total_[static_cast<size_t>(s)] > 0.0;
  }

  /// ΔH(F̄) score of committing all remaining facts of group `g`: the
  /// total entropy change over the other active groups (paper Eq. 9).
  /// Uses the engine's own scratch; single-threaded callers only.
  double EntropyDelta(int32_t g) const;

  /// Re-entrant variant for parallel ΔH scans: all mutable state
  /// lives in `scratch`, so distinct scratches may evaluate distinct
  /// groups concurrently. Bit-identical to EntropyDelta(g).
  double EntropyDelta(int32_t g, EntropyScratch* scratch) const;

  /// σ(FG) of every group (committed ones included) under the current
  /// trust, written into `probs` — the per-round projection scan,
  /// partitioned by group across `pool` (inline when null). When a
  /// `stop` signal fires mid-scan, returns false and `probs` holds
  /// partial garbage the caller must discard; returns true when every
  /// slot was written.
  [[nodiscard]] bool ComputeGroupProbabilities(
      ThreadPool* pool, std::vector<double>* probs,
      const StopSignal* stop = nullptr) const;

  /// Commits up to `n` remaining facts of group `g` with the group's
  /// current probability; returns how many facts were committed.
  /// Trust is NOT recomputed until EndRound() so that facts selected
  /// within one time point are all evaluated with σ_i(S).
  int64_t CommitGroup(int32_t g, int64_t n);

  /// Commits one specific fact with an externally known label
  /// (supervision). The fact must be uncommitted; its probability is
  /// recorded as exactly 0 or 1 and its votes update the counters
  /// against the given label. Fails on out-of-range or already
  /// committed facts.
  [[nodiscard]] Status CommitKnownFact(FactId fact, bool label);

  /// Commits every remaining fact of every group (used when only
  /// maximum-entropy ties remain, and by callers that want the §5.1
  /// wholesale commit).
  int64_t CommitAllRemaining();

  /// Recomputes trust from the accumulated counters and records a
  /// trajectory point. Call once per time point after the commits.
  void EndRound(int64_t facts_committed);

  int64_t remaining_facts() const { return remaining_facts_; }
  int rounds() const { return rounds_; }

  /// Finalizes: packages probabilities, trust and trajectory.
  /// The engine must have no remaining facts.
  CorroborationResult Finish(std::string algorithm_name) &&;

 private:
  friend class IncEstimateCorroborator;

  const Dataset& dataset_;
  IncEstimateOptions options_;
  std::vector<FactGroup> groups_;
  std::vector<std::vector<int32_t>> groups_by_source_;
  std::vector<double> trust_;
  std::vector<double> correct_;  // per source
  std::vector<double> total_;    // per source
  std::vector<double> fact_probability_;
  std::vector<int32_t> group_of_fact_;
  std::vector<int32_t> fact_round_;
  int64_t remaining_facts_ = 0;
  int rounds_ = 0;
  std::vector<TrajectoryPoint> trajectory_;
  // Scratch for the single-threaded EntropyDelta overload.
  mutable EntropyScratch scratch_;
};

/// IncEstimate (paper Algorithm 1) with a pluggable selection
/// strategy: IncEstHeu (Algorithm 2) or IncEstPS.
class IncEstimateCorroborator final : public Corroborator {
 public:
  explicit IncEstimateCorroborator(IncEstimateOptions options = {})
      : options_(options) {}

  std::string_view name() const override {
    return options_.strategy == IncSelectStrategy::kHeuristic ? "IncEstHeu"
                                                              : "IncEstPS";
  }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const IncEstimateOptions& options() const { return options_; }

 private:
  /// Returns the part's group with the highest ΔH among the
  /// extreme-band candidates (see IncEstimateOptions::extreme_band).
  /// `group_probs` holds the precomputed σ(FG) of every group; the ΔH
  /// candidates are evaluated across `pool` (inline when null) with
  /// per-chunk scratch and the argmax folds in fixed candidate order.
  /// When `best_delta_out` is non-null it receives the winner's ΔH
  /// (telemetry readout; does not affect the pick). When `stop` fires
  /// mid-scan the partial deltas are discarded and -1 is returned;
  /// the caller must abandon the round.
  int32_t PickBestGroup(const IncrementalEngine& engine,
                        const std::vector<int32_t>& part, bool is_positive,
                        const std::vector<double>& group_probs,
                        ThreadPool* pool, const StopSignal* stop = nullptr,
                        double* best_delta_out = nullptr) const;

  IncEstimateOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_INC_ESTIMATE_H_
