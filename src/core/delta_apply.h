#ifndef CORROB_CORE_DELTA_APPLY_H_
#define CORROB_CORE_DELTA_APPLY_H_

#include <span>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/wal.h"

namespace corrob {

/// Applies a sequence of WAL vote deltas to an immutable base dataset,
/// producing a fresh Dataset.
///
/// The rebuild goes through DatasetBuilder re-registering the base's
/// sources and facts in id order, so ids — and therefore every CSR
/// array, signature key and VoteMatrix derived from the result — are
/// bit-identical to a single batch build that saw the same names in
/// the same order followed by the same final votes. That is the
/// metamorphic contract the WAL tests pin: replaying any surviving
/// prefix of deltas after a crash equals rebuilding from scratch with
/// that prefix.
///
/// Semantics per record type:
///   kAddSource      registers the source (no-op when known)
///   kAddVote        registers source/fact as needed, sets the vote
///                   (last writer wins)
///   kRetractVote    erases the pair's vote; a retraction naming an
///                   unknown source or fact is a no-op and does NOT
///                   register the names
///   kSnapshotMarker rejected — callers filter markers out
///                   (WalRecovery::Mutations does this)
[[nodiscard]] Result<Dataset> ApplyDeltasToDataset(
    const Dataset& base, std::span<const WalRecord> deltas);

/// Rebuilds the resident dataset a recovered WAL describes: the
/// snapshot CSV (when present) is the base, and every surviving
/// mutation record is applied on top. An empty recovery yields an
/// empty dataset.
[[nodiscard]] Result<Dataset> DatasetFromWalRecovery(
    const WalRecovery& recovery);

}  // namespace corrob

#endif  // CORROB_CORE_DELTA_APPLY_H_
