#include "core/truth_finder.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "core/telemetry_util.h"
#include "core/vote_matrix.h"
#include "obs/trace.h"

namespace corrob {

Result<CorroborationResult> TruthFinderCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.initial_trust <= 0.0 || options_.initial_trust >= 1.0) {
    return Status::InvalidArgument("initial_trust must be in (0,1)");
  }
  if (options_.dampening <= 0.0) {
    return Status::InvalidArgument("dampening must be positive");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  CORROB_TRACE_SPAN("TruthFinder::Run");
  const VoteMatrix matrix(dataset);
  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options_.num_threads);
  const size_t facts = static_cast<size_t>(matrix.num_facts());
  const size_t sources = static_cast<size_t>(matrix.num_sources());
  std::vector<double> trust(sources, options_.initial_trust);
  std::vector<double> probability(facts, 0.5);
  auto telemetry =
      MaybeStartTelemetry(options_.collect_telemetry, name(), dataset);

  // `probability` is rewritten in place by the claim sweep; snapshot
  // it so a mid-sweep interruption hands back the last completed
  // iteration.
  const StopSignal* stop = context.sweep_stop();
  std::vector<double> probability_snapshot;

  Termination termination = Termination::kIterationCap;
  int iteration = 0;
  const auto over_budget = context.CheckMatrixBytes(matrix.ResidentBytes());
  if (over_budget) termination = *over_budget;
  for (; !over_budget && iteration < options_.max_iterations; ++iteration) {
    if (auto interrupt = context.CheckIterationBoundary(iteration)) {
      termination = *interrupt;
      break;
    }
    if (stop != nullptr) probability_snapshot = probability;
    // Claim scores and fact confidence, partitioned by fact.
    bool complete = matrix.ForEachFact(
        pool.get(),
        [&](FactId f) {
      auto voters = matrix.FactSources(f);
      if (voters.empty()) {
        probability[static_cast<size_t>(f)] = 0.5;
        return;
      }
      auto is_true = matrix.FactVotesTrue(f);
      double score_true = 0.0;
      double score_false = 0.0;
      for (size_t k = 0; k < voters.size(); ++k) {
        const double tau = -std::log(
            Clamp(1.0 - trust[static_cast<size_t>(voters[k])],
                  options_.epsilon, 1.0));
        (is_true[k] ? score_true : score_false) += tau;
      }
      const double adjusted_true =
          score_true - options_.exclusion_weight * score_false;
      const double adjusted_false =
          score_false - options_.exclusion_weight * score_true;
      probability[static_cast<size_t>(f)] = Sigmoid(
          options_.dampening * (adjusted_true - adjusted_false));
        },
        stop);

    // Trust update. Each source reads only `probability` and writes
    // its own slot; the convergence check folds afterwards over the
    // old/new pair so the parallel sweep stays reduction-free.
    std::vector<double> next_trust;
    if (complete) {
      next_trust = trust;
      complete = matrix.ForEachSource(
          pool.get(),
          [&](SourceId s) {
      auto voted = matrix.SourceFacts(s);
      if (voted.empty()) return;
      auto is_true = matrix.SourceVotesTrue(s);
      double sum = 0.0;
      for (size_t k = 0; k < voted.size(); ++k) {
        const double p = probability[static_cast<size_t>(voted[k])];
        sum += is_true[k] ? p : 1.0 - p;
      }
      next_trust[static_cast<size_t>(s)] =
          sum / static_cast<double>(voted.size());
          },
          stop);
    }
    if (!complete) {
      // A sweep was cut short mid-iteration: restore the
      // probabilities of the last completed iteration; trust was not
      // yet replaced.
      probability = std::move(probability_snapshot);
      termination = context.SweepInterruption();
      break;
    }
    double max_change = 0.0;
    for (size_t s = 0; s < sources; ++s) {
      max_change = std::max(max_change, std::fabs(next_trust[s] - trust[s]));
    }
    trust = std::move(next_trust);
    RecordIteration(telemetry.get(), iteration, max_change, trust);
    if (max_change < options_.tolerance) {
      termination = Termination::kConverged;
      ++iteration;
      break;
    }
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability = std::move(probability);
  result.source_trust = std::move(trust);
  result.iterations = iteration;
  result.termination = termination;
  if (telemetry != nullptr) {
    telemetry->iterations = iteration;
    telemetry->converged = termination == Termination::kConverged;
    result.telemetry = std::move(telemetry);
  }
  return result;
}

}  // namespace corrob
