#include "core/truth_finder.h"

#include <cmath>

#include "common/math_util.h"

namespace corrob {

Result<CorroborationResult> TruthFinderCorroborator::Run(
    const Dataset& dataset) const {
  if (options_.initial_trust <= 0.0 || options_.initial_trust >= 1.0) {
    return Status::InvalidArgument("initial_trust must be in (0,1)");
  }
  if (options_.dampening <= 0.0) {
    return Status::InvalidArgument("dampening must be positive");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const size_t facts = static_cast<size_t>(dataset.num_facts());
  const size_t sources = static_cast<size_t>(dataset.num_sources());
  std::vector<double> trust(sources, options_.initial_trust);
  std::vector<double> probability(facts, 0.5);

  int iteration = 0;
  for (; iteration < options_.max_iterations; ++iteration) {
    // Claim scores and fact confidence.
    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      auto votes = dataset.VotesOnFact(f);
      if (votes.empty()) {
        probability[static_cast<size_t>(f)] = 0.5;
        continue;
      }
      double score_true = 0.0;
      double score_false = 0.0;
      for (const SourceVote& sv : votes) {
        double tau = -std::log(
            Clamp(1.0 - trust[static_cast<size_t>(sv.source)],
                  options_.epsilon, 1.0));
        (sv.vote == Vote::kTrue ? score_true : score_false) += tau;
      }
      double adjusted_true =
          score_true - options_.exclusion_weight * score_false;
      double adjusted_false =
          score_false - options_.exclusion_weight * score_true;
      probability[static_cast<size_t>(f)] = Sigmoid(
          options_.dampening * (adjusted_true - adjusted_false));
    }

    // Trust update.
    double max_change = 0.0;
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      auto votes = dataset.VotesBySource(s);
      if (votes.empty()) continue;
      double sum = 0.0;
      for (const FactVote& fv : votes) {
        double p = probability[static_cast<size_t>(fv.fact)];
        sum += fv.vote == Vote::kTrue ? p : 1.0 - p;
      }
      double next = sum / static_cast<double>(votes.size());
      max_change =
          std::max(max_change, std::fabs(next - trust[static_cast<size_t>(s)]));
      trust[static_cast<size_t>(s)] = next;
    }
    if (max_change < options_.tolerance) {
      ++iteration;
      break;
    }
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability = std::move(probability);
  result.source_trust = std::move(trust);
  result.iterations = iteration;
  return result;
}

}  // namespace corrob
