#include "core/voting.h"

namespace corrob {

Result<CorroborationResult> VotingCorroborator::Run(
    const Dataset& dataset) const {
  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability.resize(static_cast<size_t>(dataset.num_facts()));
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    int32_t t = dataset.CountVotes(f, Vote::kTrue);
    int32_t n = dataset.CountVotes(f, Vote::kFalse);
    result.fact_probability[static_cast<size_t>(f)] = t > n ? 1.0 : 0.0;
  }
  result.source_trust =
      TrustAgainstDecisions(dataset, result.Decisions(), /*no_vote_value=*/0.0);
  result.iterations = 1;
  return result;
}

}  // namespace corrob
