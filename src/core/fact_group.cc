#include "core/fact_group.h"

#include <string>
#include <unordered_map>

namespace corrob {

std::vector<FactGroup> BuildFactGroups(const Dataset& dataset) {
  std::vector<FactGroup> groups;
  std::unordered_map<std::string, size_t> index;
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    std::string key = dataset.SignatureKey(f);
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      FactGroup group;
      auto votes = dataset.VotesOnFact(f);
      group.signature.assign(votes.begin(), votes.end());
      groups.push_back(std::move(group));
    }
    groups[it->second].facts.push_back(f);
  }
  return groups;
}

std::vector<std::vector<int32_t>> BuildSourceGroupIndex(
    const std::vector<FactGroup>& groups, int32_t num_sources) {
  std::vector<std::vector<int32_t>> by_source(
      static_cast<size_t>(num_sources));
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const SourceVote& sv : groups[g].signature) {
      by_source[static_cast<size_t>(sv.source)].push_back(
          static_cast<int32_t>(g));
    }
  }
  return by_source;
}

}  // namespace corrob
