#include "core/three_estimate.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "core/telemetry_util.h"
#include "core/vote_matrix.h"
#include "obs/trace.h"

namespace corrob {

Result<CorroborationResult> ThreeEstimateCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.initial_trust < 0.0 || options_.initial_trust > 1.0) {
    return Status::InvalidArgument("initial_trust must be in [0,1]");
  }
  if (options_.initial_difficulty < 0.0 || options_.initial_difficulty > 1.0) {
    return Status::InvalidArgument("initial_difficulty must be in [0,1]");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  CORROB_TRACE_SPAN("ThreeEstimate::Run");
  const VoteMatrix matrix(dataset);
  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options_.num_threads);
  const size_t facts = static_cast<size_t>(matrix.num_facts());
  const size_t sources = static_cast<size_t>(matrix.num_sources());
  std::vector<double> trust(sources, options_.initial_trust);
  std::vector<double> difficulty(facts, options_.initial_difficulty);
  std::vector<double> probability(facts, 0.5);
  const double delta_smooth = options_.smoothing;
  auto telemetry =
      MaybeStartTelemetry(options_.collect_telemetry, name(), dataset);

  const StopSignal* stop = context.sweep_stop();
  std::vector<double> probability_snapshot;
  std::vector<double> difficulty_snapshot;

  Termination termination = Termination::kIterationCap;
  int iteration = 0;
  const auto over_budget = context.CheckMatrixBytes(matrix.ResidentBytes());
  if (over_budget) termination = *over_budget;
  for (; !over_budget && iteration < options_.max_iterations; ++iteration) {
    if (auto interrupt = context.CheckIterationBoundary(iteration)) {
      termination = *interrupt;
      break;
    }
    // probability is rewritten in place by the first sweep and
    // difficulty is replaced mid-iteration, so both are snapshotted
    // for the mid-sweep rollback path.
    if (stop != nullptr) {
      probability_snapshot = probability;
      difficulty_snapshot = difficulty;
    }
    // Corrob step with difficulty-discounted correctness. Each fact
    // reads only the previous trust and its own difficulty.
    bool complete = matrix.ForEachFact(
        pool.get(),
        [&](FactId f) {
          auto voters = matrix.FactSources(f);
          if (voters.empty()) {
            probability[static_cast<size_t>(f)] = 0.5;
            return;
          }
          auto is_true = matrix.FactVotesTrue(f);
          const double eps = difficulty[static_cast<size_t>(f)];
          double sum = 0.0;
          for (size_t k = 0; k < voters.size(); ++k) {
            const double correct =
                1.0 - eps * (1.0 - trust[static_cast<size_t>(voters[k])]);
            sum += is_true[k] ? correct : 1.0 - correct;
          }
          probability[static_cast<size_t>(f)] =
              sum / static_cast<double>(voters.size());
        },
        stop);

    std::vector<double> next_difficulty;
    if (complete) {
      NormalizeEstimates(options_.normalization, &probability);
      // Difficulty update: how much disagreement the decisions leave,
      // attributed to the voters' residual untrustworthiness.
      next_difficulty.assign(facts, options_.initial_difficulty);
      complete = matrix.ForEachFact(
          pool.get(),
          [&](FactId f) {
            auto voters = matrix.FactSources(f);
            if (voters.empty()) return;
            auto is_true = matrix.FactVotesTrue(f);
            const bool decision = probability[static_cast<size_t>(f)] >= 0.5;
            double wrong = 0.0;
            double capacity = 0.0;
            for (size_t k = 0; k < voters.size(); ++k) {
              if ((is_true[k] != 0) != decision) wrong += 1.0;
              capacity += 1.0 - trust[static_cast<size_t>(voters[k])];
            }
            next_difficulty[static_cast<size_t>(f)] =
                Clamp((wrong + delta_smooth / 2.0) / (capacity + delta_smooth),
                      0.0, 1.0);
          },
          stop);
    }

    std::vector<double> next_trust;
    if (complete) {
      difficulty = std::move(next_difficulty);
      // Trust update: wrong votes discounted by fact difficulty.
      next_trust.assign(sources, options_.initial_trust);
      complete = matrix.ForEachSource(
          pool.get(),
          [&](SourceId s) {
            auto voted = matrix.SourceFacts(s);
            if (voted.empty()) return;
            auto is_true = matrix.SourceVotesTrue(s);
            double wrong = 0.0;
            double capacity = 0.0;
            for (size_t k = 0; k < voted.size(); ++k) {
              const bool decision =
                  probability[static_cast<size_t>(voted[k])] >= 0.5;
              if ((is_true[k] != 0) != decision) wrong += 1.0;
              capacity += difficulty[static_cast<size_t>(voted[k])];
            }
            next_trust[static_cast<size_t>(s)] =
                Clamp(1.0 - (wrong + delta_smooth / 2.0) /
                                (capacity + delta_smooth),
                      0.0, 1.0);
          },
          stop);
    }

    if (!complete) {
      // A sweep was cut short mid-iteration: restore the state of the
      // last completed iteration before handing it out.
      probability = std::move(probability_snapshot);
      difficulty = std::move(difficulty_snapshot);
      termination = context.SweepInterruption();
      break;
    }

    double max_change = 0.0;
    for (size_t s = 0; s < sources; ++s) {
      max_change = std::max(max_change, std::fabs(next_trust[s] - trust[s]));
    }
    trust = std::move(next_trust);
    RecordIteration(telemetry.get(), iteration, max_change, trust);
    if (max_change < options_.tolerance) {
      termination = Termination::kConverged;
      ++iteration;
      break;
    }
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability = std::move(probability);
  result.source_trust = std::move(trust);
  result.iterations = iteration;
  result.termination = termination;
  if (telemetry != nullptr) {
    telemetry->iterations = iteration;
    telemetry->converged = termination == Termination::kConverged;
    result.telemetry = std::move(telemetry);
  }
  return result;
}

}  // namespace corrob
