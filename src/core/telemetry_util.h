#ifndef CORROB_CORE_TELEMETRY_UTIL_H_
#define CORROB_CORE_TELEMETRY_UTIL_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "obs/telemetry.h"

namespace corrob {

/// Starts a telemetry record for one corroboration run, or returns
/// null when telemetry is off — callers guard each recording site with
/// a plain null check so the disabled path costs one branch.
inline std::shared_ptr<obs::RunTelemetry> MaybeStartTelemetry(
    bool enabled, std::string_view algorithm, const Dataset& dataset) {
  if (!enabled) return nullptr;
  auto telemetry = std::make_shared<obs::RunTelemetry>();
  telemetry->algorithm = std::string(algorithm);
  telemetry->num_facts = static_cast<int64_t>(dataset.num_facts());
  telemetry->num_sources = static_cast<int64_t>(dataset.num_sources());
  return telemetry;
}

/// Appends one fixpoint-iteration (or Gibbs-sweep) record: the L∞
/// trust delta plus the min/mean/max of the trust distribution after
/// the iteration.
inline void RecordIteration(obs::RunTelemetry* telemetry, int32_t iteration,
                            double max_delta,
                            const std::vector<double>& trust,
                            int64_t facts_committed = 0) {
  if (telemetry == nullptr) return;
  obs::IterationStats stats;
  stats.iteration = iteration;
  stats.max_delta = max_delta;
  obs::TrustDistribution(trust, &stats.trust_min, &stats.trust_mean,
                         &stats.trust_max);
  stats.facts_committed = facts_committed;
  telemetry->iteration_stats.push_back(stats);
}

}  // namespace corrob

#endif  // CORROB_CORE_TELEMETRY_UTIL_H_
