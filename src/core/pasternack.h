#ifndef CORROB_CORE_PASTERNACK_H_
#define CORROB_CORE_PASTERNACK_H_

#include "core/corroborator.h"

namespace corrob {

/// Which Pasternack & Roth (COLING 2010) fixpoint to run.
enum class PasternackVariant {
  /// AvgLog: T(s) = log(1+|C_s|) · mean belief of s's claims;
  /// B(c) = Σ trust of asserting sources.
  kAvgLog,
  /// Invest: sources invest trust uniformly over their claims; claim
  /// beliefs grow super-linearly (G(x) = x^g) and pay back credit in
  /// proportion to the invested share.
  kInvest,
  /// PooledInvest: Invest with the growth applied to the claim's
  /// share within its mutual-exclusion pool (the true/false pair of
  /// one fact).
  kPooledInvest,
};

struct PasternackOptions {
  PasternackVariant variant = PasternackVariant::kAvgLog;
  /// Growth exponent g for the Invest variants (the authors use 1.2
  /// for Invest and 1.4 for PooledInvest).
  double growth = 1.2;
  int max_iterations = 100;
  double tolerance = 1e-9;
};

/// The "Knowing What to Believe" family of corroborators (cited as
/// [16] in the paper's related work), adapted to the T/F vote model:
/// every fact is a two-claim mutual-exclusion set {f-true, f-false},
/// a T vote asserts the former, an F vote the latter, and σ(f) is the
/// true-claim's share of belief. Trust and belief vectors are
/// max-normalized each iteration to keep the fixpoint bounded.
///
/// These extend the paper's comparison set with the remaining classic
/// truth-discovery baselines; on affirmative-dominated data they
/// inherit the same "everything true" fixpoint as TwoEstimate, which
/// bench_extended_baselines demonstrates.
class PasternackCorroborator final : public Corroborator {
 public:
  explicit PasternackCorroborator(PasternackOptions options = {})
      : options_(options) {}

  std::string_view name() const override {
    switch (options_.variant) {
      case PasternackVariant::kAvgLog:
        return "AvgLog";
      case PasternackVariant::kInvest:
        return "Invest";
      case PasternackVariant::kPooledInvest:
        return "PooledInvest";
    }
    return "Pasternack";
  }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;

  const PasternackOptions& options() const { return options_; }

 private:
  PasternackOptions options_;
};

}  // namespace corrob

#endif  // CORROB_CORE_PASTERNACK_H_
