#include "core/bayes_estimate.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "core/telemetry_util.h"
#include "obs/trace.h"

namespace corrob {

namespace {

/// Per-source sufficient statistics: counts of (truth label, vote)
/// combinations over currently labeled facts.
struct SourceCounts {
  // n[t][o]: #facts with label t on which the source's vote is o
  // (o=1 for T, o=0 for F).
  double n[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
};

}  // namespace

Result<CorroborationResult> BayesEstimateCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (options_.burn_in < 0 || options_.burn_in >= options_.iterations) {
    return Status::InvalidArgument("burn_in must be in [0, iterations)");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  CORROB_TRACE_SPAN("BayesEstimate::Run");
  const size_t facts = static_cast<size_t>(dataset.num_facts());
  const size_t sources = static_cast<size_t>(dataset.num_sources());
  Rng rng(options_.seed);
  auto telemetry =
      MaybeStartTelemetry(options_.collect_telemetry, name(), dataset);

  // Initialize labels by simple voting.
  std::vector<uint8_t> label(facts, 1);
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    int32_t t = dataset.CountVotes(f, Vote::kTrue);
    int32_t n = dataset.CountVotes(f, Vote::kFalse);
    label[static_cast<size_t>(f)] = t >= n ? 1 : 0;
  }

  std::vector<SourceCounts> counts(sources);
  double n_true = 0.0;
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    uint8_t t = label[static_cast<size_t>(f)];
    n_true += t;
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      int o = sv.vote == Vote::kTrue ? 1 : 0;
      counts[static_cast<size_t>(sv.source)].n[t][o] += 1.0;
    }
  }
  double n_facts = static_cast<double>(facts);

  const BetaPrior& fp = options_.false_positive_prior;   // t=0 votes
  const BetaPrior& sens = options_.sensitivity_prior;    // t=1 votes
  const BetaPrior& prior = options_.truth_prior;

  std::vector<double> truth_sum(facts, 0.0);
  int samples_kept = 0;

  // The Gibbs chain is sequential, so the only interruption points
  // are sweep boundaries: an interrupted run keeps every completed
  // sweep's samples and is bit-identical to a run configured with
  // that many iterations.
  Termination termination = Termination::kConverged;
  int completed_sweeps = 0;
  for (int sweep = 0; sweep < options_.iterations; ++sweep) {
    if (auto interrupt = context.CheckIterationBoundary(sweep)) {
      termination = *interrupt;
      break;
    }
    int64_t flips = 0;
    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      size_t fi = static_cast<size_t>(f);
      auto votes = dataset.VotesOnFact(f);
      uint8_t old_label = label[fi];

      // Remove f from the sufficient statistics.
      n_true -= old_label;
      for (const SourceVote& sv : votes) {
        int o = sv.vote == Vote::kTrue ? 1 : 0;
        counts[static_cast<size_t>(sv.source)].n[old_label][o] -= 1.0;
      }

      // Collapsed conditional: Beta-Bernoulli predictive per source.
      double log_p1 = std::log(prior.alpha + n_true);
      double log_p0 = std::log(prior.beta + (n_facts - 1.0 - n_true));
      for (const SourceVote& sv : votes) {
        const SourceCounts& sc = counts[static_cast<size_t>(sv.source)];
        int o = sv.vote == Vote::kTrue ? 1 : 0;
        // t = 1: vote modeled by sensitivity prior.
        double a1 = sens.alpha + sc.n[1][1];
        double b1 = sens.beta + sc.n[1][0];
        log_p1 += std::log(o == 1 ? a1 : b1) - std::log(a1 + b1);
        // t = 0: vote modeled by false-positive prior.
        double a0 = fp.alpha + sc.n[0][1];
        double b0 = fp.beta + sc.n[0][0];
        log_p0 += std::log(o == 1 ? a0 : b0) - std::log(a0 + b0);
      }

      double max_log = std::max(log_p1, log_p0);
      double p1 = std::exp(log_p1 - max_log);
      double p0 = std::exp(log_p0 - max_log);
      uint8_t new_label = rng.Bernoulli(p1 / (p1 + p0)) ? 1 : 0;

      if (new_label != old_label) ++flips;
      label[fi] = new_label;
      n_true += new_label;
      for (const SourceVote& sv : votes) {
        int o = sv.vote == Vote::kTrue ? 1 : 0;
        counts[static_cast<size_t>(sv.source)].n[new_label][o] += 1.0;
      }
    }
    if (sweep >= options_.burn_in) {
      for (size_t fi = 0; fi < facts; ++fi) truth_sum[fi] += label[fi];
      ++samples_kept;
    }
    if (telemetry != nullptr) {
      // "Delta" for a Gibbs sweep is the fraction of labels that
      // flipped; the trust distribution is each source's agreement
      // with the current labels, read off the sufficient statistics.
      std::vector<double> agreement(sources, 0.0);
      for (size_t s = 0; s < sources; ++s) {
        const SourceCounts& sc = counts[s];
        double total =
            sc.n[0][0] + sc.n[0][1] + sc.n[1][0] + sc.n[1][1];
        agreement[s] =
            total > 0.0 ? (sc.n[1][1] + sc.n[0][0]) / total : 0.0;
      }
      RecordIteration(telemetry.get(), sweep,
                      facts > 0
                          ? static_cast<double>(flips) /
                                static_cast<double>(facts)
                          : 0.0,
                      agreement);
    }
    completed_sweeps = sweep + 1;
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability.resize(facts);
  CORROB_CHECK(samples_kept > 0 || TerminatedEarly(termination));
  if (samples_kept > 0) {
    for (size_t fi = 0; fi < facts; ++fi) {
      result.fact_probability[fi] =
          truth_sum[fi] / static_cast<double>(samples_kept);
    }
  } else {
    // Interrupted inside burn-in, before any kept sample: the best
    // available state is the chain's current labels.
    for (size_t fi = 0; fi < facts; ++fi) {
      result.fact_probability[fi] = label[fi] != 0 ? 1.0 : 0.0;
    }
  }
  // Report source trust as precision against the decided labels.
  result.source_trust.assign(sources, 0.0);
  std::vector<bool> decisions = result.Decisions();
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    auto votes = dataset.VotesBySource(s);
    if (votes.empty()) continue;
    double correct = 0.0;
    for (const FactVote& fv : votes) {
      bool voted_true = fv.vote == Vote::kTrue;
      if (voted_true == decisions[static_cast<size_t>(fv.fact)]) correct += 1.0;
    }
    result.source_trust[static_cast<size_t>(s)] =
        correct / static_cast<double>(votes.size());
  }
  result.iterations = completed_sweeps;
  result.termination = termination;
  if (telemetry != nullptr) {
    telemetry->iterations = completed_sweeps;
    // A sampler has no fixpoint; "converged" records that the
    // completed sweeps left at least one kept sample.
    telemetry->converged = samples_kept > 0;
    result.telemetry = std::move(telemetry);
  }
  return result;
}

}  // namespace corrob
