#include "core/cosine.h"

#include <cmath>

#include "common/math_util.h"

namespace corrob {

Result<CorroborationResult> CosineCorroborator::Run(
    const Dataset& dataset) const {
  if (options_.damping < 0.0 || options_.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0,1)");
  }
  if (options_.trust_power <= 0.0) {
    return Status::InvalidArgument("trust_power must be positive");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const size_t facts = static_cast<size_t>(dataset.num_facts());
  const size_t sources = static_cast<size_t>(dataset.num_sources());
  std::vector<double> trust(sources, options_.initial_trust);
  std::vector<double> value(facts, 0.0);  // V(f) in [-1, 1].

  auto vote_sign = [](Vote v) { return v == Vote::kTrue ? 1.0 : -1.0; };

  int iteration = 0;
  for (; iteration < options_.max_iterations; ++iteration) {
    // Truth update, weighted by T(s)^p (negative trust flips votes).
    for (FactId f = 0; f < dataset.num_facts(); ++f) {
      auto votes = dataset.VotesOnFact(f);
      if (votes.empty()) {
        value[static_cast<size_t>(f)] = 0.0;
        continue;
      }
      double numerator = 0.0;
      double denominator = 0.0;
      for (const SourceVote& sv : votes) {
        double t = trust[static_cast<size_t>(sv.source)];
        double w = std::copysign(
            std::pow(std::fabs(t), options_.trust_power), t);
        numerator += vote_sign(sv.vote) * w;
        denominator += std::fabs(w);
      }
      value[static_cast<size_t>(f)] =
          denominator > 0.0 ? Clamp(numerator / denominator, -1.0, 1.0)
                            : 0.0;
    }

    // Trust update: damped cosine similarity between the source's
    // vote vector and the current estimates.
    double max_change = 0.0;
    for (SourceId s = 0; s < dataset.num_sources(); ++s) {
      auto votes = dataset.VotesBySource(s);
      if (votes.empty()) continue;
      double dot = 0.0;
      double value_norm_sq = 0.0;
      for (const FactVote& fv : votes) {
        double v = value[static_cast<size_t>(fv.fact)];
        dot += vote_sign(fv.vote) * v;
        value_norm_sq += v * v;
      }
      double vote_norm = std::sqrt(static_cast<double>(votes.size()));
      double value_norm = std::sqrt(value_norm_sq);
      double cosine = (vote_norm > 0.0 && value_norm > 0.0)
                          ? dot / (vote_norm * value_norm)
                          : 0.0;
      double next = options_.damping * trust[static_cast<size_t>(s)] +
                    (1.0 - options_.damping) * cosine;
      max_change =
          std::max(max_change, std::fabs(next - trust[static_cast<size_t>(s)]));
      trust[static_cast<size_t>(s)] = next;
    }
    if (max_change < options_.tolerance) {
      ++iteration;
      break;
    }
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability.resize(facts);
  for (size_t f = 0; f < facts; ++f) {
    result.fact_probability[f] = (value[f] + 1.0) / 2.0;
  }
  // Report trust mapped into [0, 1] for comparability with the other
  // methods (a perfectly anti-correlated source reads 0).
  result.source_trust.resize(sources);
  for (size_t s = 0; s < sources; ++s) {
    result.source_trust[s] = (Clamp(trust[s], -1.0, 1.0) + 1.0) / 2.0;
  }
  result.iterations = iteration;
  return result;
}

}  // namespace corrob
