#include "core/cosine.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "core/telemetry_util.h"
#include "core/vote_matrix.h"
#include "obs/trace.h"

namespace corrob {

Result<CorroborationResult> CosineCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.damping < 0.0 || options_.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in [0,1)");
  }
  if (options_.trust_power <= 0.0) {
    return Status::InvalidArgument("trust_power must be positive");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  CORROB_TRACE_SPAN("Cosine::Run");
  const VoteMatrix matrix(dataset);
  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options_.num_threads);
  const size_t facts = static_cast<size_t>(matrix.num_facts());
  const size_t sources = static_cast<size_t>(matrix.num_sources());
  std::vector<double> trust(sources, options_.initial_trust);
  std::vector<double> value(facts, 0.0);  // V(f) in [-1, 1].
  auto telemetry =
      MaybeStartTelemetry(options_.collect_telemetry, name(), dataset);

  auto vote_sign = [](uint8_t is_true) { return is_true ? 1.0 : -1.0; };
  // `value` is rewritten in place by the truth sweep; snapshot it so a
  // mid-sweep interruption hands back the last completed iteration.
  const StopSignal* stop = context.sweep_stop();
  std::vector<double> value_snapshot;

  Termination termination = Termination::kIterationCap;
  int iteration = 0;
  const auto over_budget = context.CheckMatrixBytes(matrix.ResidentBytes());
  if (over_budget) termination = *over_budget;
  for (; !over_budget && iteration < options_.max_iterations; ++iteration) {
    if (auto interrupt = context.CheckIterationBoundary(iteration)) {
      termination = *interrupt;
      break;
    }
    if (stop != nullptr) value_snapshot = value;
    // Truth update, weighted by T(s)^p (negative trust flips votes),
    // partitioned by fact.
    bool complete = matrix.ForEachFact(
        pool.get(),
        [&](FactId f) {
      auto voters = matrix.FactSources(f);
      if (voters.empty()) {
        value[static_cast<size_t>(f)] = 0.0;
        return;
      }
      auto is_true = matrix.FactVotesTrue(f);
      double numerator = 0.0;
      double denominator = 0.0;
      for (size_t k = 0; k < voters.size(); ++k) {
        const double t = trust[static_cast<size_t>(voters[k])];
        const double w = std::copysign(
            std::pow(std::fabs(t), options_.trust_power), t);
        numerator += vote_sign(is_true[k]) * w;
        denominator += std::fabs(w);
      }
      value[static_cast<size_t>(f)] =
          denominator > 0.0 ? Clamp(numerator / denominator, -1.0, 1.0)
                            : 0.0;
        },
        stop);

    // Trust update: damped cosine similarity between the source's
    // vote vector and the current estimates, partitioned by source.
    std::vector<double> next_trust;
    if (complete) {
      next_trust = trust;
      complete = matrix.ForEachSource(
          pool.get(),
          [&](SourceId s) {
      auto voted = matrix.SourceFacts(s);
      if (voted.empty()) return;
      auto is_true = matrix.SourceVotesTrue(s);
      double dot = 0.0;
      double value_norm_sq = 0.0;
      for (size_t k = 0; k < voted.size(); ++k) {
        const double v = value[static_cast<size_t>(voted[k])];
        dot += vote_sign(is_true[k]) * v;
        value_norm_sq += v * v;
      }
      const double vote_norm = std::sqrt(static_cast<double>(voted.size()));
      const double value_norm = std::sqrt(value_norm_sq);
      const double cosine = (vote_norm > 0.0 && value_norm > 0.0)
                                ? dot / (vote_norm * value_norm)
                                : 0.0;
      next_trust[static_cast<size_t>(s)] =
          options_.damping * trust[static_cast<size_t>(s)] +
          (1.0 - options_.damping) * cosine;
          },
          stop);
    }
    if (!complete) {
      // A sweep was cut short mid-iteration: restore the values of
      // the last completed iteration; trust was not yet replaced.
      value = std::move(value_snapshot);
      termination = context.SweepInterruption();
      break;
    }
    double max_change = 0.0;
    for (size_t s = 0; s < sources; ++s) {
      max_change = std::max(max_change, std::fabs(next_trust[s] - trust[s]));
    }
    trust = std::move(next_trust);
    RecordIteration(telemetry.get(), iteration, max_change, trust);
    if (max_change < options_.tolerance) {
      termination = Termination::kConverged;
      ++iteration;
      break;
    }
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability.resize(facts);
  for (size_t f = 0; f < facts; ++f) {
    result.fact_probability[f] = (value[f] + 1.0) / 2.0;
  }
  // Report trust mapped into [0, 1] for comparability with the other
  // methods (a perfectly anti-correlated source reads 0).
  result.source_trust.resize(sources);
  for (size_t s = 0; s < sources; ++s) {
    result.source_trust[s] = (Clamp(trust[s], -1.0, 1.0) + 1.0) / 2.0;
  }
  result.iterations = iteration;
  result.termination = termination;
  if (telemetry != nullptr) {
    telemetry->iterations = iteration;
    telemetry->converged = termination == Termination::kConverged;
    result.telemetry = std::move(telemetry);
  }
  return result;
}

}  // namespace corrob
