#ifndef CORROB_CORE_RUN_CONTEXT_H_
#define CORROB_CORE_RUN_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/budget.h"

namespace corrob {

/// Why a corroboration run stopped. kConverged and kIterationCap are
/// the two historical outcomes; the remaining reasons are early
/// terminations where the run degraded gracefully and returned its
/// best-so-far state (see docs/ROBUSTNESS.md, "Deadlines,
/// cancellation, and budgets").
enum class Termination {
  /// The fixpoint reached its tolerance (or the method is one-shot).
  kConverged = 0,
  /// max_iterations elapsed without convergence.
  kIterationCap = 1,
  /// The RunContext deadline expired (or budget.force_expire fired).
  kDeadlineExceeded = 2,
  /// The CancellationToken fired (or cancel.at_iteration fired).
  kCancelled = 3,
  /// A ResourceBudget cap (rounds, vote-matrix bytes) was hit.
  kBudgetExhausted = 4,
};

/// Stable lowercase name, e.g. "deadline_exceeded".
std::string_view TerminationName(Termination termination);

/// True for the reasons that cut a run short of its natural end
/// (everything but kConverged and kIterationCap).
bool TerminatedEarly(Termination termination);

/// Execution budget of one corroboration run: a cancellation token, a
/// wall-clock deadline, and resource caps, bundled so Corroborator
/// implementations poll one object at their sequential boundaries.
///
/// The context is cooperative and cheap when unbounded: every check
/// short-circuits on a couple of flag loads, so threading it through
/// a hot loop costs nothing measurable until a budget is armed
/// (bench_micro's BM_TwoEstimateSweep* kernels track this; the
/// acceptance bar is <= 2% disarmed overhead).
///
/// Failpoint hooks (checked only at sequential iteration/round
/// boundaries so hit counts are thread-count-independent):
///   - "budget.force_expire"   -> reports kDeadlineExceeded
///   - "cancel.at_iteration"   -> reports kCancelled
/// Arming either with skip=k fires after exactly k completed
/// iterations, which is how the termination-parity tests pin "cancel
/// at iteration k" deterministically.
class RunContext {
 public:
  RunContext() = default;

  /// The shared no-op context: never cancelled, never expires.
  static const RunContext& Unbounded();

  RunContext& WithCancellation(const CancellationToken* token) {
    stop_ = StopSignal(token, stop_.deadline());
    return *this;
  }
  RunContext& WithDeadline(Deadline deadline) {
    stop_ = StopSignal(stop_.cancellation(), deadline);
    return *this;
  }
  RunContext& WithBudget(ResourceBudget budget) {
    budget_ = budget;
    return *this;
  }

  const StopSignal& stop() const { return stop_; }
  /// The stop signal for sweep-level polling (ParallelApply), or null
  /// when neither cancellation nor deadline is armed — the null keeps
  /// the disarmed sweep on the exact pre-budget code path.
  const StopSignal* sweep_stop() const {
    return stop_.armed() ? &stop_ : nullptr;
  }
  const ResourceBudget& budget() const { return budget_; }

  /// True when any interruption source is armed (token, deadline, or
  /// round budget). Corroborators use this to decide whether to pay
  /// for best-so-far snapshots.
  bool bounded() const {
    return stop_.armed() || budget_.max_rounds > 0;
  }

  /// The boundary poll: call once per *completed* iteration / round /
  /// Gibbs sweep from sequential code, passing how many have fully
  /// completed. Returns the termination reason when the run should
  /// stop with its current (consistent) state, nullopt to keep going.
  /// Also services the budget.force_expire / cancel.at_iteration
  /// failpoints and records interruption metrics.
  std::optional<Termination> CheckIterationBoundary(
      int64_t completed_iterations) const;

  /// Maps a sweep that ParallelApply cut short (returned false) to
  /// its termination reason. The caller must already have discarded
  /// the partial sweep's writes.
  Termination SweepInterruption() const;

  /// Enforces the vote-matrix byte cap: kBudgetExhausted when
  /// `resident_bytes` exceeds a configured max_vote_matrix_bytes.
  std::optional<Termination> CheckMatrixBytes(int64_t resident_bytes) const;

 private:
  StopSignal stop_;
  ResourceBudget budget_;
};

}  // namespace corrob

#endif  // CORROB_CORE_RUN_CONTEXT_H_
