#ifndef CORROB_CORE_REGISTRY_H_
#define CORROB_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/corroborator.h"

namespace corrob {

/// Cross-cutting knobs applied on top of each algorithm's defaults
/// when constructing through the registry.
struct CorroboratorOptions {
  /// Worker threads for the iterative corroborators' update sweeps
  /// (TwoEstimate, ThreeEstimate, Cosine, TruthFinder, IncEst*).
  /// 1 = sequential legacy path; results are bit-identical at any
  /// value. One-shot methods (Voting, Counting, BayesEstimate, the
  /// Pasternack family) ignore it.
  int num_threads = 1;
  /// Attach convergence telemetry to CorroborationResult::telemetry
  /// for the methods that record it (TwoEstimate, ThreeEstimate,
  /// Cosine, TruthFinder, BayesEstimate, IncEst*); others ignore it.
  bool collect_telemetry = false;
};

/// Constructs a corroborator by name with default options. Matching is
/// case- and separator-insensitive ("IncEstHeu", "inc_est_heu" and
/// "INCESTHEU" all resolve); canonical names:
///   "Voting", "Counting", "TwoEstimate", "ThreeEstimate",
///   "BayesEstimate", "IncEstHeu", "IncEstPS",
/// plus the extended baselines beyond the paper's comparison set:
///   "Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest".
[[nodiscard]] Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name);

/// Same, with the cross-cutting options applied.
[[nodiscard]] Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name, const CorroboratorOptions& options);

/// The names of the paper's own methods, in the order its Table 4
/// lists them.
std::vector<std::string> CorroboratorNames();

/// Extra classic truth-discovery baselines from the paper's related
/// work (Galland et al.'s Cosine; Yin et al.'s TruthFinder;
/// Pasternack & Roth's AvgLog / Invest / PooledInvest).
std::vector<std::string> ExtendedCorroboratorNames();

}  // namespace corrob

#endif  // CORROB_CORE_REGISTRY_H_
