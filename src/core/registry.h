#ifndef CORROB_CORE_REGISTRY_H_
#define CORROB_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/corroborator.h"

namespace corrob {

/// Constructs a corroborator by its canonical name with default
/// options. Known names (case-sensitive):
///   "Voting", "Counting", "TwoEstimate", "ThreeEstimate",
///   "BayesEstimate", "IncEstHeu", "IncEstPS",
/// plus the extended baselines beyond the paper's comparison set:
///   "Cosine", "TruthFinder", "AvgLog", "Invest", "PooledInvest".
Result<std::unique_ptr<Corroborator>> MakeCorroborator(
    const std::string& name);

/// The names of the paper's own methods, in the order its Table 4
/// lists them.
std::vector<std::string> CorroboratorNames();

/// Extra classic truth-discovery baselines from the paper's related
/// work (Galland et al.'s Cosine; Yin et al.'s TruthFinder;
/// Pasternack & Roth's AvgLog / Invest / PooledInvest).
std::vector<std::string> ExtendedCorroboratorNames();

}  // namespace corrob

#endif  // CORROB_CORE_REGISTRY_H_
