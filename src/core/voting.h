#ifndef CORROB_CORE_VOTING_H_
#define CORROB_CORE_VOTING_H_

#include "core/corroborator.h"

namespace corrob {

/// The Voting baseline (paper §6.1.1): a fact is true iff strictly
/// more sources vote T than F. Facts with no votes are false. Source
/// trust is read out against the voted decisions.
class VotingCorroborator final : public Corroborator {
 public:
  std::string_view name() const override { return "Voting"; }
  using Corroborator::Run;
  [[nodiscard]] Result<CorroborationResult> Run(
      const Dataset& dataset, const RunContext& context) const override;
};

}  // namespace corrob

#endif  // CORROB_CORE_VOTING_H_
