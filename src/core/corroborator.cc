#include "core/corroborator.h"

namespace corrob {

std::vector<bool> CorroborationResult::Decisions() const {
  std::vector<bool> out(fact_probability.size());
  for (size_t f = 0; f < fact_probability.size(); ++f) {
    out[f] = fact_probability[f] >= kDecisionThreshold;
  }
  return out;
}

double CorrobScore(std::span<const SourceVote> votes,
                   const std::vector<double>& trust) {
  if (votes.empty()) return 0.5;
  double sum = 0.0;
  for (const SourceVote& sv : votes) {
    double t = trust[static_cast<size_t>(sv.source)];
    sum += sv.vote == Vote::kTrue ? t : 1.0 - t;
  }
  return sum / static_cast<double>(votes.size());
}

std::vector<double> TrustAgainstDecisions(const Dataset& dataset,
                                          const std::vector<bool>& decisions,
                                          double no_vote_value) {
  std::vector<double> trust(static_cast<size_t>(dataset.num_sources()),
                            no_vote_value);
  for (SourceId s = 0; s < dataset.num_sources(); ++s) {
    auto votes = dataset.VotesBySource(s);
    if (votes.empty()) continue;
    int64_t correct = 0;
    for (const FactVote& fv : votes) {
      bool voted_true = fv.vote == Vote::kTrue;
      if (voted_true == decisions[static_cast<size_t>(fv.fact)]) ++correct;
    }
    trust[static_cast<size_t>(s)] =
        static_cast<double>(correct) / static_cast<double>(votes.size());
  }
  return trust;
}

}  // namespace corrob
