#include "core/two_estimate.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "core/telemetry_util.h"
#include "core/vote_matrix.h"
#include "obs/trace.h"

namespace corrob {

void NormalizeEstimates(Normalization scheme, std::vector<double>* values) {
  switch (scheme) {
    case Normalization::kNone:
      return;
    case Normalization::kRound:
      for (double& v : *values) v = v >= 0.5 ? 1.0 : 0.0;
      return;
    case Normalization::kLinear: {
      if (values->empty()) return;
      auto [lo_it, hi_it] = std::minmax_element(values->begin(), values->end());
      double lo = *lo_it, hi = *hi_it;
      if (hi - lo < 1e-12) return;  // Degenerate span: leave unchanged.
      for (double& v : *values) v = (v - lo) / (hi - lo);
      return;
    }
  }
}

Result<CorroborationResult> TwoEstimateCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.initial_trust < 0.0 || options_.initial_trust > 1.0) {
    return Status::InvalidArgument("initial_trust must be in [0,1]");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  CORROB_TRACE_SPAN("TwoEstimate::Run");
  const VoteMatrix matrix(dataset);
  std::unique_ptr<ThreadPool> pool = MakeSweepPool(options_.num_threads);
  const size_t facts = static_cast<size_t>(matrix.num_facts());
  const size_t sources = static_cast<size_t>(matrix.num_sources());
  std::vector<double> trust(sources, options_.initial_trust);
  std::vector<double> probability(facts, 0.5);
  auto telemetry =
      MaybeStartTelemetry(options_.collect_telemetry, name(), dataset);
  // The stop signal is polled inside the sweeps; a mid-sweep
  // interruption rolls back to `snapshot` so the returned state is
  // exactly the last completed iteration's.
  const StopSignal* stop = context.sweep_stop();
  std::vector<double> snapshot;

  Termination termination = Termination::kIterationCap;
  int iteration = 0;
  const auto over_budget = context.CheckMatrixBytes(matrix.ResidentBytes());
  if (over_budget) termination = *over_budget;
  for (; !over_budget && iteration < options_.max_iterations; ++iteration) {
    if (auto interrupt = context.CheckIterationBoundary(iteration)) {
      termination = *interrupt;
      break;
    }
    if (stop != nullptr) snapshot = probability;
    // Corrob step (paper Eq. 6): each fact's score depends only on
    // the previous iteration's trust, so the sweep partitions by
    // fact.
    bool complete = matrix.ForEachFact(
        pool.get(),
        [&](FactId f) {
          probability[static_cast<size_t>(f)] = matrix.RowScore(f, trust);
        },
        stop);
    if (complete) {
      NormalizeEstimates(options_.normalization, &probability);
      // Update step (paper Eq. 7), partitioned by source.
      std::vector<double> next_trust(sources, options_.initial_trust);
      complete = matrix.ForEachSource(
          pool.get(),
          [&](SourceId s) {
            auto voted = matrix.SourceFacts(s);
            if (voted.empty()) return;
            auto is_true = matrix.SourceVotesTrue(s);
            double sum = 0.0;
            for (size_t k = 0; k < voted.size(); ++k) {
              const double p = probability[static_cast<size_t>(voted[k])];
              sum += is_true[k] ? p : 1.0 - p;
            }
            next_trust[static_cast<size_t>(s)] =
                sum / static_cast<double>(voted.size());
          },
          stop);
      if (complete) {
        double delta = 0.0;
        for (size_t s = 0; s < sources; ++s) {
          delta = std::max(delta, std::fabs(next_trust[s] - trust[s]));
        }
        trust = std::move(next_trust);
        RecordIteration(telemetry.get(), iteration, delta, trust);
        if (delta < options_.tolerance) {
          termination = Termination::kConverged;
          ++iteration;
          break;
        }
        continue;
      }
    }
    // A sweep was cut short: its writes are partial. Restore the
    // pre-iteration probabilities; trust was not yet replaced.
    probability = std::move(snapshot);
    termination = context.SweepInterruption();
    break;
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability = std::move(probability);
  result.source_trust = std::move(trust);
  result.iterations = iteration;
  result.termination = termination;
  if (telemetry != nullptr) {
    telemetry->iterations = iteration;
    telemetry->converged = termination == Termination::kConverged;
    result.telemetry = std::move(telemetry);
  }
  return result;
}

}  // namespace corrob
