#include "core/vote_matrix.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace corrob {

VoteMatrix::VoteMatrix(const Dataset& dataset)
    : num_facts_(dataset.num_facts()), num_sources_(dataset.num_sources()) {
  CORROB_TRACE_SPAN("VoteMatrix::Build");
  static obs::Counter* builds =
      obs::MetricsRegistry::Global().GetCounter("corrob.vote_matrix.builds");
  static obs::Counter* votes_indexed =
      obs::MetricsRegistry::Global().GetCounter(
          "corrob.vote_matrix.votes_indexed");
  builds->Add(1);
  votes_indexed->Add(dataset.num_votes());
  const size_t votes = static_cast<size_t>(dataset.num_votes());
  fact_offsets_.reserve(static_cast<size_t>(num_facts_) + 1);
  fact_sources_.reserve(votes);
  fact_true_.reserve(votes);
  fact_offsets_.push_back(0);
  for (FactId f = 0; f < num_facts_; ++f) {
    for (const SourceVote& sv : dataset.VotesOnFact(f)) {
      fact_sources_.push_back(sv.source);
      fact_true_.push_back(sv.vote == Vote::kTrue ? 1 : 0);
    }
    fact_offsets_.push_back(fact_sources_.size());
  }
  source_offsets_.reserve(static_cast<size_t>(num_sources_) + 1);
  source_facts_.reserve(votes);
  source_true_.reserve(votes);
  source_offsets_.push_back(0);
  for (SourceId s = 0; s < num_sources_; ++s) {
    for (const FactVote& fv : dataset.VotesBySource(s)) {
      source_facts_.push_back(fv.fact);
      source_true_.push_back(fv.vote == Vote::kTrue ? 1 : 0);
    }
    source_offsets_.push_back(source_facts_.size());
  }
}

bool VoteMatrix::ForEachFact(ThreadPool* pool,
                             const std::function<void(FactId)>& fn,
                             const StopSignal* stop) const {
  return ParallelApply(
      pool, num_facts_,
      [&fn](int64_t begin, int64_t end) {
        for (int64_t f = begin; f < end; ++f) fn(static_cast<FactId>(f));
      },
      stop);
}

bool VoteMatrix::ForEachSource(ThreadPool* pool,
                               const std::function<void(SourceId)>& fn,
                               const StopSignal* stop) const {
  return ParallelApply(
      pool, num_sources_,
      [&fn](int64_t begin, int64_t end) {
        for (int64_t s = begin; s < end; ++s) fn(static_cast<SourceId>(s));
      },
      stop);
}

int64_t VoteMatrix::ResidentBytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<int64_t>(v.capacity() * sizeof(v[0]));
  };
  return static_cast<int64_t>(sizeof(*this)) + bytes(fact_offsets_) +
         bytes(fact_sources_) + bytes(fact_true_) + bytes(source_offsets_) +
         bytes(source_facts_) + bytes(source_true_);
}

std::unique_ptr<ThreadPool> MakeSweepPool(int num_threads) {
  if (num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

}  // namespace corrob
