#ifndef CORROB_CORE_FACT_GROUP_H_
#define CORROB_CORE_FACT_GROUP_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace corrob {

/// A fact group (paper §5.1): the set of facts sharing one vote
/// signature. "Facts with the same votes should have the same
/// corroboration result", so IncEstimate selects and evaluates whole
/// groups (or balanced slices of them).
struct FactGroup {
  /// The shared (source, vote) signature, sorted by source id.
  std::vector<SourceVote> signature;
  /// Member facts in ascending fact-id order.
  std::vector<FactId> facts;
  /// Members facts[0..committed) have been evaluated.
  size_t committed = 0;

  size_t size() const { return facts.size(); }
  size_t remaining() const { return facts.size() - committed; }
  bool exhausted() const { return committed == facts.size(); }
};

/// Partitions the dataset's facts into groups by vote signature.
/// Groups are ordered by their smallest member fact id, making group
/// indices deterministic. Facts with no votes form one group with an
/// empty signature.
std::vector<FactGroup> BuildFactGroups(const Dataset& dataset);

/// Adjacency from source id to the indices of groups whose signature
/// contains that source. Used for incremental ΔH computation.
std::vector<std::vector<int32_t>> BuildSourceGroupIndex(
    const std::vector<FactGroup>& groups, int32_t num_sources);

}  // namespace corrob

#endif  // CORROB_CORE_FACT_GROUP_H_
