#include "core/pasternack.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace corrob {

namespace {

/// Max-normalizes a vector in place; no-op for all-zero input.
void MaxNormalize(std::vector<double>* values) {
  double max_value = 0.0;
  for (double v : *values) max_value = std::max(max_value, v);
  if (max_value <= 0.0) return;
  for (double& v : *values) v /= max_value;
}

}  // namespace

Result<CorroborationResult> PasternackCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.growth <= 0.0) {
    return Status::InvalidArgument("growth must be positive");
  }
  if (options_.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));

  const size_t facts = static_cast<size_t>(dataset.num_facts());
  const size_t sources = static_cast<size_t>(dataset.num_sources());

  // Claims are indexed 2f (f-true) and 2f+1 (f-false).
  std::vector<double> trust(sources, 1.0);
  std::vector<double> belief(2 * facts, 0.0);

  auto claim_index = [](const FactVote& fv) {
    return 2 * static_cast<size_t>(fv.fact) +
           (fv.vote == Vote::kTrue ? 0 : 1);
  };
  auto claim_index_sv = [](FactId f, const SourceVote& sv) {
    return 2 * static_cast<size_t>(f) + (sv.vote == Vote::kTrue ? 0 : 1);
  };

  Termination termination = Termination::kIterationCap;
  int iteration = 0;
  for (; iteration < options_.max_iterations; ++iteration) {
    // Sequential fixpoint: iteration boundaries are the interruption
    // points. `belief` still holds the previous iteration's values at
    // the boundary, so an interrupted run returns exactly the state
    // of a run truncated there.
    if (auto interrupt = context.CheckIterationBoundary(iteration)) {
      termination = *interrupt;
      break;
    }
    std::fill(belief.begin(), belief.end(), 0.0);

    if (options_.variant == PasternackVariant::kAvgLog) {
      // B(c) = Σ_{s asserts c} T(s).
      for (FactId f = 0; f < dataset.num_facts(); ++f) {
        for (const SourceVote& sv : dataset.VotesOnFact(f)) {
          belief[claim_index_sv(f, sv)] +=
              trust[static_cast<size_t>(sv.source)];
        }
      }
    } else {
      // Invest: each source spreads its trust over its claims.
      for (SourceId s = 0; s < dataset.num_sources(); ++s) {
        auto votes = dataset.VotesBySource(s);
        if (votes.empty()) continue;
        double stake = trust[static_cast<size_t>(s)] /
                       static_cast<double>(votes.size());
        for (const FactVote& fv : votes) {
          belief[claim_index(fv)] += stake;
        }
      }
      // Growth G(x) = x^g, per claim (Invest) or on the claim's share
      // of its mutual-exclusion pool (PooledInvest).
      if (options_.variant == PasternackVariant::kPooledInvest) {
        for (size_t f = 0; f < facts; ++f) {
          double pool = belief[2 * f] + belief[2 * f + 1];
          if (pool <= 0.0) continue;
          double grown_true = std::pow(belief[2 * f] / pool, options_.growth);
          double grown_false =
              std::pow(belief[2 * f + 1] / pool, options_.growth);
          double grown_pool = grown_true + grown_false;
          belief[2 * f] = pool * grown_true / grown_pool;
          belief[2 * f + 1] = pool * grown_false / grown_pool;
        }
      } else {
        for (double& b : belief) b = std::pow(b, options_.growth);
      }
    }
    MaxNormalize(&belief);

    // Trust update.
    std::vector<double> next_trust(sources, 0.0);
    if (options_.variant == PasternackVariant::kAvgLog) {
      for (SourceId s = 0; s < dataset.num_sources(); ++s) {
        auto votes = dataset.VotesBySource(s);
        if (votes.empty()) continue;
        double sum = 0.0;
        for (const FactVote& fv : votes) sum += belief[claim_index(fv)];
        next_trust[static_cast<size_t>(s)] =
            std::log1p(static_cast<double>(votes.size())) * sum /
            static_cast<double>(votes.size());
      }
    } else {
      // Credit each claim's belief back in proportion to the share of
      // the total investment the source contributed.
      std::vector<double> total_stake(2 * facts, 0.0);
      for (SourceId s = 0; s < dataset.num_sources(); ++s) {
        auto votes = dataset.VotesBySource(s);
        if (votes.empty()) continue;
        double stake = trust[static_cast<size_t>(s)] /
                       static_cast<double>(votes.size());
        for (const FactVote& fv : votes) {
          total_stake[claim_index(fv)] += stake;
        }
      }
      for (SourceId s = 0; s < dataset.num_sources(); ++s) {
        auto votes = dataset.VotesBySource(s);
        if (votes.empty()) continue;
        double stake = trust[static_cast<size_t>(s)] /
                       static_cast<double>(votes.size());
        double sum = 0.0;
        for (const FactVote& fv : votes) {
          size_t c = claim_index(fv);
          if (total_stake[c] > 0.0) {
            sum += belief[c] * stake / total_stake[c];
          }
        }
        next_trust[static_cast<size_t>(s)] = sum;
      }
    }
    MaxNormalize(&next_trust);

    double max_change = 0.0;
    for (size_t s = 0; s < sources; ++s) {
      max_change = std::max(max_change, std::fabs(next_trust[s] - trust[s]));
    }
    trust = std::move(next_trust);
    if (max_change < options_.tolerance) {
      termination = Termination::kConverged;
      ++iteration;
      break;
    }
  }

  CorroborationResult result;
  result.algorithm = std::string(name());
  result.fact_probability.resize(facts, 0.5);
  for (size_t f = 0; f < facts; ++f) {
    double pool = belief[2 * f] + belief[2 * f + 1];
    if (dataset.VotesOnFact(static_cast<FactId>(f)).empty()) {
      result.fact_probability[f] = 0.5;
    } else if (pool <= 0.0) {
      // Voted on, but every asserting source has zero trust.
      result.fact_probability[f] = 0.0;
    } else {
      result.fact_probability[f] = belief[2 * f] / pool;
    }
  }
  result.source_trust = std::move(trust);
  result.iterations = iteration;
  result.termination = termination;
  return result;
}

}  // namespace corrob
