#ifndef CORROB_CORE_ONLINE_H_
#define CORROB_CORE_ONLINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/timer.h"
#include "data/vote.h"
#include "obs/clock.h"

namespace corrob {

struct OnlineCorroboratorOptions {
  /// Default trust for sources with no evaluated votes yet (σ0).
  double initial_trust = 0.9;
  /// Pseudo-observation weight behind the Eq. 8 trust update, as in
  /// IncEstimateOptions::trust_prior_weight.
  double trust_prior_weight = 8.0;
  /// Weak-positive verdicts (0.5 <= σ(f) < 0.5 + tie_margin) are
  /// returned but do NOT move source trust: a barely-positive
  /// decision overrides dissent on coin-flip evidence and would
  /// punish the dissenting sources. Negative verdicts always commit
  /// (the paper's walkthrough commits r5 at σ = 0.45) — the streaming
  /// analogue of IncEstHeu's asymmetric deferral band (DESIGN.md
  /// §3.1). 0 disables deferral entirely (paper-exact Eq. 8).
  double tie_margin = 0.05;
};

/// Streaming corroboration: the paper's incrementally calculated
/// trust (Definition 1) with *arrival order* as the fact-selection
/// strategy. Facts are evaluated once, at the moment they are
/// observed, with the multi-value trust in effect at that time point;
/// the committed decision immediately updates the trust of the
/// voting sources.
///
/// This is the deployment-shaped variant of IncEstimate: a crawler
/// that discovers listings over time can corroborate each one on
/// arrival with O(votes) work, instead of re-running a batch
/// algorithm. Batch IncEstHeu remains more accurate because it
/// *chooses* the evaluation order; Observe() takes the order as
/// given.
///
/// The complete mutable state of an OnlineCorroborator, exported for
/// checkpointing (see core/online_checkpoint.h). Restoring this state
/// into a fresh instance reproduces the trust trajectory bit for bit.
struct OnlineCorroboratorState {
  OnlineCorroboratorOptions options;
  std::vector<std::string> source_names;
  std::vector<double> correct;
  std::vector<double> total;
  int64_t facts_observed = 0;
  /// Telemetry counters (snapshot v2): how many observed facts were
  /// decided true/false, and how many weak positives were deferred
  /// (verdict returned, trust untouched). Restoring them keeps a
  /// resumed stream's running stats continuous with the original run;
  /// v1 snapshots restore them as 0.
  int64_t decisions_true = 0;
  int64_t decisions_false = 0;
  int64_t deferrals = 0;
};

/// Not thread-safe; wrap with external synchronization if shared.
class OnlineCorroborator {
 public:
  /// `clock` feeds the cumulative Observe() stopwatch (see
  /// observe_nanos()); null keeps the corroborator fully
  /// deterministic — the decision path never reads it either way.
  explicit OnlineCorroborator(OnlineCorroboratorOptions options = {},
                              const obs::Clock* clock = nullptr);

  /// Registers a source (idempotent per name) and returns its id.
  SourceId AddSource(const std::string& name);

  int32_t num_sources() const {
    return static_cast<int32_t>(source_names_.size());
  }
  const std::string& source_name(SourceId s) const {
    return source_names_[static_cast<size_t>(s)];
  }

  /// The verdict for one observed fact.
  struct Verdict {
    double probability = 0.5;  ///< σ(f) at the observation time point
    bool decision = true;      ///< Eq. 2 threshold
  };

  /// Evaluates a fact from its votes under the current trust, commits
  /// the decision into the trust state, and returns the verdict.
  /// Votes must reference registered sources; duplicate sources in
  /// one observation are rejected. An empty vote list yields the
  /// maximum-uncertainty verdict (σ = 0.5, decided true) and does not
  /// move any trust.
  [[nodiscard]] Result<Verdict> Observe(const std::vector<SourceVote>& votes);

  /// Current trust σ(s) of one source.
  double trust(SourceId s) const;

  /// Current trust of every source, in id order.
  std::vector<double> trust_snapshot() const;

  /// True once at least one of s's votes has been evaluated.
  bool SourceEvaluated(SourceId s) const {
    return total_[static_cast<size_t>(s)] > 0.0;
  }

  int64_t facts_observed() const { return facts_observed_; }

  /// Running decision counters (telemetry; checkpointed since
  /// snapshot v2 so a resumed stream keeps counting where it left
  /// off). A weak positive counts as a true decision AND a deferral.
  int64_t decisions_true() const { return decisions_true_; }
  int64_t decisions_false() const { return decisions_false_; }
  int64_t deferrals() const { return deferrals_; }

  /// Cumulative wall time spent inside Observe(), from the injected
  /// clock; 0 forever when constructed without one. Not checkpointed:
  /// wall time is not part of the deterministic state.
  int64_t observe_nanos() const { return observe_watch_.ElapsedNanos(); }

  const OnlineCorroboratorOptions& options() const { return options_; }

  /// Copies out the full mutable state (exact correct/total counters,
  /// not the derived trust) for checkpointing.
  OnlineCorroboratorState ExportState() const;

  /// Rebuilds a corroborator from exported state. Rejects
  /// inconsistent state (mismatched vector sizes, duplicate source
  /// names, correct > total or negative counters) with
  /// InvalidArgument.
  [[nodiscard]] static Result<OnlineCorroborator> FromState(OnlineCorroboratorState state);

 private:
  OnlineCorroboratorOptions options_;
  std::vector<std::string> source_names_;
  std::unordered_map<std::string, SourceId> source_index_;
  std::vector<double> correct_;
  std::vector<double> total_;
  int64_t facts_observed_ = 0;
  int64_t decisions_true_ = 0;
  int64_t decisions_false_ = 0;
  int64_t deferrals_ = 0;
  // Paused between observations; accumulates only inside Observe().
  StopwatchNs observe_watch_;
};

}  // namespace corrob

#endif  // CORROB_CORE_ONLINE_H_
