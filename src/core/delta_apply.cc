#include "core/delta_apply.h"

#include <string>
#include <unordered_map>
#include <utility>

#include "data/dataset_io.h"

namespace corrob {

Result<Dataset> ApplyDeltasToDataset(const Dataset& base,
                                     std::span<const WalRecord> deltas) {
  DatasetBuilder builder;
  // Name -> id maps mirroring the builder's assignment; DatasetBuilder
  // has no name lookup of its own and SetVoteByName would register
  // names that a retraction must not create.
  std::unordered_map<std::string, SourceId> sources;
  std::unordered_map<std::string, FactId> facts;
  sources.reserve(static_cast<size_t>(base.num_sources()));
  facts.reserve(static_cast<size_t>(base.num_facts()));

  // Re-register the base in id order so the rebuilt ids match.
  for (SourceId s = 0; s < base.num_sources(); ++s) {
    sources.emplace(base.source_name(s), builder.AddSource(base.source_name(s)));
  }
  for (FactId f = 0; f < base.num_facts(); ++f) {
    facts.emplace(base.fact_name(f), builder.AddFact(base.fact_name(f)));
  }
  for (SourceId s = 0; s < base.num_sources(); ++s) {
    for (const FactVote& fact_vote : base.VotesBySource(s)) {
      CORROB_RETURN_NOT_OK(builder.SetVote(s, fact_vote.fact, fact_vote.vote));
    }
  }

  for (size_t i = 0; i < deltas.size(); ++i) {
    const WalRecord& record = deltas[i];
    switch (record.type) {
      case WalRecordType::kAddSource: {
        sources.emplace(record.source, builder.AddSource(record.source));
        break;
      }
      case WalRecordType::kAddVote: {
        if (record.vote == Vote::kNone) {
          return Status::InvalidArgument(
              "delta " + std::to_string(i) +
              ": add-vote carries '-'; use retract-vote to erase");
        }
        SourceId s;
        auto source_it = sources.find(record.source);
        if (source_it != sources.end()) {
          s = source_it->second;
        } else {
          s = builder.AddSource(record.source);
          sources.emplace(record.source, s);
        }
        FactId f;
        auto fact_it = facts.find(record.fact);
        if (fact_it != facts.end()) {
          f = fact_it->second;
        } else {
          f = builder.AddFact(record.fact);
          facts.emplace(record.fact, f);
        }
        CORROB_RETURN_NOT_OK(builder.SetVote(s, f, record.vote));
        break;
      }
      case WalRecordType::kRetractVote: {
        auto source_it = sources.find(record.source);
        auto fact_it = facts.find(record.fact);
        if (source_it == sources.end() || fact_it == facts.end()) {
          break;  // retracting a vote that never existed is a no-op
        }
        CORROB_RETURN_NOT_OK(
            builder.SetVote(source_it->second, fact_it->second, Vote::kNone));
        break;
      }
      case WalRecordType::kSnapshotMarker:
        return Status::InvalidArgument(
            "delta " + std::to_string(i) +
            ": snapshot markers are log metadata, not mutations; filter "
            "them out (WalRecovery::Mutations)");
    }
  }
  return builder.Build();
}

Result<Dataset> DatasetFromWalRecovery(const WalRecovery& recovery) {
  Dataset base;
  if (recovery.has_snapshot) {
    CORROB_ASSIGN_OR_RETURN(LabeledDataset labeled,
                            ParseDatasetCsv(recovery.snapshot_csv));
    base = std::move(labeled.dataset);
  }
  return ApplyDeltasToDataset(base, recovery.Mutations());
}

}  // namespace corrob
