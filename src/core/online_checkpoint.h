#ifndef CORROB_CORE_ONLINE_CHECKPOINT_H_
#define CORROB_CORE_ONLINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/retry.h"
#include "core/online.h"

namespace corrob {

/// Version of the snapshot wire format produced by this build.
/// History:
///   v1 — options, facts_observed, per-source correct/total counters.
///   v2 — appends the telemetry counters (decisions_true,
///        decisions_false, deferrals) so a resumed stream's running
///        stats stay continuous with the original run.
inline constexpr uint32_t kOnlineSnapshotVersion = 2;

/// Oldest snapshot version ParseOnlineSnapshot still accepts. v1
/// snapshots restore with zeroed telemetry counters.
inline constexpr uint32_t kOnlineSnapshotMinVersion = 1;

/// Serializes the full state of `online` into the snapshot format:
///
///   magic "CORROBSN" | version u32 | payload_size u64
///   | payload | crc32(payload) u32            (all little-endian)
///
/// The payload stores the options, facts_observed, the exact
/// correct/total counters per source as raw IEEE-754 bits, and (v2)
/// the telemetry counters, so a restored corroborator continues the
/// trust trajectory bit-identical to one that never stopped.
std::string SerializeOnlineSnapshot(const OnlineCorroborator& online);

/// Decodes a snapshot. Distinct failures get distinct codes:
///  - ParseError: not a snapshot, truncated, trailing garbage, or
///    checksum mismatch (i.e. corruption);
///  - FailedPrecondition: a well-formed snapshot of an unsupported
///    version (outside [kOnlineSnapshotMinVersion,
///    kOnlineSnapshotVersion]);
///  - InvalidArgument: a checksummed payload with inconsistent state
///    (via OnlineCorroborator::FromState).
[[nodiscard]] Result<OnlineCorroborator> ParseOnlineSnapshot(std::string_view bytes);

/// Atomically writes the snapshot of `online` to `path` (temp file +
/// fsync + rename), retrying transient I/O failures under `policy`.
/// A crash mid-save leaves any previous snapshot at `path` intact.
/// Fault-injection site: "online_checkpoint.save".
[[nodiscard]] Status SaveOnlineSnapshot(const std::string& path,
                          const OnlineCorroborator& online,
                          const RetryPolicy& policy = DefaultIoRetryPolicy());

/// Reads and decodes the snapshot at `path`. A missing file is
/// NotFound; decode failures are as in ParseOnlineSnapshot.
/// Fault-injection site: "online_checkpoint.load".
[[nodiscard]] Result<OnlineCorroborator> LoadOnlineSnapshot(const std::string& path);

/// Where an interrupted `corrob stream` run with no --checkpoint saves
/// its state: "<base>.interrupt-<hex8>.snap", where base is
/// `output_path` when non-empty (else `input_path`, else "stream") and
/// the hex suffix is a CRC-32 over both paths. Deterministic per
/// (input, output) pair — the matching --resume finds it again — but
/// distinct for concurrent streams that share an input or an output
/// directory, so one run's interrupt can never clobber another's
/// checkpoint.
std::string DeriveInterruptCheckpointPath(std::string_view input_path,
                                          std::string_view output_path);

}  // namespace corrob

#endif  // CORROB_CORE_ONLINE_CHECKPOINT_H_
