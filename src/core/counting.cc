#include "core/counting.h"

namespace corrob {

Result<CorroborationResult> CountingCorroborator::Run(
    const Dataset& dataset, const RunContext& context) const {
  if (options_.min_true_votes < 0) {
    return Status::InvalidArgument("min_true_votes must be >= 0");
  }
  CORROB_RETURN_NOT_OK(ValidateResourceBudget(context.budget()));
  CorroborationResult result;
  result.algorithm = std::string(name());
  // One-shot method: the only boundary is before the single pass. An
  // already-fired context degrades to the neutral no-information
  // answer (σ = 0.5 everywhere).
  if (auto interrupt = context.CheckIterationBoundary(0)) {
    result.termination = *interrupt;
    result.fact_probability.assign(static_cast<size_t>(dataset.num_facts()),
                                   0.5);
    result.source_trust.assign(static_cast<size_t>(dataset.num_sources()),
                               0.5);
    return result;
  }
  result.fact_probability.resize(static_cast<size_t>(dataset.num_facts()));
  const int32_t threshold = options_.min_true_votes > 0
                                ? options_.min_true_votes
                                : dataset.num_sources() / 2 + 1;
  for (FactId f = 0; f < dataset.num_facts(); ++f) {
    int32_t t = dataset.CountVotes(f, Vote::kTrue);
    result.fact_probability[static_cast<size_t>(f)] =
        t >= threshold ? 1.0 : 0.0;
  }
  result.source_trust =
      TrustAgainstDecisions(dataset, result.Decisions(), /*no_vote_value=*/0.0);
  result.iterations = 1;
  return result;
}

}  // namespace corrob
