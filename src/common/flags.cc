#include "common/flags.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace corrob {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      parser.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("empty flag name: '" + arg + "'");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("empty flag name: '" + arg + "'");
      }
      parser.values_[name] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      parser.values_[body] = argv[i + 1];
      ++i;
    } else {
      parser.values_[body] = "true";
    }
  }
  return parser;
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  CORROB_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "malformed integer for --" << name << ": '" << it->second << "'";
  return value;
}

Result<int64_t> FlagParser::TryGetInt(const std::string& name,
                                      int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument("--" + name +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  return value;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  CORROB_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "malformed number for --" << name << ": '" << it->second << "'";
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  CORROB_LOG_FATAL << "malformed bool for --" << name << ": '" << it->second
                   << "'";
  return fallback;
}

}  // namespace corrob
