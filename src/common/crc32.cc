#include "common/crc32.h"

#include <array>

namespace corrob {

namespace {

/// The byte-at-a-time lookup table for the reflected polynomial.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

void Crc32::Update(std::string_view bytes) {
  const auto& table = Table();
  uint32_t state = state_;
  for (char c : bytes) {
    state = (state >> 8) ^ table[(state ^ static_cast<uint8_t>(c)) & 0xFFu];
  }
  state_ = state;
}

uint32_t ComputeCrc32(std::string_view bytes) {
  Crc32 crc;
  crc.Update(bytes);
  return crc.Digest();
}

}  // namespace corrob
