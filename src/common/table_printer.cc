#include "common/table_printer.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace corrob {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CORROB_CHECK(!headers_.empty()) << "table needs at least one column";
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CORROB_CHECK(cells.size() <= headers_.size())
      << "row has " << cells.size() << " cells, table has "
      << headers_.size() << " columns";
  cells.resize(headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, digits));
  AddRow(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = rule();
  out += format_row(headers_);
  out += rule();
  for (const Row& row : rows_) {
    out += row.separator ? rule() : format_row(row.cells);
  }
  out += rule();
  return out;
}

}  // namespace corrob
