#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace corrob {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      break;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace corrob
