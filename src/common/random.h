#ifndef CORROB_COMMON_RANDOM_H_
#define CORROB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace corrob {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
///
/// All stochastic components of the library (synthetic generators,
/// Gibbs sampling, cross-validation shuffles) take an explicit Rng so
/// experiments are reproducible bit-for-bit from a seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (std::size_t i = values->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Returns a derived generator whose stream is independent of this
  /// one for practical purposes (used to give each experiment arm its
  /// own stream).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// SplitMix64 step, exposed for seed-mixing in tests and generators.
uint64_t SplitMix64(uint64_t* state);

}  // namespace corrob

#endif  // CORROB_COMMON_RANDOM_H_
