#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace corrob {

ThreadPool::ThreadPool(int num_threads) {
  int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  CORROB_CHECK(task != nullptr) << "null task";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      CORROB_LOG_WARNING
          << "ThreadPool::Submit after Shutdown; dropping the task";
      return;
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

// Justified: std::unique_lock carries no capability annotations (only
// lock_guard/scoped_lock do), so the cv-wait loop would be flagged as
// touching in_flight_ unlocked. The lock discipline here is pinned by
// the TSan job instead.
void ThreadPool::Wait() CORROB_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

// Justified: same std::unique_lock cv-wait caveat as Wait() above.
void ThreadPool::WorkerLoop() CORROB_NO_THREAD_SAFETY_ANALYSIS {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return !queue_.empty() || shutting_down_; });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) work_done_.notify_all();
    }
  }
}

void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  if (num_threads <= 1 || count == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<int64_t>(count, static_cast<int64_t>(num_threads))));
  for (int64_t i = 0; i < count; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

bool ParallelApply(ThreadPool* pool, int64_t count,
                   const std::function<void(int64_t, int64_t)>& fn,
                   const StopSignal* stop) {
  if (count <= 0) return true;
  if (pool == nullptr || pool->num_threads() <= 1 || count == 1) {
    if (stop == nullptr || !stop->armed()) {
      fn(0, count);
      return true;
    }
    // Inline path with a live stop signal: slice the range so a
    // cancellation or deadline is observed without waiting for the
    // whole sweep. The slicing never changes results — each index is
    // still computed exactly once, in ascending order.
    constexpr int64_t kInlineSlice = 8192;
    for (int64_t begin = 0; begin < count; begin += kInlineSlice) {
      if (stop->ShouldStop()) return false;
      fn(begin, std::min(count, begin + kInlineSlice));
    }
    return true;
  }
  // A few chunks per worker smooths imbalance between ranges without
  // per-index submission overhead. The chunk layout only affects
  // scheduling, never results: fn owns its indices exclusively.
  const int64_t chunks = std::min<int64_t>(
      count, static_cast<int64_t>(pool->num_threads()) * 4);
  const int64_t base = count / chunks;
  const int64_t extra = count % chunks;
  // Counter pointers are stable for the registry's (process) lifetime,
  // so the hot path pays one relaxed add, not a map lookup.
  static obs::Counter* chunks_dispatched =
      obs::MetricsRegistry::Global().GetCounter(
          "corrob.thread_pool.chunks_dispatched");
  chunks_dispatched->Add(chunks);
  // Shared latch for the stop-aware path: a chunk that observes the
  // stop signal sets it so later chunks skip without re-reading the
  // (potentially costlier) deadline clock.
  std::atomic<bool> stopped{false};
  int64_t begin = 0;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t end = begin + base + (c < extra ? 1 : 0);
    // The chunk span runs on the worker thread, so the fan-out shows
    // as one slice per worker in the trace viewer.
    if (stop != nullptr && stop->armed()) {
      pool->Submit([&fn, &stopped, stop, begin, end] {
        if (stopped.load(std::memory_order_relaxed) || stop->ShouldStop()) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        CORROB_TRACE_SPAN("ParallelApply::chunk");
        fn(begin, end);
      });
    } else {
      pool->Submit([&fn, begin, end] {
        CORROB_TRACE_SPAN("ParallelApply::chunk");
        fn(begin, end);
      });
    }
    begin = end;
  }
  pool->Wait();
  return !stopped.load(std::memory_order_relaxed);
}

int DefaultThreadCount() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 4 : static_cast<int>(hardware);
}

}  // namespace corrob
