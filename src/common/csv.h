#ifndef CORROB_COMMON_CSV_H_
#define CORROB_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace corrob {

/// A parsed CSV document: rows of string fields.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
};

/// Parses RFC-4180-style CSV text: fields separated by `delimiter`,
/// optionally quoted with '"' (doubled quote escapes a quote, quoted
/// fields may contain delimiters and newlines). Both \n and \r\n row
/// terminators are accepted; a trailing newline does not produce an
/// empty row. A leading UTF-8 byte-order mark is stripped so that
/// BOM-prefixed exports do not corrupt the first header cell.
[[nodiscard]] Result<CsvDocument> ParseCsv(std::string_view text, char delimiter = ',');

/// Serializes rows into CSV text, quoting fields that contain the
/// delimiter, quotes or newlines.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows,
                     char delimiter = ',');

/// Reads and parses a CSV file from disk.
[[nodiscard]] Result<CsvDocument> ReadCsvFile(const std::string& path,
                                char delimiter = ',');

/// Writes rows to `path` as CSV.
[[nodiscard]] Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delimiter = ',');

/// Reads a whole file into a string. A missing file is NotFound; any
/// other open/read failure is IoError. Messages include `path`.
[[nodiscard]] Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
/// Equivalent to WriteFileAtomic — callers never observe a partially
/// written file at `path`.
[[nodiscard]] Status WriteStringToFile(const std::string& path, std::string_view contents);

/// Durably replaces `path` with `contents`: writes `path`.tmp, fsyncs
/// it, then renames it over `path`. On any failure the temp file is
/// removed and a pre-existing file at `path` is left untouched — a
/// crash or injected fault can never leave a truncated file at the
/// target path. Fault-injection sites: "io.atomic_write.open",
/// ".write", ".fsync", ".rename".
[[nodiscard]] Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace corrob

#endif  // CORROB_COMMON_CSV_H_
